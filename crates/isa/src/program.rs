//! Complete machine-code programs and their validation against a machine
//! description.
//!
//! The validator enforces every *static* resource rule the scheduler must
//! respect (connectivity, port counts per cycle, immediate ranges, template
//! constraints); the cycle-accurate simulator additionally checks the
//! dynamic rules (result-port lifetimes, write-port collisions across
//! cycles). Together they make scheduler bugs loud instead of silent.

use crate::code::{MoveDst, MoveSrc, OpSrc, Operation, ScalarInst, TtaInst, VliwBundle, VliwSlot};
use crate::encoding::{fits_signed, image_bits, vliw_imm_bits};
use tta_model::{CoreStyle, DstConn, Machine, RegRef, SrcConn};

/// A validation problem in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaError(pub String);

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for IsaError {}

/// A compiled program for one machine, in that machine's native form.
#[derive(Debug, Clone, PartialEq)]
pub enum Program {
    /// Transport-triggered instruction stream.
    Tta(Vec<TtaInst>),
    /// VLIW bundle stream.
    Vliw(Vec<VliwBundle>),
    /// Scalar instruction stream.
    Scalar(Vec<ScalarInst>),
}

impl Program {
    /// Number of instructions (bundles count once).
    pub fn len(&self) -> usize {
        match self {
            Program::Tta(v) => v.len(),
            Program::Vliw(v) => v.len(),
            Program::Scalar(v) => v.len(),
        }
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Program image size in bits on the given machine.
    pub fn image_bits(&self, m: &Machine) -> u64 {
        image_bits(m, self.len())
    }

    /// Count of NOP instructions/bundles (a schedule-quality metric).
    pub fn nop_count(&self) -> usize {
        match self {
            Program::Tta(v) => v.iter().filter(|i| i.is_nop()).count(),
            Program::Vliw(v) => v.iter().filter(|b| b.is_nop()).count(),
            Program::Scalar(_) => 0,
        }
    }

    /// Total programmed moves (TTA) or operations (VLIW/scalar).
    pub fn payload_count(&self) -> usize {
        match self {
            Program::Tta(v) => v
                .iter()
                .map(|i| i.move_count() + usize::from(i.limm.is_some()))
                .sum(),
            Program::Vliw(v) => v.iter().map(|b| b.op_count()).sum(),
            Program::Scalar(v) => v.len(),
        }
    }

    /// Validate against a machine. The program style must match the machine
    /// style.
    pub fn validate(&self, m: &Machine) -> Result<(), Vec<IsaError>> {
        let mut errs = Vec::new();
        match (self, m.style) {
            (Program::Tta(insts), CoreStyle::Tta) => validate_tta(m, insts, &mut errs),
            (Program::Vliw(bundles), CoreStyle::Vliw) => validate_vliw(m, bundles, &mut errs),
            (Program::Scalar(insts), CoreStyle::Scalar) => validate_scalar(m, insts, &mut errs),
            _ => errs.push(IsaError(format!(
                "program style does not match machine {} ({:?})",
                m.name, m.style
            ))),
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

fn check_reg(m: &Machine, r: RegRef, ctx: &str, errs: &mut Vec<IsaError>) {
    if (r.rf.0 as usize) >= m.rfs.len() {
        errs.push(IsaError(format!(
            "{ctx}: register file {} out of range",
            r.rf
        )));
    } else if r.index >= m.rf(r.rf).regs {
        errs.push(IsaError(format!("{ctx}: register {r} out of range")));
    }
}

fn validate_tta(m: &Machine, insts: &[TtaInst], errs: &mut Vec<IsaError>) {
    for (pc, inst) in insts.iter().enumerate() {
        let ctx = |b: usize| format!("pc {pc} bus {b}");
        if inst.slots.len() != m.buses.len() {
            errs.push(IsaError(format!(
                "pc {pc}: {} slots for {} buses",
                inst.slots.len(),
                m.buses.len()
            )));
            continue;
        }
        if let Some((reg, _)) = inst.limm {
            if reg >= m.limm.imm_regs {
                errs.push(IsaError(format!(
                    "pc {pc}: long-immediate register {reg} out of range"
                )));
            }
            for s in 0..m.limm.bus_slots as usize {
                if inst.slots[s].is_some() {
                    errs.push(IsaError(format!(
                        "pc {pc}: slot {s} must be empty in a long-immediate template"
                    )));
                }
            }
        }
        // Per-cycle RF port pressure.
        let mut reads = vec![0u32; m.rfs.len()];
        let mut writes = vec![0u32; m.rfs.len()];
        // Per-cycle FU port collisions.
        let mut trig = vec![0u32; m.funits.len()];
        let mut oper = vec![0u32; m.funits.len()];
        for (bi, slot) in inst.slots.iter().enumerate() {
            let Some(mv) = slot else { continue };
            let bus = m.bus(tta_model::BusId(bi as u16));
            match mv.src {
                MoveSrc::Rf(r) => {
                    check_reg(m, r, &ctx(bi), errs);
                    if !bus.reads(SrcConn::RfRead(r.rf)) {
                        errs.push(IsaError(format!("{}: bus cannot read {}", ctx(bi), r.rf)));
                    }
                    if (r.rf.0 as usize) < reads.len() {
                        reads[r.rf.0 as usize] += 1;
                    }
                }
                MoveSrc::FuResult(fu) => {
                    if (fu.0 as usize) >= m.funits.len() {
                        errs.push(IsaError(format!("{}: bad FU {fu}", ctx(bi))));
                    } else if !bus.reads(SrcConn::FuResult(fu)) {
                        errs.push(IsaError(format!(
                            "{}: bus cannot read result of {fu}",
                            ctx(bi)
                        )));
                    }
                }
                MoveSrc::Imm(v) => {
                    // Control-flow targets are instruction addresses; they
                    // are materialised through long immediates just like
                    // data constants, so a short immediate must always fit.
                    if !bus.simm_fits(v) {
                        errs.push(IsaError(format!(
                            "{}: immediate {v} does not fit {} simm bits",
                            ctx(bi),
                            bus.simm_bits
                        )));
                    }
                }
                MoveSrc::ImmReg(i) => {
                    if i >= m.limm.imm_regs {
                        errs.push(IsaError(format!(
                            "{}: long-immediate register {i} out of range",
                            ctx(bi)
                        )));
                    }
                }
            }
            match mv.dst {
                MoveDst::Rf(r) => {
                    check_reg(m, r, &ctx(bi), errs);
                    if !bus.writes(DstConn::RfWrite(r.rf)) {
                        errs.push(IsaError(format!("{}: bus cannot write {}", ctx(bi), r.rf)));
                    }
                    if (r.rf.0 as usize) < writes.len() {
                        writes[r.rf.0 as usize] += 1;
                    }
                }
                MoveDst::FuOperand(fu) => {
                    if (fu.0 as usize) >= m.funits.len() {
                        errs.push(IsaError(format!("{}: bad FU {fu}", ctx(bi))));
                    } else {
                        if !bus.writes(DstConn::FuOperand(fu)) {
                            errs.push(IsaError(format!(
                                "{}: bus cannot write operand of {fu}",
                                ctx(bi)
                            )));
                        }
                        oper[fu.0 as usize] += 1;
                    }
                }
                MoveDst::FuTrigger(fu, op) => {
                    if (fu.0 as usize) >= m.funits.len() {
                        errs.push(IsaError(format!("{}: bad FU {fu}", ctx(bi))));
                    } else {
                        if !bus.writes(DstConn::FuTrigger(fu)) {
                            errs.push(IsaError(format!(
                                "{}: bus cannot write trigger of {fu}",
                                ctx(bi)
                            )));
                        }
                        if !m.fu(fu).supports(op) {
                            errs.push(IsaError(format!(
                                "{}: {fu} does not implement {op}",
                                ctx(bi)
                            )));
                        }
                        trig[fu.0 as usize] += 1;
                    }
                }
            }
        }
        for (ri, &n) in reads.iter().enumerate() {
            let ports = m.rfs[ri].read_ports as u32;
            if n > ports {
                errs.push(IsaError(format!(
                    "pc {pc}: {n} reads of {} but only {ports} read ports",
                    m.rfs[ri].name
                )));
            }
        }
        for (ri, &n) in writes.iter().enumerate() {
            let ports = m.rfs[ri].write_ports as u32;
            if n > ports {
                errs.push(IsaError(format!(
                    "pc {pc}: {n} writes of {} but only {ports} write ports",
                    m.rfs[ri].name
                )));
            }
        }
        for (fi, &n) in trig.iter().enumerate() {
            if n > 1 {
                errs.push(IsaError(format!(
                    "pc {pc}: {n} simultaneous triggers of {}",
                    m.funits[fi].name
                )));
            }
        }
        for (fi, &n) in oper.iter().enumerate() {
            if n > 1 {
                errs.push(IsaError(format!(
                    "pc {pc}: {n} simultaneous operand writes of {}",
                    m.funits[fi].name
                )));
            }
        }
    }
}

fn validate_operation(
    m: &Machine,
    o: &Operation,
    imm_bits: u32,
    ctx: &str,
    errs: &mut Vec<IsaError>,
) {
    if (o.fu.0 as usize) >= m.funits.len() {
        errs.push(IsaError(format!("{ctx}: bad FU {}", o.fu)));
        return;
    }
    if !m.fu(o.fu).supports(o.op) {
        errs.push(IsaError(format!(
            "{ctx}: {} does not implement {}",
            o.fu, o.op
        )));
    }
    if let Some(d) = o.dst {
        check_reg(m, d, ctx, errs);
    }
    if o.op.has_result() != o.dst.is_some() {
        errs.push(IsaError(format!(
            "{ctx}: {} result/destination mismatch",
            o.op
        )));
    }
    let need = o.op.num_inputs();
    let have = usize::from(o.a.is_some()) + usize::from(o.b.is_some());
    if need != have {
        errs.push(IsaError(format!(
            "{ctx}: {} needs {need} inputs, has {have}",
            o.op
        )));
    }
    for s in [o.a, o.b].into_iter().flatten() {
        match s {
            OpSrc::Reg(r) => check_reg(m, r, ctx, errs),
            OpSrc::Imm(v) => {
                if !fits_signed(v, imm_bits) {
                    errs.push(IsaError(format!(
                        "{ctx}: immediate {v} does not fit {imm_bits} bits"
                    )));
                }
            }
        }
    }
}

fn validate_vliw(m: &Machine, bundles: &[VliwBundle], errs: &mut Vec<IsaError>) {
    let imm_bits = vliw_imm_bits(m);
    for (pc, b) in bundles.iter().enumerate() {
        if b.slots.len() != m.slots.len() {
            errs.push(IsaError(format!(
                "pc {pc}: {} slots for {} issue slots",
                b.slots.len(),
                m.slots.len()
            )));
            continue;
        }
        let mut reads = vec![0u32; m.rfs.len()];
        let mut si = 0usize;
        while si < b.slots.len() {
            let ctx = format!("pc {pc} slot {si}");
            match &b.slots[si] {
                None => {}
                Some(VliwSlot::Op(o)) => {
                    if !m.slots[si].units.contains(&o.fu) {
                        errs.push(IsaError(format!(
                            "{ctx}: {} not issuable through this slot",
                            o.fu
                        )));
                    }
                    validate_operation(m, o, imm_bits, &ctx, errs);
                    for s in [o.a, o.b].into_iter().flatten() {
                        if let OpSrc::Reg(r) = s {
                            if (r.rf.0 as usize) < reads.len() {
                                reads[r.rf.0 as usize] += 1;
                            }
                        }
                    }
                }
                Some(VliwSlot::LimmHead { dst, .. }) => {
                    check_reg(m, *dst, &ctx, errs);
                    for k in 1..m.vliw_limm_slots as usize {
                        match b.slots.get(si + k) {
                            Some(Some(VliwSlot::LimmCont)) => {}
                            _ => errs.push(IsaError(format!(
                                "{ctx}: long immediate missing continuation slot {}",
                                si + k
                            ))),
                        }
                    }
                    si += m.vliw_limm_slots as usize - 1;
                }
                Some(VliwSlot::LimmCont) => {
                    errs.push(IsaError(format!("{ctx}: orphan limm continuation")));
                }
            }
            si += 1;
        }
        for (ri, &n) in reads.iter().enumerate() {
            let ports = m.rfs[ri].read_ports as u32;
            if n > ports {
                errs.push(IsaError(format!(
                    "pc {pc}: {n} reads of {} but only {ports} read ports",
                    m.rfs[ri].name
                )));
            }
        }
    }
}

fn validate_scalar(m: &Machine, insts: &[ScalarInst], errs: &mut Vec<IsaError>) {
    let pipe = m.scalar.expect("scalar machine");
    for (pc, inst) in insts.iter().enumerate() {
        let ctx = format!("pc {pc}");
        match inst {
            ScalarInst::ImmPrefix => {
                // Must be followed by an operation using an immediate.
                match insts.get(pc + 1) {
                    Some(ScalarInst::Op(o))
                        if [o.a, o.b]
                            .into_iter()
                            .flatten()
                            .any(|s| matches!(s, OpSrc::Imm(_))) => {}
                    _ => errs.push(IsaError(format!(
                        "{ctx}: imm-prefix not followed by an immediate-using op"
                    ))),
                }
            }
            ScalarInst::Op(o) => {
                // An op right after a prefix may carry a full 32-bit
                // immediate; otherwise it is limited to the pipeline's
                // inline immediate width.
                let prefixed =
                    matches!(insts.get(pc.wrapping_sub(1)), Some(ScalarInst::ImmPrefix)) && pc > 0;
                let imm_bits = if prefixed { 32 } else { pipe.imm_bits as u32 };
                validate_operation(m, o, imm_bits, &ctx, errs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Move;
    use tta_model::{presets, FuId, FuKind, Opcode, RfId};

    fn rr(rf: u16, i: u16) -> RegRef {
        RegRef {
            rf: RfId(rf),
            index: i,
        }
    }

    #[test]
    fn empty_programs_validate() {
        assert!(Program::Tta(vec![]).validate(&presets::m_tta_1()).is_ok());
        assert!(Program::Vliw(vec![]).validate(&presets::m_vliw_2()).is_ok());
        assert!(Program::Scalar(vec![])
            .validate(&presets::mblaze_3())
            .is_ok());
    }

    #[test]
    fn style_mismatch_rejected() {
        assert!(Program::Tta(vec![]).validate(&presets::m_vliw_2()).is_err());
    }

    #[test]
    fn tta_read_port_overflow_detected() {
        let m = presets::m_tta_2(); // single 1R/1W RF
                                    // Find two buses that can read the RF.
        let readers: Vec<usize> = (0..m.buses.len())
            .filter(|&b| m.buses[b].reads(SrcConn::RfRead(RfId(0))))
            .collect();
        assert!(
            readers.len() >= 2,
            "preset should connect the read socket to 2 buses"
        );
        let mut inst = TtaInst::nop(m.buses.len());
        for (k, &b) in readers.iter().take(2).enumerate() {
            inst.slots[b] = Some(Move {
                src: MoveSrc::Rf(rr(0, k as u16)),
                dst: MoveDst::FuOperand(FuId(0)),
            });
        }
        // Two simultaneous reads on a 1-read-port RF (also two operand
        // writes on the same FU).
        let errs = Program::Tta(vec![inst]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("read ports")), "{errs:?}");
    }

    #[test]
    fn tta_unconnected_move_rejected() {
        let m = presets::m_tta_2();
        // Find a bus that can NOT read the RF.
        let bad = (0..m.buses.len())
            .find(|&b| !m.buses[b].reads(SrcConn::RfRead(RfId(0))))
            .expect("pruned preset leaves some bus without RF read");
        let mut inst = TtaInst::nop(m.buses.len());
        inst.slots[bad] = Some(Move {
            src: MoveSrc::Rf(rr(0, 0)),
            dst: MoveDst::FuOperand(FuId(0)),
        });
        let errs = Program::Tta(vec![inst]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("cannot read")), "{errs:?}");
    }

    #[test]
    fn tta_oversized_simm_rejected() {
        let m = presets::m_tta_1();
        let mut inst = TtaInst::nop(m.buses.len());
        inst.slots[0] = Some(Move {
            src: MoveSrc::Imm(1 << 20),
            dst: MoveDst::FuOperand(FuId(0)),
        });
        let errs = Program::Tta(vec![inst]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("does not fit")));
    }

    #[test]
    fn tta_limm_template_requires_empty_slots() {
        let m = presets::m_tta_2();
        let mut inst = TtaInst::nop(m.buses.len());
        inst.limm = Some((0, 123_456));
        inst.slots[0] = Some(Move {
            src: MoveSrc::Imm(1),
            dst: MoveDst::FuOperand(FuId(0)),
        });
        let errs = Program::Tta(vec![inst]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("long-immediate template")));
        let mut ok = TtaInst::nop(m.buses.len());
        ok.limm = Some((1, i32::MIN));
        assert!(Program::Tta(vec![ok]).validate(&m).is_ok());
    }

    #[test]
    fn tta_double_trigger_rejected() {
        let m = presets::m_tta_2();
        let alu = FuId(0);
        let triggers: Vec<usize> = (0..m.buses.len())
            .filter(|&b| m.buses[b].writes(DstConn::FuTrigger(alu)))
            .collect();
        let mut inst = TtaInst::nop(m.buses.len());
        for &b in triggers.iter().take(2) {
            inst.slots[b] = Some(Move {
                src: MoveSrc::Imm(1),
                dst: MoveDst::FuTrigger(alu, Opcode::Add),
            });
        }
        let errs = Program::Tta(vec![inst]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("simultaneous triggers")));
    }

    #[test]
    fn vliw_slot_unit_restriction() {
        let m = presets::m_vliw_2();
        // LSU op in slot 0 (which hosts ALU+CTRL) must be rejected.
        let lsu = m.fu_ids().find(|&f| m.fu(f).kind == FuKind::Lsu).unwrap();
        let mut b = VliwBundle::nop(m.slots.len());
        b.slots[0] = Some(VliwSlot::Op(Operation {
            op: Opcode::Ldw,
            fu: lsu,
            dst: Some(rr(0, 0)),
            a: Some(OpSrc::Imm(0)),
            b: None,
        }));
        let errs = Program::Vliw(vec![b]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("not issuable")));
    }

    #[test]
    fn vliw_limm_needs_continuation() {
        let m = presets::m_vliw_3(); // 3 slots, limm takes 2
        let mut b = VliwBundle::nop(3);
        b.slots[0] = Some(VliwSlot::LimmHead {
            dst: rr(0, 1),
            value: 1 << 30,
        });
        let errs = Program::Vliw(vec![b.clone()]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("continuation")));
        b.slots[1] = Some(VliwSlot::LimmCont);
        assert!(Program::Vliw(vec![b]).validate(&m).is_ok());
    }

    #[test]
    fn vliw_imm_width_enforced() {
        let m = presets::m_vliw_2(); // 6-bit inline immediates
        let alu = FuId(0);
        let mut b = VliwBundle::nop(2);
        b.slots[0] = Some(VliwSlot::Op(Operation {
            op: Opcode::Add,
            fu: alu,
            dst: Some(rr(0, 0)),
            a: Some(OpSrc::Imm(31)),
            b: Some(OpSrc::Imm(100)), // too wide
        }));
        let errs = Program::Vliw(vec![b]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("does not fit")));
    }

    #[test]
    fn scalar_imm_prefix_rules() {
        let m = presets::mblaze_3();
        let alu = FuId(0);
        let wide = ScalarInst::Op(Operation {
            op: Opcode::Add,
            fu: alu,
            dst: Some(rr(0, 0)),
            a: Some(OpSrc::Reg(rr(0, 1))),
            b: Some(OpSrc::Imm(1 << 20)),
        });
        // Without prefix: rejected.
        let errs = Program::Scalar(vec![wide]).validate(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("does not fit")));
        // With prefix: accepted.
        assert!(Program::Scalar(vec![ScalarInst::ImmPrefix, wide])
            .validate(&m)
            .is_ok());
        // Dangling prefix: rejected.
        let errs = Program::Scalar(vec![ScalarInst::ImmPrefix])
            .validate(&m)
            .unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("imm-prefix")));
    }

    #[test]
    fn payload_and_nop_counts() {
        let m = presets::m_tta_1();
        let mut i = TtaInst::nop(m.buses.len());
        i.slots[0] = Some(Move {
            src: MoveSrc::Imm(1),
            dst: MoveDst::FuOperand(FuId(0)),
        });
        let p = Program::Tta(vec![i, TtaInst::nop(3)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.nop_count(), 1);
        assert_eq!(p.payload_count(), 1);
    }
}
