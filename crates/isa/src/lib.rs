//! # tta-isa — machine code and instruction encoding
//!
//! Machine-code data structures for the three programming models compared in
//! the paper (TTA data transports, VLIW operation bundles, scalar RISC
//! streams), an automatic TTA instruction-encoding width model derived from
//! the interconnect (the mechanism behind Table II), the paper's manual
//! VLIW encoding, and a static program validator that enforces connectivity
//! and per-cycle port limits.
//!
//! ```
//! use tta_model::presets;
//! use tta_isa::encoding;
//!
//! // The headline TTA drawback: wider instructions than VLIW...
//! let tta = encoding::instruction_bits(&presets::m_tta_2());
//! let vliw = encoding::instruction_bits(&presets::m_vliw_2());
//! assert!(tta > vliw);
//! // ...mitigated by merging underutilised buses (paper Fig. 4d).
//! let bm = encoding::instruction_bits(&presets::bm_tta_2());
//! let p = encoding::instruction_bits(&presets::p_tta_2());
//! assert!(bm < p);
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod blocks;
pub mod code;
pub mod encoding;
pub mod program;
pub mod tier;

pub use bits::TtaCodec;
pub use blocks::BlockMap;
pub use code::{
    Move, MoveDst, MoveSrc, OpSrc, Operation, ScalarInst, TtaInst, VliwBundle, VliwSlot,
    RETVAL_ADDR,
};
pub use encoding::{image_bits, instruction_bits};
pub use program::{IsaError, Program};
pub use tier::{TierConfig, TierEntry, TierTable};
