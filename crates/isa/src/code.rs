//! Machine-code data structures for the three programming models.
//!
//! * TTA programs are sequences of [`TtaInst`]s: one optional [`Move`] per
//!   transport bus plus an optional long-immediate write.
//! * VLIW programs are sequences of [`VliwBundle`]s: one optional operation
//!   per issue slot, with long immediates spanning several slots.
//! * Scalar programs are flat [`ScalarInst`] streams with MicroBlaze-style
//!   `imm`-prefix instructions for wide constants.
//!
//! Control-flow targets are absolute instruction indices, matching the
//! paper's machines whose control units implement absolute jumps only.

use tta_model::{FuId, Opcode, RegRef};

/// Absolute byte address where a program stores its entry function's return
/// value before halting. The simulators read it back; the address lies in
/// the reserved low-memory area no data buffer occupies.
pub const RETVAL_ADDR: u32 = 8;

/// Source of a TTA data transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveSrc {
    /// Read a general-purpose register (occupies one RF read port this
    /// cycle).
    Rf(RegRef),
    /// Read a function unit's result port (software bypassing; no RF port
    /// used).
    FuResult(FuId),
    /// A short immediate carried in the move slot's source field.
    Imm(i32),
    /// Read a long-immediate register previously written by
    /// [`TtaInst::limm`].
    ImmReg(u8),
}

/// Destination of a TTA data transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveDst {
    /// Write a general-purpose register (occupies one RF write port).
    Rf(RegRef),
    /// Write a function unit's (storing) operand port.
    FuOperand(FuId),
    /// Write a function unit's trigger port, starting `op`.
    FuTrigger(FuId, Opcode),
}

/// One programmed data transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Move {
    /// Where the data comes from.
    pub src: MoveSrc,
    /// Where the data goes.
    pub dst: MoveDst,
}

impl std::fmt::Display for Move {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// One TTA instruction: a move slot per bus, plus an optional long-immediate
/// write that repurposes the first `limm.bus_slots` move slots (which must
/// therefore be empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TtaInst {
    /// One optional move per bus, indexed by bus id.
    pub slots: Vec<Option<Move>>,
    /// Optional long-immediate write `(imm_reg, value)`, visible to reads
    /// from the *next* cycle onward.
    pub limm: Option<(u8, i32)>,
}

impl TtaInst {
    /// An all-NOP instruction for a machine with `n_buses` buses.
    pub fn nop(n_buses: usize) -> Self {
        TtaInst {
            slots: vec![None; n_buses],
            limm: None,
        }
    }

    /// Number of programmed moves.
    pub fn move_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether nothing happens this cycle.
    pub fn is_nop(&self) -> bool {
        self.move_count() == 0 && self.limm.is_none()
    }
}

/// Source of a VLIW or scalar operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSrc {
    /// Read a register.
    Reg(RegRef),
    /// An immediate (the encoding model checks its width).
    Imm(i32),
}

/// An operation-triggered operation (VLIW slot payload or scalar
/// instruction body): `dst = op(a, b)` with RF-resident operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// The opcode.
    pub op: Opcode,
    /// The executing function unit.
    pub fu: FuId,
    /// Result register (if the op produces a value).
    pub dst: Option<RegRef>,
    /// First input (missing for zero-operand encodings; in practice always
    /// present).
    pub a: Option<OpSrc>,
    /// Second input (only for two-input ops).
    pub b: Option<OpSrc>,
}

/// Payload of one VLIW issue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VliwSlot {
    /// A normal operation.
    Op(Operation),
    /// First slot of a long-immediate: `dst = value`, latency 1. Occupies
    /// this slot plus `vliw_limm_slots - 1` following [`VliwSlot::LimmCont`]
    /// slots.
    LimmHead {
        /// Destination register.
        dst: RegRef,
        /// The 32-bit constant.
        value: i32,
    },
    /// Continuation slot of a long immediate (carries its payload bits).
    LimmCont,
}

/// One VLIW instruction (bundle).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VliwBundle {
    /// One optional payload per issue slot.
    pub slots: Vec<Option<VliwSlot>>,
}

impl VliwBundle {
    /// An all-NOP bundle for a machine with `n_slots` issue slots.
    pub fn nop(n_slots: usize) -> Self {
        VliwBundle {
            slots: vec![None; n_slots],
        }
    }

    /// Number of operations issued (long immediates count once).
    pub fn op_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Some(VliwSlot::Op(_)) | Some(VliwSlot::LimmHead { .. })))
            .count()
    }

    /// Whether the bundle does nothing.
    pub fn is_nop(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }
}

/// One scalar instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarInst {
    /// A normal operation.
    Op(Operation),
    /// MicroBlaze-style immediate prefix: supplies the upper bits of the
    /// next instruction's immediate (costs one instruction slot and one
    /// cycle).
    ImmPrefix,
}

impl std::fmt::Display for MoveSrc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveSrc::Rf(r) => write!(f, "{r}"),
            MoveSrc::FuResult(u) => write!(f, "{u}.r"),
            MoveSrc::Imm(v) => write!(f, "#{v}"),
            MoveSrc::ImmReg(i) => write!(f, "imm{i}"),
        }
    }
}

impl std::fmt::Display for MoveDst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveDst::Rf(r) => write!(f, "{r}"),
            MoveDst::FuOperand(u) => write!(f, "{u}.o"),
            MoveDst::FuTrigger(u, op) => write!(f, "{u}.t.{op}"),
        }
    }
}

impl std::fmt::Display for TtaInst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        if let Some((reg, v)) = self.limm {
            write!(f, "limm imm{reg}=#{v}")?;
            first = false;
        }
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(mv) = s {
                if !first {
                    write!(f, " ; ")?;
                }
                write!(f, "b{i}: {} -> {}", mv.src, mv.dst)?;
                first = false;
            }
        }
        if first {
            write!(f, "nop")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        let src = |s: &OpSrc| match s {
            OpSrc::Reg(r) => format!("{r}"),
            OpSrc::Imm(v) => format!("#{v}"),
        };
        if let Some(a) = &self.a {
            write!(f, " {}", src(a))?;
        }
        if let Some(b) = &self.b {
            write!(f, ", {}", src(b))?;
        }
        Ok(())
    }
}

impl std::fmt::Display for VliwBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, s) in self.slots.iter().enumerate() {
            if !first {
                write!(f, " | ")?;
            }
            first = false;
            match s {
                None => write!(f, "s{i}: nop")?,
                Some(VliwSlot::Op(o)) => write!(f, "s{i}: {o}")?,
                Some(VliwSlot::LimmHead { dst, value }) => {
                    write!(f, "s{i}: limm {dst} <- #{value}")?
                }
                Some(VliwSlot::LimmCont) => write!(f, "s{i}: (limm)")?,
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for ScalarInst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalarInst::Op(o) => write!(f, "{o}"),
            ScalarInst::ImmPrefix => write!(f, "imm-prefix"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::RfId;

    #[test]
    fn nop_detection() {
        let mut i = TtaInst::nop(4);
        assert!(i.is_nop());
        assert_eq!(i.move_count(), 0);
        i.slots[2] = Some(Move {
            src: MoveSrc::Imm(3),
            dst: MoveDst::FuOperand(FuId(0)),
        });
        assert!(!i.is_nop());
        assert_eq!(i.move_count(), 1);
        let mut j = TtaInst::nop(4);
        j.limm = Some((0, 99));
        assert!(!j.is_nop());
    }

    #[test]
    fn bundle_counts() {
        let mut b = VliwBundle::nop(3);
        assert!(b.is_nop());
        b.slots[0] = Some(VliwSlot::LimmHead {
            dst: RegRef {
                rf: RfId(0),
                index: 1,
            },
            value: 1 << 20,
        });
        b.slots[1] = Some(VliwSlot::LimmCont);
        assert_eq!(b.op_count(), 1);
        assert!(!b.is_nop());
    }

    #[test]
    fn display_smoke() {
        let mv = Move {
            src: MoveSrc::Rf(RegRef {
                rf: RfId(0),
                index: 7,
            }),
            dst: MoveDst::FuTrigger(FuId(1), Opcode::Add),
        };
        let mut i = TtaInst::nop(2);
        i.slots[1] = Some(mv);
        assert_eq!(i.to_string(), "b1: rf0.r7 -> FU1.t.add");
        assert_eq!(TtaInst::nop(2).to_string(), "nop");
    }
}
