//! Hotness-tiered promotion table for superblock execution.
//!
//! The simulators in `tta-sim` execute a program in tiers (DESIGN.md
//! §14): decoded instructions (tier 0) are dispatched a superblock at a
//! time (tier 1, [`crate::BlockMap`]), and superblocks whose entry pc
//! crosses a hotness threshold are *promoted* — compiled once into a
//! chain of resolved thunks and executed directly from then on (tier 2).
//! This module owns the style-agnostic half of that machinery: the
//! per-pc heat counters, the promote-once discipline and the environment
//! configuration. The compiled-block representation itself lives with
//! each engine; the table is generic over it.
//!
//! The promotion-threshold invariant: the tier a block executes in is
//! *never observable* in simulation results. Cycles, `SimStats`, memory
//! images and error behaviour are bit-identical whether a block runs
//! interpreted forever (`TTA_JIT=0`), compiled from its first entry
//! (`TTA_JIT_THRESHOLD=0`) or promoted mid-run at any threshold in
//! between. `tests/tier_transitions.rs`, the cycle-snapshot suite and
//! the fuzz corpus enforce this in both forced modes.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// Tiered-execution configuration, normally read from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Whether the compiled tier is enabled at all (`TTA_JIT=0` clears).
    pub enabled: bool,
    /// Block entries at one pc before promotion (`TTA_JIT_THRESHOLD`).
    /// 0 promotes on first entry.
    pub threshold: u32,
}

impl TierConfig {
    /// Entries at one pc before promotion when `TTA_JIT_THRESHOLD` is
    /// unset: high enough that straight-through code stays interpreted,
    /// low enough that any loop promotes almost immediately.
    pub const DEFAULT_THRESHOLD: u32 = 8;

    /// The enabled default configuration.
    pub const fn default_on() -> TierConfig {
        TierConfig {
            enabled: true,
            threshold: Self::DEFAULT_THRESHOLD,
        }
    }

    /// A disabled configuration (everything stays interpreted).
    pub const fn disabled() -> TierConfig {
        TierConfig {
            enabled: false,
            threshold: u32::MAX,
        }
    }

    /// An enabled configuration with an explicit promotion threshold.
    pub const fn with_threshold(threshold: u32) -> TierConfig {
        TierConfig {
            enabled: true,
            threshold,
        }
    }

    /// The process-wide configuration from `TTA_JIT` / `TTA_JIT_THRESHOLD`,
    /// read once and cached. `TTA_JIT=0|false|off` disables the compiled
    /// tier entirely; any other (or absent) value leaves it on.
    pub fn from_env() -> TierConfig {
        static CFG: OnceLock<TierConfig> = OnceLock::new();
        *CFG.get_or_init(|| {
            let enabled = !std::env::var("TTA_JIT").is_ok_and(|v| {
                matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "0" | "false" | "off"
                )
            });
            if !enabled {
                return TierConfig::disabled();
            }
            let threshold = std::env::var("TTA_JIT_THRESHOLD")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .unwrap_or(Self::DEFAULT_THRESHOLD);
            TierConfig::with_threshold(threshold)
        })
    }
}

/// One pc's tier state: a heat counter until promotion, then the
/// compiled block. `OnceLock` gives the promote-once discipline for free
/// and lets tables be shared across evaluation worker threads.
#[derive(Debug, Default)]
struct Slot<B> {
    heat: AtomicU32,
    block: OnceLock<B>,
}

/// What a block-entry lookup found.
#[derive(Debug)]
pub enum TierEntry<'a, B> {
    /// A compiled block is installed at this pc: execute it.
    Compiled(&'a B),
    /// The heat counter just crossed the threshold: compile and
    /// [`TierTable::install`] now.
    Promote,
    /// Still cold: run interpreted.
    Cold,
}

/// Per-program promotion table: one slot per pc (any pc can start a
/// superblock — jump targets land mid-run), a shared threshold.
#[derive(Debug)]
pub struct TierTable<B> {
    slots: Vec<Slot<B>>,
    threshold: u32,
}

impl<B> TierTable<B> {
    /// An all-cold table for a program of `len` instructions.
    pub fn new(len: usize, threshold: u32) -> TierTable<B> {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || Slot {
            heat: AtomicU32::new(0),
            block: OnceLock::new(),
        });
        TierTable { slots, threshold }
    }

    /// Record one block entry at `pc` and report which tier should run
    /// it. Heat only accumulates until a block is installed.
    #[inline]
    pub fn entry(&self, pc: u32) -> TierEntry<'_, B> {
        let slot = &self.slots[pc as usize];
        if let Some(b) = slot.block.get() {
            return TierEntry::Compiled(b);
        }
        // Saturate so a never-promoted pc (e.g. threshold u32::MAX)
        // cannot wrap back below the threshold.
        let heat = slot.heat.load(Ordering::Relaxed);
        if heat < u32::MAX {
            slot.heat.store(heat + 1, Ordering::Relaxed);
        }
        if heat >= self.threshold {
            TierEntry::Promote
        } else {
            TierEntry::Cold
        }
    }

    /// Install the compiled block for `pc`. Returns whether this call
    /// installed it (a racing thread may have won; either block is
    /// equivalent — compilation is deterministic).
    pub fn install(&self, pc: u32, block: B) -> bool {
        self.slots[pc as usize].block.set(block).is_ok()
    }

    /// The compiled block at `pc`, if one was installed.
    #[inline]
    pub fn get(&self, pc: u32) -> Option<&B> {
        self.slots[pc as usize].block.get()
    }

    /// Number of pcs covered (the program length).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table covers an empty program.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured promotion threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Number of pcs with an installed compiled block.
    pub fn compiled_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.block.get().is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_promotion() {
        let t: TierTable<u64> = TierTable::new(4, 2);
        assert!(matches!(t.entry(1), TierEntry::Cold)); // heat 0
        assert!(matches!(t.entry(1), TierEntry::Cold)); // heat 1
        assert!(matches!(t.entry(1), TierEntry::Promote)); // heat 2
        assert!(matches!(t.entry(1), TierEntry::Promote)); // until installed
        assert!(t.install(1, 42));
        assert!(!t.install(1, 43), "second install must lose");
        match t.entry(1) {
            TierEntry::Compiled(&b) => assert_eq!(b, 42, "first install wins"),
            e => panic!("expected compiled, got {e:?}"),
        }
        assert_eq!(t.compiled_count(), 1);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn threshold_zero_promotes_on_first_entry() {
        let t: TierTable<()> = TierTable::new(2, 0);
        assert!(matches!(t.entry(0), TierEntry::Promote));
    }

    #[test]
    fn per_pc_heat_is_independent() {
        let t: TierTable<()> = TierTable::new(3, 1);
        assert!(matches!(t.entry(0), TierEntry::Cold));
        assert!(matches!(t.entry(2), TierEntry::Cold));
        assert!(matches!(t.entry(0), TierEntry::Promote));
        assert!(matches!(t.entry(2), TierEntry::Promote));
    }

    #[test]
    fn config_constructors() {
        assert!(!TierConfig::disabled().enabled);
        assert!(TierConfig::default_on().enabled);
        assert_eq!(TierConfig::default_on().threshold, 8);
        assert_eq!(TierConfig::with_threshold(0).threshold, 0);
    }
}
