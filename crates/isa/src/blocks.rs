//! Superblock segmentation of machine programs.
//!
//! A *superblock* is a maximal straight-line run of instructions that is
//! guaranteed to fall through: no instruction before the run's terminal
//! one carries a control-flow effect (jump, conditional jump, halt), so a
//! simulator entering the run at any pc can dispatch every remaining
//! instruction of the run back to back without re-checking for control
//! transfers. Only the terminal instruction — the one bearing control
//! triggers, or the last instruction of the program — needs the full
//! per-cycle control machinery.
//!
//! The map stores, for every pc, the length of the straight-line run
//! *starting at* that pc (jump targets can land mid-run, so every pc is a
//! potential entry point). Long immediates and plain data moves have no
//! control effect and stay interior to a run.
//!
//! This is the block-level analogue of EDGE-style block-atomic dispatch:
//! the fused-block simulator engines in `tta-sim` pay their fuel check,
//! bounds check and delay-slot bookkeeping once per run entry instead of
//! once per cycle (see `DESIGN.md` §13).

use crate::code::{MoveDst, ScalarInst, TtaInst, VliwBundle, VliwSlot};
use crate::program::Program;
use tta_model::OpClass;

/// Whether a TTA instruction carries any control-flow trigger (jump,
/// conditional jump or halt). Such an instruction terminates a superblock.
pub fn tta_ends_block(inst: &TtaInst) -> bool {
    inst.slots
        .iter()
        .flatten()
        .any(|mv| matches!(mv.dst, MoveDst::FuTrigger(_, op) if op.class() == OpClass::Ctrl))
}

/// Whether a VLIW bundle issues any control-flow operation.
pub fn vliw_ends_block(bundle: &VliwBundle) -> bool {
    bundle
        .slots
        .iter()
        .flatten()
        .any(|slot| matches!(slot, VliwSlot::Op(o) if o.op.class() == OpClass::Ctrl))
}

/// Whether a scalar instruction is a control-flow operation.
pub fn scalar_ends_block(inst: &ScalarInst) -> bool {
    matches!(inst, ScalarInst::Op(o) if o.op.class() == OpClass::Ctrl)
}

/// Per-pc straight-line run lengths of a program (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMap {
    /// `run_len[pc]` = number of instructions from `pc` up to and
    /// including the run's terminal instruction. Always ≥ 1 for a valid
    /// pc; the terminal instruction is the first control-bearing
    /// instruction at or after `pc`, or the last instruction of the
    /// program.
    run_len: Vec<u32>,
}

impl BlockMap {
    /// Build the map from a per-instruction "ends a block" predicate.
    fn build(n: usize, ends: impl Fn(usize) -> bool) -> BlockMap {
        let mut run_len = vec![0u32; n];
        for i in (0..n).rev() {
            run_len[i] = if ends(i) || i + 1 == n {
                1
            } else {
                run_len[i + 1] + 1
            };
        }
        BlockMap { run_len }
    }

    /// Segment a TTA program.
    pub fn of_tta(insts: &[TtaInst]) -> BlockMap {
        Self::build(insts.len(), |i| tta_ends_block(&insts[i]))
    }

    /// Segment a VLIW program.
    pub fn of_vliw(bundles: &[VliwBundle]) -> BlockMap {
        Self::build(bundles.len(), |i| vliw_ends_block(&bundles[i]))
    }

    /// Segment a scalar program.
    pub fn of_scalar(insts: &[ScalarInst]) -> BlockMap {
        Self::build(insts.len(), |i| scalar_ends_block(&insts[i]))
    }

    /// Segment any program in its native style.
    pub fn of_program(program: &Program) -> BlockMap {
        match program {
            Program::Tta(v) => Self::of_tta(v),
            Program::Vliw(v) => Self::of_vliw(v),
            Program::Scalar(v) => Self::of_scalar(v),
        }
    }

    /// Length of the straight-line run starting at `pc` (≥ 1).
    ///
    /// # Panics
    /// If `pc` is outside the program.
    #[inline]
    pub fn run_len(&self, pc: u32) -> u32 {
        self.run_len[pc as usize]
    }

    /// Number of instructions covered by the map.
    pub fn len(&self) -> usize {
        self.run_len.len()
    }

    /// Whether the mapped program is empty.
    pub fn is_empty(&self) -> bool {
        self.run_len.is_empty()
    }

    /// Number of maximal superblocks in the program: runs counted from
    /// their canonical starts (pc 0 and every instruction following a
    /// terminal one). Mid-run jump entries do not add blocks.
    pub fn block_count(&self) -> usize {
        let mut n = 0;
        let mut pc = 0usize;
        while pc < self.run_len.len() {
            n += 1;
            pc += self.run_len[pc] as usize;
        }
        n
    }

    /// Mean instructions per maximal superblock (0.0 for empty programs).
    pub fn mean_block_len(&self) -> f64 {
        let blocks = self.block_count();
        if blocks == 0 {
            return 0.0;
        }
        self.run_len.len() as f64 / blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{Move, MoveSrc, OpSrc, Operation};
    use tta_model::{FuId, Opcode, RegRef, RfId};

    fn tta_nop() -> TtaInst {
        TtaInst::nop(2)
    }

    fn tta_jump() -> TtaInst {
        let mut i = TtaInst::nop(2);
        i.slots[0] = Some(Move {
            src: MoveSrc::Imm(0),
            dst: MoveDst::FuTrigger(FuId(2), Opcode::Jump),
        });
        i
    }

    fn tta_alu() -> TtaInst {
        let mut i = TtaInst::nop(2);
        i.slots[0] = Some(Move {
            src: MoveSrc::Imm(1),
            dst: MoveDst::FuTrigger(FuId(0), Opcode::Add),
        });
        i
    }

    #[test]
    fn tta_runs_terminate_at_control_and_program_end() {
        // [alu, nop, jump, alu, nop]
        let prog = vec![tta_alu(), tta_nop(), tta_jump(), tta_alu(), tta_nop()];
        let map = BlockMap::of_tta(&prog);
        assert_eq!(map.run_len(0), 3); // alu, nop, jump
        assert_eq!(map.run_len(1), 2); // mid-run entry: nop, jump
        assert_eq!(map.run_len(2), 1); // the jump itself
        assert_eq!(map.run_len(3), 2); // alu, nop — capped by program end
        assert_eq!(map.run_len(4), 1);
        assert_eq!(map.block_count(), 2);
        assert_eq!(map.mean_block_len(), 2.5);
    }

    #[test]
    fn tta_limm_and_data_moves_stay_interior() {
        let mut limm = TtaInst::nop(2);
        limm.limm = Some((0, 123));
        let prog = vec![limm, tta_alu(), tta_jump()];
        let map = BlockMap::of_tta(&prog);
        assert_eq!(map.run_len(0), 3);
        assert!(!tta_ends_block(&prog[0]));
        assert!(!tta_ends_block(&prog[1]));
        assert!(tta_ends_block(&prog[2]));
    }

    #[test]
    fn tta_halt_ends_a_block() {
        let mut halt = TtaInst::nop(2);
        halt.slots[1] = Some(Move {
            src: MoveSrc::Imm(0),
            dst: MoveDst::FuTrigger(FuId(2), Opcode::Halt),
        });
        assert!(tta_ends_block(&halt));
    }

    fn op(opc: Opcode) -> Operation {
        Operation {
            op: opc,
            fu: FuId(0),
            dst: opc.has_result().then_some(RegRef {
                rf: RfId(0),
                index: 0,
            }),
            a: Some(OpSrc::Imm(0)),
            b: (opc.num_inputs() > 1).then_some(OpSrc::Imm(0)),
        }
    }

    #[test]
    fn vliw_ctrl_slots_terminate_runs() {
        let mut plain = VliwBundle::nop(2);
        plain.slots[0] = Some(VliwSlot::Op(op(Opcode::Add)));
        let mut branch = VliwBundle::nop(2);
        branch.slots[1] = Some(VliwSlot::Op(op(Opcode::Jump)));
        let prog = vec![plain.clone(), VliwBundle::nop(2), branch, plain];
        let map = BlockMap::of_vliw(&prog);
        assert_eq!(map.run_len(0), 3);
        assert_eq!(map.run_len(2), 1);
        assert_eq!(map.run_len(3), 1);
        assert_eq!(map.block_count(), 2);
    }

    #[test]
    fn vliw_limm_heads_stay_interior() {
        let mut limm = VliwBundle::nop(2);
        limm.slots[0] = Some(VliwSlot::LimmHead {
            dst: RegRef {
                rf: RfId(0),
                index: 0,
            },
            value: 1 << 20,
        });
        limm.slots[1] = Some(VliwSlot::LimmCont);
        assert!(!vliw_ends_block(&limm));
    }

    #[test]
    fn scalar_runs_and_prefixes() {
        let prog = vec![
            ScalarInst::Op(op(Opcode::Add)),
            ScalarInst::ImmPrefix,
            ScalarInst::Op(op(Opcode::Add)),
            ScalarInst::Op(op(Opcode::CJnz)),
            ScalarInst::Op(op(Opcode::Halt)),
        ];
        let map = BlockMap::of_scalar(&prog);
        assert_eq!(map.run_len(0), 4); // up to and including the cjnz
        assert_eq!(map.run_len(1), 3);
        assert_eq!(map.run_len(4), 1); // halt is its own run
        assert_eq!(map.block_count(), 2);
        assert!(!scalar_ends_block(&ScalarInst::ImmPrefix));
        assert!(scalar_ends_block(&prog[4]));
    }

    #[test]
    fn of_program_dispatches_by_style() {
        let p = Program::Tta(vec![tta_alu(), tta_jump()]);
        let map = BlockMap::of_program(&p);
        assert_eq!(map.len(), 2);
        assert_eq!(map.run_len(0), 2);
        assert!(!map.is_empty());
        assert!(BlockMap::of_program(&Program::Scalar(vec![])).is_empty());
        assert_eq!(
            BlockMap::of_program(&Program::Vliw(vec![])).block_count(),
            0
        );
        assert_eq!(BlockMap::of_scalar(&[]).mean_block_len(), 0.0);
    }
}
