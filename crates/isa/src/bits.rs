//! Bit-exact binary encoding of TTA programs.
//!
//! This is the machine-code generator behind the Table II width numbers:
//! each move slot is packed as a 1-bit immediate flag, a source field
//! (socket index or short immediate), and a destination field (socket /
//! register / trigger-opcode index), with one leading template bit that
//! selects the long-immediate format (in which the first
//! `limm.bus_slots` slots are repurposed to carry an immediate-register
//! selector plus the 32-bit value, exactly the TCE template mechanism the
//! paper relies on).
//!
//! Encoding and decoding round-trip bit-exactly; the property tests in
//! this module and `tests/encoding_roundtrip.rs` enforce it for random
//! instructions and for whole compiled kernels.

use crate::code::{Move, MoveDst, MoveSrc, TtaInst};
use crate::encoding::{ceil_log2, tta_dst_bits, tta_instruction_bits, tta_src_bits};
use crate::program::IsaError;
use tta_model::{DstConn, FuId, Machine, Opcode, RegRef, RfId, SrcConn};

/// A source item addressable by a slot's source field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SrcItem {
    Rf(RfId, u16),
    FuResult(FuId),
    ImmReg(u8),
}

/// A destination item addressable by a slot's destination field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DstItem {
    Nop,
    Rf(RfId, u16),
    FuOperand(FuId),
    FuTrigger(FuId, Opcode),
}

struct SlotLayout {
    src_items: Vec<SrcItem>,
    dst_items: Vec<DstItem>,
    /// Content bits of the source field (excluding the immediate flag).
    src_bits: u32,
    dst_bits: u32,
    simm_bits: u32,
}

/// Bit-exact encoder/decoder for one machine's TTA instruction format.
pub struct TtaCodec {
    slots: Vec<SlotLayout>,
    width: u32,
    limm_reg_bits: u32,
    limm_slots: usize,
}

struct BitWriter {
    bytes: Vec<u8>,
    pos: u64,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            pos: 0,
        }
    }
    /// Append `n` bits of `v` (MSB of the field first).
    fn put(&mut self, v: u64, n: u32) {
        for k in (0..n).rev() {
            let bit = (v >> k) & 1;
            let byte = (self.pos / 8) as usize;
            if byte == self.bytes.len() {
                self.bytes.push(0);
            }
            self.bytes[byte] |= (bit as u8) << (7 - (self.pos % 8));
            self.pos += 1;
        }
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    fn get(&mut self, n: u32) -> Result<u64, IsaError> {
        let mut v = 0u64;
        for _ in 0..n {
            let byte = (self.pos / 8) as usize;
            if byte >= self.bytes.len() {
                return Err(IsaError("bitstream exhausted".into()));
            }
            let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(v)
    }
}

impl TtaCodec {
    /// Derive the instruction format of a TTA machine.
    pub fn new(m: &Machine) -> TtaCodec {
        let mut slots = Vec::with_capacity(m.buses.len());
        for bus in &m.buses {
            let mut src_items = Vec::new();
            for s in &bus.sources {
                match *s {
                    SrcConn::RfRead(rf) => {
                        for i in 0..m.rf(rf).regs {
                            src_items.push(SrcItem::Rf(rf, i));
                        }
                    }
                    SrcConn::FuResult(f) => src_items.push(SrcItem::FuResult(f)),
                }
            }
            for k in 0..m.limm.imm_regs {
                src_items.push(SrcItem::ImmReg(k));
            }
            let mut dst_items = vec![DstItem::Nop];
            for d in &bus.dests {
                match *d {
                    DstConn::RfWrite(rf) => {
                        for i in 0..m.rf(rf).regs {
                            dst_items.push(DstItem::Rf(rf, i));
                        }
                    }
                    DstConn::FuOperand(f) => dst_items.push(DstItem::FuOperand(f)),
                    DstConn::FuTrigger(f) => {
                        for &op in &m.fu(f).ops {
                            dst_items.push(DstItem::FuTrigger(f, op));
                        }
                    }
                }
            }
            slots.push(SlotLayout {
                src_bits: tta_src_bits(m, bus) - 1, // content bits
                dst_bits: tta_dst_bits(m, bus),
                simm_bits: bus.simm_bits as u32,
                src_items,
                dst_items,
            });
        }
        let limm_slots = m.limm.bus_slots as usize;
        let codec = TtaCodec {
            width: tta_instruction_bits(m),
            limm_reg_bits: ceil_log2(m.limm.imm_regs as usize).max(1),
            limm_slots,
            slots,
        };
        // The long-immediate template must fit in the repurposed slots.
        let limm_capacity: u32 = codec.slots[..limm_slots]
            .iter()
            .map(|s| 1 + s.src_bits + s.dst_bits)
            .sum();
        assert!(
            limm_capacity >= codec.limm_reg_bits + 32,
            "long-immediate template needs {} bits but the first {} slots provide {}",
            codec.limm_reg_bits + 32,
            limm_slots,
            limm_capacity
        );
        codec
    }

    /// Instruction width in bits (identical to
    /// [`tta_instruction_bits`]).
    pub fn width(&self) -> u32 {
        self.width
    }

    fn encode_inst(&self, inst: &TtaInst, w: &mut BitWriter) -> Result<(), IsaError> {
        if inst.slots.len() != self.slots.len() {
            return Err(IsaError(format!(
                "instruction has {} slots, format has {}",
                inst.slots.len(),
                self.slots.len()
            )));
        }
        let start = w.pos;
        match inst.limm {
            None => {
                w.put(0, 1);
                for (mv, layout) in inst.slots.iter().zip(&self.slots) {
                    self.encode_slot(*mv, layout, w)?;
                }
            }
            Some((reg, value)) => {
                w.put(1, 1);
                // Repurposed slots: imm register selector + 32-bit value,
                // zero-padded to the slots' combined width.
                let cap: u32 = self.slots[..self.limm_slots]
                    .iter()
                    .map(|s| 1 + s.src_bits + s.dst_bits)
                    .sum();
                w.put(reg as u64, self.limm_reg_bits);
                w.put(value as u32 as u64, 32);
                w.put(0, cap - self.limm_reg_bits - 32);
                for (mv, layout) in inst.slots.iter().zip(&self.slots).skip(self.limm_slots) {
                    self.encode_slot(*mv, layout, w)?;
                }
            }
        }
        debug_assert_eq!(w.pos - start, self.width as u64);
        Ok(())
    }

    fn encode_slot(
        &self,
        mv: Option<Move>,
        layout: &SlotLayout,
        w: &mut BitWriter,
    ) -> Result<(), IsaError> {
        match mv {
            None => {
                // NOP: flag 0, source 0, destination code 0.
                w.put(0, 1 + layout.src_bits + layout.dst_bits);
            }
            Some(mv) => {
                match mv.src {
                    MoveSrc::Imm(v) => {
                        w.put(1, 1);
                        let mask = if layout.simm_bits >= 32 {
                            u32::MAX as u64
                        } else {
                            (1u64 << layout.simm_bits) - 1
                        };
                        w.put(v as u32 as u64 & mask, layout.src_bits);
                    }
                    _ => {
                        let item = match mv.src {
                            MoveSrc::Rf(r) => SrcItem::Rf(r.rf, r.index),
                            MoveSrc::FuResult(f) => SrcItem::FuResult(f),
                            MoveSrc::ImmReg(k) => SrcItem::ImmReg(k),
                            MoveSrc::Imm(_) => unreachable!(),
                        };
                        let idx = layout
                            .src_items
                            .iter()
                            .position(|&i| i == item)
                            .ok_or_else(|| {
                                IsaError(format!("source {:?} not reachable on this bus", mv.src))
                            })?;
                        w.put(0, 1);
                        w.put(idx as u64, layout.src_bits);
                    }
                }
                let ditem = match mv.dst {
                    MoveDst::Rf(r) => DstItem::Rf(r.rf, r.index),
                    MoveDst::FuOperand(f) => DstItem::FuOperand(f),
                    MoveDst::FuTrigger(f, op) => DstItem::FuTrigger(f, op),
                };
                let didx = layout
                    .dst_items
                    .iter()
                    .position(|&i| i == ditem)
                    .ok_or_else(|| {
                        IsaError(format!(
                            "destination {:?} not reachable on this bus",
                            mv.dst
                        ))
                    })?;
                w.put(didx as u64, layout.dst_bits);
            }
        }
        Ok(())
    }

    fn decode_inst(&self, r: &mut BitReader) -> Result<TtaInst, IsaError> {
        let mut inst = TtaInst::nop(self.slots.len());
        let template = r.get(1)?;
        let skip = if template == 1 {
            let reg = r.get(self.limm_reg_bits)? as u8;
            let value = r.get(32)? as u32 as i32;
            let cap: u32 = self.slots[..self.limm_slots]
                .iter()
                .map(|s| 1 + s.src_bits + s.dst_bits)
                .sum();
            let _ = r.get(cap - self.limm_reg_bits - 32)?;
            inst.limm = Some((reg, value));
            self.limm_slots
        } else {
            0
        };
        for (si, layout) in self.slots.iter().enumerate().skip(skip) {
            let flag = r.get(1)?;
            let src_field = r.get(layout.src_bits)?;
            let dst_field = r.get(layout.dst_bits)? as usize;
            if dst_field == 0 {
                continue; // NOP slot
            }
            let dst = match layout.dst_items.get(dst_field) {
                Some(DstItem::Rf(rf, i)) => MoveDst::Rf(RegRef { rf: *rf, index: *i }),
                Some(DstItem::FuOperand(f)) => MoveDst::FuOperand(*f),
                Some(DstItem::FuTrigger(f, op)) => MoveDst::FuTrigger(*f, *op),
                _ => return Err(IsaError(format!("bad destination code {dst_field}"))),
            };
            let src = if flag == 1 {
                // Sign-extend the short immediate.
                let v = if layout.simm_bits >= 32 {
                    src_field as u32 as i32
                } else {
                    let shift = 32 - layout.simm_bits;
                    (((src_field as u32) << shift) as i32) >> shift
                };
                MoveSrc::Imm(v)
            } else {
                match layout.src_items.get(src_field as usize) {
                    Some(SrcItem::Rf(rf, i)) => MoveSrc::Rf(RegRef { rf: *rf, index: *i }),
                    Some(SrcItem::FuResult(f)) => MoveSrc::FuResult(*f),
                    Some(SrcItem::ImmReg(k)) => MoveSrc::ImmReg(*k),
                    None => return Err(IsaError(format!("bad source code {src_field}"))),
                }
            };
            inst.slots[si] = Some(Move { src, dst });
        }
        Ok(inst)
    }

    /// Encode a program into a packed big-endian bitstream.
    pub fn encode_program(&self, insts: &[TtaInst]) -> Result<Vec<u8>, IsaError> {
        let mut w = BitWriter::new();
        for inst in insts {
            self.encode_inst(inst, &mut w)?;
        }
        Ok(w.bytes)
    }

    /// Decode `n` instructions from a packed bitstream.
    pub fn decode_program(&self, bytes: &[u8], n: usize) -> Result<Vec<TtaInst>, IsaError> {
        let mut r = BitReader { bytes, pos: 0 };
        (0..n).map(|_| self.decode_inst(&mut r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::presets;

    #[test]
    fn codec_width_matches_encoding_model() {
        for m in presets::all_design_points() {
            if m.style != tta_model::CoreStyle::Tta {
                continue;
            }
            let c = TtaCodec::new(&m);
            assert_eq!(c.width(), tta_instruction_bits(&m), "{}", m.name);
        }
    }

    #[test]
    fn nop_and_limm_roundtrip() {
        let m = presets::m_tta_2();
        let c = TtaCodec::new(&m);
        let nop = TtaInst::nop(m.buses.len());
        let mut limm = TtaInst::nop(m.buses.len());
        limm.limm = Some((1, -123_456_789));
        let prog = vec![nop.clone(), limm.clone(), nop];
        let bytes = c.encode_program(&prog).unwrap();
        assert_eq!(bytes.len(), (3 * c.width() as usize).div_ceil(8));
        let back = c.decode_program(&bytes, 3).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn moves_roundtrip() {
        let m = presets::m_tta_1();
        let c = TtaCodec::new(&m);
        // One of each move flavour on the buses that support them.
        let mut inst = TtaInst::nop(3);
        inst.slots[0] = Some(Move {
            src: MoveSrc::Rf(RegRef {
                rf: RfId(0),
                index: 31,
            }),
            dst: MoveDst::FuTrigger(FuId(0), Opcode::Mul),
        });
        inst.slots[2] = Some(Move {
            src: MoveSrc::Imm(-32),
            dst: MoveDst::FuOperand(FuId(1)),
        });
        let bytes = c.encode_program(std::slice::from_ref(&inst)).unwrap();
        let back = c.decode_program(&bytes, 1).unwrap();
        assert_eq!(back[0], inst);
    }

    #[test]
    fn unconnected_move_is_rejected() {
        let m = presets::m_tta_2();
        let c = TtaCodec::new(&m);
        // Find a bus that cannot read the RF and try to encode an RF read
        // on it.
        let bad = (0..m.buses.len())
            .find(|&b| !m.buses[b].reads(SrcConn::RfRead(RfId(0))))
            .expect("pruned preset");
        let mut inst = TtaInst::nop(m.buses.len());
        inst.slots[bad] = Some(Move {
            src: MoveSrc::Rf(RegRef {
                rf: RfId(0),
                index: 0,
            }),
            dst: MoveDst::FuOperand(FuId(0)),
        });
        assert!(c.encode_program(&[inst]).is_err());
    }
}
