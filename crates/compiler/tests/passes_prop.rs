//! Property tests for the IR-level passes: inlining, dead-code elimination
//! and constant legalisation must preserve interpreter semantics on random
//! programs, and DCE must actually remove provably dead code. Cases come
//! from a deterministic PRNG and are reproducible from their number.

use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::{Module, VReg};
use tta_model::Opcode;
use tta_testutil::Rng;

const BIN_OPS: [Opcode; 8] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Ior,
    Opcode::Xor,
    Opcode::Mul,
    Opcode::Gt,
    Opcode::Shl,
];

/// A straight-line program recipe: each step combines two earlier values.
#[derive(Debug, Clone)]
struct Step {
    op: usize,
    a: usize,
    b: usize,
    /// Whether this value feeds the final result.
    used: bool,
}

fn build(steps: &[Step]) -> (Module, Vec<VReg>) {
    let mut mb = ModuleBuilder::new("p");
    let mut fb = FunctionBuilder::new("main", 0, true);
    let mut vals = vec![fb.copy(0x1357), fb.copy(42)];
    let mut used_vals = Vec::new();
    for s in steps {
        let a = vals[s.a % vals.len()];
        let b = vals[s.b % vals.len()];
        let v = fb.bin(BIN_OPS[s.op % BIN_OPS.len()], a, b);
        if s.used {
            used_vals.push(v);
        }
        vals.push(v);
    }
    let mut acc = fb.copy(7);
    for v in &used_vals {
        let n = fb.xor(acc, *v);
        acc = n;
    }
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    (mb.finish(), vals)
}

#[test]
fn dce_preserves_semantics_and_removes_dead_tails() {
    for case in 0u64..128 {
        let mut rng = Rng::new(case);
        let n = rng.range(1, 40);
        let steps: Vec<Step> = rng.vec(n, |r| Step {
            op: r.below(usize::MAX),
            a: r.below(usize::MAX),
            b: r.below(usize::MAX),
            used: r.next_bool(),
        });
        let (module, _) = build(&steps);
        let before = tta_ir::interp::run_ret(&module, &[]);

        let mut flat = tta_compiler::inline::inline_module(&module).unwrap();
        let n_before = flat.inst_count();
        let removed = tta_compiler::dce::eliminate_dead_code(&mut flat);
        assert_eq!(flat.inst_count() + removed, n_before, "case {case}");
        tta_ir::verify::verify_function(&flat, None).unwrap();

        // Wrap the optimised function back into a module and re-interpret.
        let opt_module = Module {
            name: module.name.clone(),
            funcs: vec![flat],
            entry: tta_ir::FuncId(0),
            data: module.data.clone(),
            mem_size: module.mem_size,
        };
        assert_eq!(
            tta_ir::interp::run_ret(&opt_module, &[]),
            before,
            "case {case}"
        );

        // Every value never reaching the result whose consumers are all
        // dead must be gone: if NO step is used, only the seed/result
        // scaffolding survives.
        if steps.iter().all(|s| !s.used) {
            assert!(
                opt_module.funcs[0].inst_count() <= 3,
                "case {case}: all steps dead but {} instructions remain",
                opt_module.funcs[0].inst_count()
            );
        }
    }
}

#[test]
fn const_legalisation_preserves_semantics() {
    for case in 0u64..128 {
        let mut rng = Rng::new(0xc0de ^ case);
        let n = rng.range(1, 12);
        let consts: Vec<i32> = rng.vec(n, |r| r.next_i32());
        let budget = rng.range(1, 16);
        let mut mb = ModuleBuilder::new("c");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let mut acc = fb.copy(1);
        for (k, c) in consts.iter().enumerate() {
            // Use some constants twice so both hoisting paths trigger.
            let v = fb.add(acc, *c);
            acc = if k % 2 == 0 { fb.xor(v, *c) } else { v };
        }
        fb.ret(acc);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let module = mb.finish();
        let before = tta_ir::interp::run_ret(&module, &[]);

        let mut flat = tta_compiler::inline::inline_module(&module).unwrap();
        tta_compiler::consts::hoist_wide_constants(
            &mut flat,
            &|v: i32| (-32..32).contains(&v),
            budget,
        );
        tta_ir::verify::verify_function(&flat, None).unwrap();
        let opt_module = Module {
            name: module.name.clone(),
            funcs: vec![flat.clone()],
            entry: tta_ir::FuncId(0),
            data: module.data.clone(),
            mem_size: module.mem_size,
        };
        assert_eq!(
            tta_ir::interp::run_ret(&opt_module, &[]),
            before,
            "case {case}"
        );

        // Post-condition: no wide immediate survives outside Copy sources.
        for b in &flat.blocks {
            for inst in &b.insts {
                if matches!(inst, tta_ir::Inst::Copy { .. }) {
                    continue;
                }
                for u in collect_imms(inst) {
                    assert!(
                        (-32..32).contains(&u),
                        "case {case}: wide imm {u} left in {inst}"
                    );
                }
            }
        }
    }
}

fn collect_imms(inst: &tta_ir::Inst) -> Vec<i32> {
    use tta_ir::{Inst, Operand};
    let mut out = Vec::new();
    let mut push = |o: &Operand| {
        if let Operand::Imm(v) = o {
            out.push(*v);
        }
    };
    match inst {
        Inst::Bin { a, b, .. } => {
            push(a);
            push(b);
        }
        Inst::Un { a, .. } => push(a),
        Inst::Copy { src, .. } => push(src),
        Inst::Load { addr, .. } => push(addr),
        Inst::Store { value, addr, .. } => {
            push(value);
            push(addr);
        }
        Inst::Call { args, .. } => args.iter().for_each(push),
    }
    out
}
