//! Linear-scan register allocation onto the machine's register files.
//!
//! For partitioned-RF design points the allocator spreads values across the
//! banks (least-loaded bank first) so the per-bank port limits of `p-vliw`
//! and `p-tta` bind as rarely as possible — this is the "pressure on the
//! compiler to assign variables efficiently to the RFs" the paper discusses
//! in §III-D. Values that do not fit spill to a dedicated scratch area at
//! the top of data memory and are reloaded around each use.

use crate::bitset::BitSet;
use crate::liveness::Liveness;
use std::collections::HashMap;
use tta_ir::{Function, Inst, MemRegion, Operand, Terminator, VReg};
use tta_model::{Machine, Opcode, RegRef, RfId};

/// Result of register allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The (possibly spill-rewritten) function the assignment refers to.
    pub func: Function,
    /// Physical register per vreg (dense, indexed by vreg number). `None`
    /// for vregs that do not occur in the final function.
    pub assignment: Vec<Option<RegRef>>,
    /// Number of vregs spilled across all rounds.
    pub spilled: usize,
    /// Bytes of spill memory used.
    pub spill_bytes: u32,
}

impl Allocation {
    /// Physical register of `r`.
    pub fn reg(&self, r: VReg) -> RegRef {
        self.assignment[r.0 as usize].expect("allocated register")
    }
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError(pub String);

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for AllocError {}

/// Alias-region base for spill slots; each slot gets its own region since
/// slots are mutually disjoint and disjoint from all program data.
pub const SPILL_REGION_BASE: u16 = 0x8000;

/// Allocate registers for `f` on `machine`.
///
/// `reserved` registers are never allocated (e.g. the VLIW branch-target
/// scratch register). `spill_base` is the first byte address of the spill
/// area.
pub fn allocate(
    f: &Function,
    machine: &Machine,
    reserved: &[RegRef],
    spill_base: u32,
) -> Result<Allocation, AllocError> {
    let _span = tta_obs::span("regalloc");
    assert!(f.params.is_empty(), "entry functions take no parameters");
    let mut func = f.clone();
    // Compact once up front (the inliner leaves the vreg space sparse);
    // further rounds must NOT renumber or the spill-temp tracking below
    // would be invalidated.
    crate::compact::compact_vregs(&mut func);
    let mut no_spill_set: Vec<VReg> = Vec::new();
    let mut total_spilled = 0usize;
    let mut next_slot = 0u32;
    let mut slot_for: HashMap<VReg, u32> = HashMap::new();

    for _round in 0..64 {
        let nregs = func.next_vreg as usize;
        let mut no_spill = BitSet::new(nregs);
        for r in &no_spill_set {
            if (r.0 as usize) < nregs {
                no_spill.insert(r.0 as usize);
            }
        }

        match try_allocate(&func, machine, reserved, &no_spill) {
            Ok(assignment) => {
                tta_obs::counter::add("compiler.spilled", total_spilled as u64);
                tta_obs::counter::add("compiler.spill_bytes", (next_slot * 4) as u64);
                return Ok(Allocation {
                    func,
                    assignment,
                    spilled: total_spilled,
                    spill_bytes: next_slot * 4,
                });
            }
            Err(spill) => {
                if spill.is_empty() {
                    return Err(AllocError(format!(
                        "register allocation wedged on {}",
                        machine.name
                    )));
                }
                total_spilled += spill.len();
                no_spill_set =
                    rewrite_spills(&mut func, &spill, spill_base, &mut next_slot, &mut slot_for);
            }
        }
    }
    Err(AllocError(format!(
        "register allocation did not converge on {}",
        machine.name
    )))
}

/// One linear-scan round: returns an assignment, or the set of vregs to
/// spill.
#[allow(clippy::result_large_err)]
fn try_allocate(
    f: &Function,
    machine: &Machine,
    reserved: &[RegRef],
    no_spill: &BitSet,
) -> Result<Vec<Option<RegRef>>, Vec<VReg>> {
    let nregs = f.next_vreg as usize;
    let live = Liveness::compute(f);

    // Linearised positions: block `bi` spans [starts[bi], starts[bi+1]).
    let mut starts = Vec::with_capacity(f.blocks.len() + 1);
    let mut pos = 0u32;
    for b in &f.blocks {
        starts.push(pos);
        pos += b.insts.len() as u32 + 1; // +1 for the terminator
    }
    starts.push(pos);

    // Coarse intervals [from, to] per vreg.
    let mut from = vec![u32::MAX; nregs];
    let mut to = vec![0u32; nregs];
    let touch = |r: usize, p: u32, from: &mut [u32], to: &mut [u32]| {
        from[r] = from[r].min(p);
        to[r] = to[r].max(p);
    };
    for (bi, b) in f.blocks.iter().enumerate() {
        let bstart = starts[bi];
        let bend = starts[bi + 1] - 1;
        for r in live.live_in[bi].iter() {
            touch(r, bstart, &mut from, &mut to);
        }
        for r in live.live_out[bi].iter() {
            touch(r, bend, &mut from, &mut to);
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            let p = bstart + ii as u32;
            for u in inst.uses() {
                touch(u.0 as usize, p, &mut from, &mut to);
            }
            if let Some(d) = inst.def() {
                touch(d.0 as usize, p, &mut from, &mut to);
            }
        }
        if let Some(t) = &b.term {
            for u in t.uses() {
                touch(u.0 as usize, bend, &mut from, &mut to);
            }
        }
    }

    // Register pool.
    let mut free: Vec<Vec<u16>> = machine
        .rfs
        .iter()
        .enumerate()
        .map(|(ri, rf)| {
            (0..rf.regs)
                .rev()
                .filter(|&i| {
                    !reserved.contains(&RegRef {
                        rf: RfId(ri as u16),
                        index: i,
                    })
                })
                .collect()
        })
        .collect();
    let mut active_per_bank = vec![0usize; machine.rfs.len()];

    // Intervals sorted by start.
    let mut order: Vec<usize> = (0..nregs).filter(|&r| from[r] != u32::MAX).collect();
    order.sort_by_key(|&r| (from[r], r));

    let mut assignment: Vec<Option<RegRef>> = vec![None; nregs];
    // Active intervals: (end, vreg) sorted ascending by end.
    let mut active: Vec<(u32, usize)> = Vec::new();
    let mut spill: Vec<VReg> = Vec::new();

    for &r in &order {
        // Expire.
        let mut k = 0;
        while k < active.len() && active[k].0 < from[r] {
            let (_, v) = active[k];
            let reg = assignment[v].unwrap();
            free[reg.rf.0 as usize].push(reg.index);
            active_per_bank[reg.rf.0 as usize] -= 1;
            k += 1;
        }
        active.drain(0..k);

        // Pick the least-loaded bank with a free register.
        let bank = (0..machine.rfs.len())
            .filter(|&b| !free[b].is_empty())
            .min_by_key(|&b| (active_per_bank[b] * 1000) / machine.rfs[b].regs as usize);
        match bank {
            Some(b) => {
                let idx = free[b].pop().unwrap();
                assignment[r] = Some(RegRef {
                    rf: RfId(b as u16),
                    index: idx,
                });
                active_per_bank[b] += 1;
                let ins = active.partition_point(|&(e, _)| e <= to[r]);
                active.insert(ins, (to[r], r));
            }
            None => {
                // Spill the spillable interval with the furthest end.
                let victim = active
                    .iter()
                    .rev()
                    .map(|&(_, v)| v)
                    .find(|&v| !no_spill.contains(v));
                match victim {
                    Some(v) if to[v] > to[r] || no_spill.contains(r) => {
                        // Steal v's register for r.
                        let reg = assignment[v].take().unwrap();
                        assignment[r] = Some(reg);
                        let vi = active.iter().position(|&(_, x)| x == v).unwrap();
                        active.remove(vi);
                        let ins = active.partition_point(|&(e, _)| e <= to[r]);
                        active.insert(ins, (to[r], r));
                        spill.push(VReg(v as u32));
                    }
                    _ => {
                        assert!(
                            !no_spill.contains(r),
                            "spill temp does not fit; machine {} lacks registers",
                            machine.name
                        );
                        spill.push(VReg(r as u32));
                    }
                }
            }
        }
    }

    if spill.is_empty() {
        Ok(assignment)
    } else {
        Err(spill)
    }
}

/// Replace every def/use of the spilled vregs with short-lived temps around
/// memory accesses to their spill slots. Returns the temps (which must not
/// spill again).
fn rewrite_spills(
    f: &mut Function,
    spill: &[VReg],
    spill_base: u32,
    next_slot: &mut u32,
    slot_for: &mut HashMap<VReg, u32>,
) -> Vec<VReg> {
    let spilled: std::collections::HashSet<VReg> = spill.iter().copied().collect();
    let mut addr_of = |r: VReg, next_slot: &mut u32| -> (i32, MemRegion) {
        let slot = *slot_for.entry(r).or_insert_with(|| {
            let s = *next_slot;
            *next_slot += 1;
            s
        });
        (
            (spill_base + slot * 4) as i32,
            MemRegion(SPILL_REGION_BASE + (slot % 0x7000) as u16),
        )
    };
    let mut temps = Vec::new();

    let mut blocks = std::mem::take(&mut f.blocks);
    for b in &mut blocks {
        let old = std::mem::take(&mut b.insts);
        let mut out = Vec::with_capacity(old.len() * 2);
        for mut inst in old {
            // Reload spilled uses into fresh temps (one temp per distinct
            // spilled register per instruction).
            let mut reloads: Vec<(VReg, VReg)> = Vec::new(); // (old, temp)
            let uses = inst.uses();
            for u in uses {
                if spilled.contains(&u) && !reloads.iter().any(|(o, _)| *o == u) {
                    let t = f.next_vreg;
                    f.next_vreg += 1;
                    reloads.push((u, VReg(t)));
                }
            }
            for (old_r, t) in &reloads {
                let (addr, region) = addr_of(*old_r, next_slot);
                // Spill addresses sit at the top of memory, far outside any
                // inline-immediate range, and this rewrite runs after
                // constant legalisation — so materialise the address
                // explicitly (the backends lower wide-immediate copies
                // through limm / imm-prefix).
                let addr_tmp = VReg(f.next_vreg);
                f.next_vreg += 1;
                temps.push(addr_tmp);
                out.push(Inst::Copy {
                    dst: addr_tmp,
                    src: Operand::Imm(addr),
                });
                out.push(Inst::Load {
                    op: Opcode::Ldw,
                    dst: *t,
                    addr: Operand::Reg(addr_tmp),
                    region,
                });
                temps.push(*t);
                substitute_uses(&mut inst, *old_r, *t);
            }
            // Redirect spilled defs to temps and store them.
            if let Some(d) = inst.def() {
                if spilled.contains(&d) {
                    let t = VReg(f.next_vreg);
                    f.next_vreg += 1;
                    temps.push(t);
                    substitute_def(&mut inst, t);
                    let (addr, region) = addr_of(d, next_slot);
                    let addr_tmp = VReg(f.next_vreg);
                    f.next_vreg += 1;
                    temps.push(addr_tmp);
                    out.push(inst);
                    out.push(Inst::Copy {
                        dst: addr_tmp,
                        src: Operand::Imm(addr),
                    });
                    out.push(Inst::Store {
                        op: Opcode::Stw,
                        value: Operand::Reg(t),
                        addr: Operand::Reg(addr_tmp),
                        region,
                    });
                    continue;
                }
            }
            out.push(inst);
        }
        // Terminator uses.
        if let Some(t) = &mut b.term {
            let cond_reg = match t {
                Terminator::Branch {
                    cond: Operand::Reg(r),
                    ..
                } => Some(*r),
                Terminator::Ret(Some(Operand::Reg(r))) => Some(*r),
                _ => None,
            };
            if let Some(r) = cond_reg {
                if spilled.contains(&r) {
                    let tmp = VReg(f.next_vreg);
                    f.next_vreg += 1;
                    temps.push(tmp);
                    let (addr, region) = addr_of(r, next_slot);
                    let addr_tmp = VReg(f.next_vreg);
                    f.next_vreg += 1;
                    temps.push(addr_tmp);
                    out.push(Inst::Copy {
                        dst: addr_tmp,
                        src: Operand::Imm(addr),
                    });
                    out.push(Inst::Load {
                        op: Opcode::Ldw,
                        dst: tmp,
                        addr: Operand::Reg(addr_tmp),
                        region,
                    });
                    match t {
                        Terminator::Branch { cond, .. } => *cond = Operand::Reg(tmp),
                        Terminator::Ret(Some(o)) => *o = Operand::Reg(tmp),
                        _ => unreachable!(),
                    }
                }
            }
        }
        b.insts = out;
    }
    f.blocks = blocks;
    temps
}

fn substitute_uses(inst: &mut Inst, old: VReg, new: VReg) {
    let fix = |o: &mut Operand| {
        if *o == Operand::Reg(old) {
            *o = Operand::Reg(new);
        }
    };
    match inst {
        Inst::Bin { a, b, .. } => {
            fix(a);
            fix(b);
        }
        Inst::Un { a, .. } => fix(a),
        Inst::Copy { src, .. } => fix(src),
        Inst::Load { addr, .. } => fix(addr),
        Inst::Store { value, addr, .. } => {
            fix(value);
            fix(addr);
        }
        Inst::Call { args, .. } => args.iter_mut().for_each(fix),
    }
}

fn substitute_def(inst: &mut Inst, new: VReg) {
    match inst {
        Inst::Bin { dst, .. }
        | Inst::Un { dst, .. }
        | Inst::Copy { dst, .. }
        | Inst::Load { dst, .. } => *dst = new,
        Inst::Call { dst: Some(d), .. } => *d = new,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
    use tta_model::presets;

    /// Build a function with `n` long-lived values all live at once.
    fn pressure_func(n: usize) -> Function {
        let mut fb = FunctionBuilder::new("main", 0, true);
        let vals: Vec<_> = (0..n).map(|i| fb.copy(i as i32)).collect();
        // Use them all after defining them all, forcing n simultaneous
        // live values.
        let mut acc = fb.copy(0);
        for v in &vals {
            let t = fb.add(acc, *v);
            acc = t;
        }
        fb.ret(acc);
        fb.finish()
    }

    #[test]
    fn allocates_without_spills_when_registers_suffice() {
        let m = presets::m_tta_1(); // 32 regs
        let f = pressure_func(10);
        let a = allocate(&f, &m, &[], 1 << 16).unwrap();
        assert_eq!(a.spilled, 0);
        // All allocated registers are distinct while overlapping.
        let regs: Vec<_> = a.assignment.iter().flatten().collect();
        assert!(!regs.is_empty());
    }

    #[test]
    fn spills_under_pressure_and_preserves_semantics() {
        let m = presets::m_tta_1(); // 32 regs, pressure 40 forces spills
        let f = pressure_func(40);
        let a = allocate(&f, &m, &[], 1 << 16).unwrap();
        assert!(
            a.spilled > 0,
            "expected spills with 40 live values in 32 regs"
        );
        // The rewritten function must still compute the same value.
        let run = |f: Function| {
            let mut mb = ModuleBuilder::new("m");
            let id = mb.add(f);
            mb.set_entry(id);
            let mut m = mb.finish();
            m.mem_size = 1 << 17;
            tta_ir::interp::run_ret(&m, &[])
        };
        assert_eq!(run(pressure_func(40)), run(a.func.clone()));
        tta_ir::verify::verify_function(&a.func, None).unwrap();
    }

    #[test]
    fn no_overlapping_intervals_share_a_register() {
        // Property-style check on the pressure function: values that are
        // simultaneously live must get distinct registers.
        let m = presets::p_tta_2(); // 2 banks x 32
        let f = pressure_func(30);
        let a = allocate(&f, &m, &[], 1 << 16).unwrap();
        assert_eq!(a.spilled, 0);
        // vals are all live at the midpoint; their registers must be unique.
        let mut seen = std::collections::HashSet::new();
        for (v, r) in a.assignment.iter().enumerate() {
            if let Some(r) = r {
                // Only check the long-lived vals (first 31 vregs).
                if v < 30 {
                    assert!(seen.insert(*r), "register {r} assigned twice");
                }
            }
        }
    }

    #[test]
    fn partitioned_banks_are_balanced() {
        let m = presets::p_tta_3(); // 3 banks x 32
        let f = pressure_func(24);
        let a = allocate(&f, &m, &[], 1 << 16).unwrap();
        let mut per_bank = vec![0usize; 3];
        for r in a.assignment.iter().flatten() {
            per_bank[r.rf.0 as usize] += 1;
        }
        // With 25+ values and 3 banks, each bank should hold a fair share.
        for (b, &n) in per_bank.iter().enumerate() {
            assert!(n >= 4, "bank {b} underused: {per_bank:?}");
        }
    }

    #[test]
    fn reserved_registers_are_never_assigned() {
        let m = presets::m_vliw_2();
        let reserved = RegRef {
            rf: RfId(0),
            index: 63,
        };
        let f = pressure_func(20);
        let a = allocate(&f, &m, &[reserved], 1 << 16).unwrap();
        assert!(a.assignment.iter().flatten().all(|r| *r != reserved));
    }
}
