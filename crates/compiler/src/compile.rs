//! The top-level compilation driver: verified IR module in, validated
//! machine program out.
//!
//! Pipeline: verify → exhaustive inlining → constant legalisation →
//! linear-scan register allocation → located-code lowering → style-specific
//! scheduling (TTA / VLIW / scalar) → block layout and branch-target
//! patching → program validation.

use crate::consts::ConstStats;
use crate::inline::inline_module;
use crate::loc::lower;
use crate::regalloc::allocate;
use crate::scalar_sched::{ScalarCodegen, WhichSrc};
use crate::tta_sched::{TtaScheduler, TtaStats};
use crate::vliw_sched::VliwScheduler;
use tta_ir::Module;
use tta_isa::encoding::{fits_signed, vliw_imm_bits};
use tta_isa::{OpSrc, Program, ScalarInst, VliwSlot};
use tta_model::{CoreStyle, Machine, RegRef, RfId};

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The input module failed verification.
    Verify(Vec<tta_ir::VerifyError>),
    /// The module could not be inlined (recursion).
    Inline(String),
    /// Register allocation failed.
    Alloc(String),
    /// The produced program failed machine validation (a compiler bug).
    Invalid(Vec<tta_isa::IsaError>),
    /// The module shape is unsupported.
    Unsupported(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Verify(es) => write!(f, "verification failed: {} errors", es.len()),
            CompileError::Inline(m) => write!(f, "inlining failed: {m}"),
            CompileError::Alloc(m) => write!(f, "register allocation failed: {m}"),
            CompileError::Invalid(es) => {
                write!(f, "compiler produced an invalid program: ")?;
                for e in es.iter().take(3) {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            CompileError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compilation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStats {
    /// Blocks in the flattened function.
    pub blocks: usize,
    /// Located operations scheduled.
    pub ops: usize,
    /// Values spilled by the register allocator.
    pub spilled: usize,
    /// Constant legalisation counters.
    pub consts: ConstStats,
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
    /// Instructions rewritten by constant folding / identity
    /// simplification.
    pub folded: usize,
    /// TTA-specific schedule quality (zeroed for other styles).
    pub tta: TtaStats,
}

/// A compiled program plus its metadata.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The machine program (style matches the machine).
    pub program: Program,
    /// Name of the machine compiled for.
    pub machine: String,
    /// Start address (instruction index) of each block.
    pub block_starts: Vec<u32>,
    /// Entry pc of the compiled `__irq` interrupt handler, when the
    /// module declares one: the handler is compiled as a second code
    /// region appended after the main program, entered by the simulator
    /// on interrupt delivery. Its returns are compiled as a store to
    /// [`tta_model::io::IRQ_EOI_ADDR`] (followed by a halt the simulator
    /// never reaches).
    pub irq_entry: Option<u32>,
    /// Statistics.
    pub stats: CompileStats,
}

impl Compiled {
    /// A human-readable assembly listing of the program, with block
    /// markers at the compiler's block-start addresses.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        let is_block_start = |pc: usize| self.block_starts.contains(&(pc as u32));
        let line = |pc: usize, text: String, out: &mut String| {
            if is_block_start(pc) {
                let bi = self
                    .block_starts
                    .iter()
                    .position(|&s| s == pc as u32)
                    .unwrap();
                out.push_str(&format!("bb{bi}:\n"));
            }
            out.push_str(&format!("{pc:6}: {text}\n"));
        };
        match &self.program {
            Program::Tta(insts) => {
                for (pc, i) in insts.iter().enumerate() {
                    line(pc, i.to_string(), &mut out);
                }
            }
            Program::Vliw(bundles) => {
                for (pc, b) in bundles.iter().enumerate() {
                    line(pc, b.to_string(), &mut out);
                }
            }
            Program::Scalar(insts) => {
                for (pc, i) in insts.iter().enumerate() {
                    line(pc, i.to_string(), &mut out);
                }
            }
        }
        out
    }
}

/// The reserved VLIW branch-target scratch register: the highest register
/// of the first file.
pub fn vliw_bt_reg(m: &Machine) -> RegRef {
    RegRef {
        rf: RfId(0),
        index: m.rfs[0].regs - 1,
    }
}

/// Compile `module` for `machine` with every TTA freedom enabled.
pub fn compile(module: &Module, machine: &Machine) -> Result<Compiled, CompileError> {
    compile_with(module, machine, crate::tta_sched::TtaOptions::default())
}

/// Compile with explicit TTA-freedom toggles (no effect on VLIW/scalar
/// targets); used by the ablation study.
pub fn compile_with(
    module: &Module,
    machine: &Machine,
    opts: crate::tta_sched::TtaOptions,
) -> Result<Compiled, CompileError> {
    let _compile_span = tta_obs::span("compile");
    {
        let _s = tta_obs::span("verify");
        tta_ir::verify::verify_module(module).map_err(CompileError::Verify)?;
    }
    if !module.entry_func().params.is_empty() {
        return Err(CompileError::Unsupported(
            "entry functions must take no parameters".into(),
        ));
    }
    let spill_base = module.mem_size.saturating_sub(4096);
    let (mut program, mut block_starts, mut stats) =
        compile_segment(module, machine, opts, spill_base, 0)?;

    // The `__irq` handler compiles as a second code region appended
    // after the main program. Its spill slots live in a separate area
    // (512 words each) so a trap can never clobber a spilled main value.
    let mut irq_entry = None;
    if let Some(hview) = irq_view(module) {
        const SPILL_WORDS: usize = 512;
        let base = program.len() as u32;
        let hspill = module.mem_size.saturating_sub(2048);
        let (hprog, hstarts, hstats) = compile_segment(&hview, machine, opts, hspill, base)?;
        if stats.spilled > SPILL_WORDS || hstats.spilled > SPILL_WORDS {
            return Err(CompileError::Alloc(format!(
                "spill areas overflow with an interrupt handler: main {} / handler {} (max {})",
                stats.spilled, hstats.spilled, SPILL_WORDS
            )));
        }
        append_program(&mut program, hprog);
        block_starts.extend(hstarts);
        stats.blocks += hstats.blocks;
        stats.ops += hstats.ops;
        stats.spilled += hstats.spilled;
        stats.dce_removed += hstats.dce_removed;
        stats.folded += hstats.folded;
        irq_entry = Some(base);
    }

    {
        let _s = tta_obs::span("validate");
        program.validate(machine).map_err(CompileError::Invalid)?;
    }
    tta_obs::counter::add("compiler.compiles", 1);
    tta_obs::counter::add("compiler.blocks", stats.blocks as u64);
    tta_obs::counter::add("compiler.insts", stats.ops as u64);
    tta_obs::counter::add("compiler.folded", stats.folded as u64);
    Ok(Compiled {
        program,
        machine: machine.name.clone(),
        block_starts,
        irq_entry,
        stats,
    })
}

/// The module as seen by the interrupt-handler compilation pass: entry
/// swapped to `__irq`, and a store to [`tta_model::io::IRQ_EOI_ADDR`]
/// injected before every handler return. The simulator treats that
/// doorbell store as the return-from-interrupt, so `Ret(None)`'s own
/// halt lowering becomes unreachable — no new opcode is needed.
fn irq_view(module: &Module) -> Option<Module> {
    use tta_ir::inst::{Inst, MemRegion, Operand, Terminator};
    let id = module.irq_handler_id()?;
    let mut m = module.clone();
    m.entry = id;
    let f = &mut m.funcs[id.0 as usize];
    for b in &mut f.blocks {
        if matches!(b.term, Some(Terminator::Ret(None))) {
            b.insts.push(Inst::Store {
                op: tta_model::Opcode::Stw,
                value: Operand::Imm(0),
                addr: Operand::Imm(tta_model::io::IRQ_EOI_ADDR as i32),
                region: MemRegion::ANY,
            });
        }
    }
    Some(m)
}

/// Append a same-style code segment to `main`.
fn append_program(main: &mut Program, seg: Program) {
    match (main, seg) {
        (Program::Tta(a), Program::Tta(b)) => a.extend(b),
        (Program::Vliw(a), Program::Vliw(b)) => a.extend(b),
        (Program::Scalar(a), Program::Scalar(b)) => a.extend(b),
        _ => unreachable!("segments compiled for the same machine share a style"),
    }
}

/// One pipeline pass over `module.entry_func()`: inline, optimise,
/// legalise constants, allocate registers (spilling at `spill_base`),
/// schedule, and lay blocks out starting at absolute pc `base` (branch
/// targets are patched to absolute addresses).
fn compile_segment(
    module: &Module,
    machine: &Machine,
    opts: crate::tta_sched::TtaOptions,
    spill_base: u32,
    base: u32,
) -> Result<(Program, Vec<u32>, CompileStats), CompileError> {
    let mut flat = {
        let _s = tta_obs::span("inline");
        inline_module(module).map_err(|e| CompileError::Inline(e.0))?
    };
    // Folding exposes dead code and vice versa; iterate the pair to a
    // fixpoint (bounded — each round strictly shrinks or stops).
    let mut dce_removed = 0;
    let mut folded = 0;
    let opt_span = tta_obs::span("opt");
    loop {
        let f = crate::fold::fold_constants(&mut flat)
            + crate::fold::propagate_single_def_constants(&mut flat);
        let d = crate::dce::eliminate_dead_code(&mut flat);
        folded += f;
        dce_removed += d;
        if f == 0 && d == 0 {
            break;
        }
    }
    drop(opt_span);

    // Constant legalisation with the style's inline-immediate reach.
    let fits: Box<dyn Fn(i32) -> bool> = match machine.style {
        CoreStyle::Tta => {
            let bits: Vec<u8> = machine.buses.iter().map(|b| b.simm_bits).collect();
            let min = bits.into_iter().min().unwrap_or(0) as u32;
            Box::new(move |v| fits_signed(v, min))
        }
        CoreStyle::Vliw => {
            let bits = vliw_imm_bits(machine);
            Box::new(move |v| fits_signed(v, bits))
        }
        CoreStyle::Scalar => {
            let bits = machine.scalar.expect("scalar machine").imm_bits as u32;
            Box::new(move |v| fits_signed(v, bits))
        }
    };
    // Hoisting floods long-lived registers; budget it to a quarter of the
    // register file so the allocator never spills just to hold constants.
    let hoist_budget = (machine.total_regs() as usize / 4).max(4);
    let const_stats = {
        let _s = tta_obs::span("consts");
        crate::consts::hoist_wide_constants(&mut flat, fits.as_ref(), hoist_budget)
    };

    // Register allocation (reserving the VLIW branch-target register).
    let reserved: Vec<RegRef> = match machine.style {
        CoreStyle::Vliw => vec![vliw_bt_reg(machine)],
        _ => vec![],
    };
    let alloc =
        allocate(&flat, machine, &reserved, spill_base).map_err(|e| CompileError::Alloc(e.0))?;
    let spilled = alloc.spilled;
    let lf = {
        let _s = tta_obs::span("lower");
        lower(&alloc)
    };

    let mut stats = CompileStats {
        blocks: lf.blocks.len(),
        ops: lf.blocks.iter().map(|b| b.ops.len()).sum(),
        spilled,
        consts: const_stats,
        dce_removed,
        folded,
        tta: TtaStats::default(),
    };

    // Schedule + layout + patch.
    let (program, block_starts) = match machine.style {
        CoreStyle::Vliw => {
            let sched = VliwScheduler::new(machine, vliw_bt_reg(machine));
            let blocks = sched.schedule(&lf);
            let _layout = tta_obs::span("layout");
            let mut starts = Vec::with_capacity(blocks.len());
            let mut insts = Vec::new();
            for b in &blocks {
                starts.push(insts.len() as u32);
                insts.extend(b.bundles.iter().cloned());
            }
            // Patch branch-target long immediates.
            for (bi, b) in blocks.iter().enumerate() {
                for p in &b.patches {
                    let at = (starts[bi] + p.cycle) as usize;
                    let target = (base + starts[p.target.0 as usize]) as i32;
                    match &mut insts[at].slots[p.slot] {
                        Some(VliwSlot::LimmHead { value, .. }) => *value = target,
                        other => panic!("patch site is not a limm head: {other:?}"),
                    }
                }
            }
            (Program::Vliw(insts), starts)
        }
        CoreStyle::Tta => {
            let mut sched = TtaScheduler::with_options(machine, opts);
            let blocks = sched.schedule(&lf);
            stats.tta = sched.stats;
            let _layout = tta_obs::span("layout");
            let mut starts = Vec::with_capacity(blocks.len());
            let mut insts = Vec::new();
            for b in &blocks {
                starts.push(insts.len() as u32);
                insts.extend(b.insts.iter().cloned());
            }
            for (bi, b) in blocks.iter().enumerate() {
                for p in &b.patches {
                    let at = (starts[bi] + p.cycle) as usize;
                    let target = (base + starts[p.target.0 as usize]) as i32;
                    match &mut insts[at].limm {
                        Some((_, value)) => *value = target,
                        None => panic!("patch site has no long immediate"),
                    }
                }
            }
            (Program::Tta(insts), starts)
        }
        CoreStyle::Scalar => {
            let cg = ScalarCodegen::new(machine);
            let blocks = {
                let _s = tta_obs::span("sched");
                cg.generate(&lf)
            };
            let _layout = tta_obs::span("layout");
            let mut starts = Vec::with_capacity(blocks.len());
            let mut insts = Vec::new();
            for b in &blocks {
                starts.push(insts.len() as u32);
                insts.extend(b.insts.iter().cloned());
            }
            for (bi, b) in blocks.iter().enumerate() {
                for p in &b.patches {
                    let at = (starts[bi] + p.index) as usize;
                    let target = (base + starts[p.target.0 as usize]) as i32;
                    match &mut insts[at] {
                        ScalarInst::Op(o) => {
                            let field = match p.which {
                                WhichSrc::A => &mut o.a,
                                WhichSrc::B => &mut o.b,
                            };
                            *field = Some(OpSrc::Imm(target));
                        }
                        ScalarInst::ImmPrefix => panic!("patch site is a prefix"),
                    }
                }
            }
            (Program::Scalar(insts), starts)
        }
    };

    let block_starts = block_starts.into_iter().map(|s| base + s).collect();
    Ok((program, block_starts, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
    use tta_model::presets;

    fn sum_module(n: i32) -> Module {
        let mut mb = ModuleBuilder::new("sum");
        let buf = mb.buffer(64);
        let mut fb = FunctionBuilder::new("main", 0, true);
        let i = fb.copy(0);
        let sum = fb.copy(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        let c = fb.lt(i, n);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let addr = fb.shl(i, 2);
        let addr = fb.add(addr, buf.base());
        fb.stw(i, addr, buf.region);
        let v = fb.ldw(addr, buf.region);
        let s2 = fb.add(sum, v);
        fb.copy_to(sum, s2);
        let i2 = fb.add(i, 1);
        fb.copy_to(i, i2);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(sum);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        mb.finish()
    }

    #[test]
    fn compiles_for_every_design_point() {
        let m = sum_module(10);
        for machine in presets::all_design_points() {
            let c = compile(&m, &machine).unwrap_or_else(|e| panic!("{}: {e}", machine.name));
            assert!(!c.program.is_empty(), "{}", machine.name);
            assert_eq!(c.block_starts.len(), c.stats.blocks);
        }
    }

    #[test]
    fn branch_targets_are_patched() {
        let m = sum_module(3);
        let machine = presets::mblaze_3();
        let c = compile(&m, &machine).unwrap();
        // No instruction may carry a zero jump-target placeholder pointing
        // nowhere: every control op's target must be a valid address.
        if let Program::Scalar(insts) = &c.program {
            for inst in insts {
                if let ScalarInst::Op(o) = inst {
                    if o.op.is_ctrl() && o.op != tta_model::Opcode::Halt {
                        let target = [o.a, o.b]
                            .into_iter()
                            .flatten()
                            .find_map(|s| match s {
                                OpSrc::Imm(v) => Some(v),
                                _ => None,
                            })
                            .expect("jump target immediate");
                        assert!((target as usize) < insts.len());
                    }
                }
            }
        } else {
            panic!("expected scalar program");
        }
    }

    #[test]
    fn irq_handler_compiles_as_appended_region() {
        use tta_ir::inst::MemRegion;
        let mut mb = ModuleBuilder::new("withirq");
        let buf = mb.buffer(8);
        let mut hb = FunctionBuilder::new("__irq", 0, false);
        let old = hb.ldw(buf.base(), buf.region);
        let n = hb.add(old, 1);
        hb.stw(n, buf.base(), buf.region);
        hb.ret_void();
        mb.add(hb.finish());
        let mut fb = FunctionBuilder::new("main", 0, true);
        fb.stw(1, tta_model::io::IRQ_CTRL_ADDR as i32, MemRegion::ANY);
        let v = fb.ldw(buf.base(), buf.region);
        fb.ret(v);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();

        for machine in presets::all_design_points() {
            let c = compile(&m, &machine).unwrap_or_else(|e| panic!("{}: {e}", machine.name));
            let entry = c
                .irq_entry
                .unwrap_or_else(|| panic!("{}: no irq entry", machine.name));
            assert!(
                entry > 0 && (entry as usize) < c.program.len(),
                "{}: handler entry {entry} out of range",
                machine.name
            );
            // The handler region must be a block start.
            assert!(c.block_starts.contains(&entry), "{}", machine.name);
        }

        // Without a handler the entry stays empty.
        let plain = sum_module(3);
        let c = compile(&plain, &presets::m_tta_2()).unwrap();
        assert_eq!(c.irq_entry, None);
    }

    #[test]
    fn tta_stats_show_bypassing() {
        let m = sum_module(10);
        let machine = presets::m_tta_2();
        let c = compile(&m, &machine).unwrap();
        assert!(c.stats.tta.moves > 0);
        assert!(c.stats.tta.bypassed > 0, "expected some software bypassing");
    }
}
