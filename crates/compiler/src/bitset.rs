//! A small fixed-capacity bit set used by the dataflow analyses.

/// A dense bit set over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Insert an element; returns whether it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let new = *w & bit == 0;
        *w |= bit;
        new
    }

    /// Remove an element.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.insert(3));
        assert!(s.insert(130));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.contains(130));
        assert!(!s.contains(4));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    fn iter_order_and_empty() {
        let mut s = BitSet::new(300);
        for i in [250, 3, 64, 65] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 250]);
        assert!(!s.is_empty());
        assert!(BitSet::new(10).is_empty());
    }
}
