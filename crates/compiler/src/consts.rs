//! Constant legalisation.
//!
//! Each target style can only encode a limited immediate inline (the bus
//! short-immediate for TTA, the register-address-width field for VLIW, the
//! 16-bit field for the scalar core). Wider constants must be materialised —
//! through the long-immediate mechanism (TTA/VLIW) or an `imm` prefix
//! (scalar). This pass hoists wide constants that are used more than once
//! into a register defined at function entry, the way `-O3` code generation
//! keeps loop-invariant constants in registers; single-use constants stay
//! inline and are materialised at their use site by the backend.

use std::collections::HashMap;
use tta_ir::{Function, Inst, Operand, Terminator, VReg};

/// Blocks that sit on a cycle of the CFG (Tarjan SCCs of size > 1 plus
/// self-loops): a constant materialised in one of these is re-materialised
/// every iteration, so hoisting is worthwhile even for a single textual
/// use.
fn loop_blocks(f: &Function) -> Vec<bool> {
    let n = f.blocks.len();
    let succs: Vec<Vec<usize>> = f
        .blocks
        .iter()
        .map(|b| {
            b.term
                .as_ref()
                .map(|t| t.successors().iter().map(|s| s.0 as usize).collect())
                .unwrap_or_default()
        })
        .collect();

    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut in_loop = vec![false; n];
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            if *ei < succs[v].len() {
                let w = succs[v][*ei];
                *ei += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(p, _)) = call_stack.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    // Root of an SCC; pop it.
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = scc.len() > 1 || succs[scc[0]].contains(&scc[0]);
                    if cyclic {
                        for w in scc {
                            in_loop[w] = true;
                        }
                    }
                }
            }
        }
    }
    in_loop
}

/// Statistics from constant hoisting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstStats {
    /// Distinct wide constants hoisted to registers at function entry.
    pub hoisted: usize,
    /// Single-use wide constants materialised by a `Copy` right before
    /// their use.
    pub materialized: usize,
}

/// Legalise constants: constants for which `fits` is false are moved out of
/// operand position — multi-use and loop-resident constants into a register
/// defined at entry (up to `hoist_budget` registers, most-used first, so
/// hoisting never floods the register file into spilling), the rest into a
/// short-lived register defined by a `Copy` immediately before the use.
/// After this pass the only wide immediates left in the function are the
/// sources of materialising `Copy`s, which the backends lower through the
/// long-immediate mechanism (TTA/VLIW) or an `imm` prefix (scalar).
pub fn hoist_wide_constants(
    f: &mut Function,
    fits: &dyn Fn(i32) -> bool,
    hoist_budget: usize,
) -> ConstStats {
    // Count occurrences of each wide constant in operand position, noting
    // whether any use sits inside a loop (where at-use materialisation
    // would repeat every iteration). Sources of existing `Copy`s are
    // already materialisations and are not counted as operand uses.
    let in_loop = loop_blocks(f);
    let mut counts: HashMap<i32, (usize, bool)> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            if matches!(inst, Inst::Copy { .. }) {
                continue;
            }
            visit_operands(inst, &mut |o| {
                if let Operand::Imm(v) = o {
                    if !fits(*v) {
                        let e = counts.entry(*v).or_insert((0, false));
                        e.0 += 1;
                        e.1 |= in_loop[bi];
                    }
                }
            });
        }
        match &b.term {
            Some(Terminator::Ret(Some(Operand::Imm(v))))
            | Some(Terminator::Branch {
                cond: Operand::Imm(v),
                ..
            }) if !fits(*v) => {
                let e = counts.entry(*v).or_insert((0, false));
                e.0 += 1;
                e.1 |= in_loop[bi];
            }
            _ => {}
        }
    }

    // Multi-use constants — and any constant used inside a loop — get an
    // entry-hoisted register, most-used first up to the budget.
    let mut stats = ConstStats::default();
    let mut candidates: Vec<(i32, usize, bool)> = counts
        .iter()
        .filter(|&(_, &(n, looped))| n >= 2 || looped)
        .map(|(&v, &(n, looped))| (v, n, looped))
        .collect();
    candidates.sort_by_key(|&(v, n, looped)| (std::cmp::Reverse((looped, n)), v));
    candidates.truncate(hoist_budget);
    let mut hoist_order: Vec<i32> = candidates.into_iter().map(|(v, _, _)| v).collect();
    hoist_order.sort_unstable();
    let mut reg_for: HashMap<i32, VReg> = HashMap::new();
    for v in &hoist_order {
        reg_for.insert(*v, f.new_vreg());
    }
    stats.hoisted = hoist_order.len();

    // Rewrite every block: hoisted constants become register reads;
    // remaining wide constants get a materialising Copy right before the
    // use.
    let needs_work = |o: &Operand, reg_for: &HashMap<i32, VReg>| match o {
        Operand::Imm(v) if !fits(*v) => Some(reg_for.get(v).copied()),
        _ => None,
    };
    let mut blocks = std::mem::take(&mut f.blocks);
    for b in &mut blocks {
        let old = std::mem::take(&mut b.insts);
        let mut out = Vec::with_capacity(old.len());
        for mut inst in old {
            if !matches!(inst, Inst::Copy { .. }) {
                // Collect wide operands first, then rewrite.
                let mut pending: Vec<(i32, VReg)> = Vec::new();
                rewrite_operands(&mut inst, &mut |o: &mut Operand| {
                    if let Some(hoisted) = needs_work(o, &reg_for) {
                        let v = o.imm().unwrap();
                        let r = match hoisted {
                            Some(r) => r,
                            None => match pending.iter().find(|(pv, _)| *pv == v) {
                                Some(&(_, r)) => r,
                                None => {
                                    let r = VReg(u32::MAX - pending.len() as u32);
                                    pending.push((v, r));
                                    r
                                }
                            },
                        };
                        *o = Operand::Reg(r);
                    }
                });
                // Allocate real vregs for the pending materialisations and
                // fix the placeholders.
                for (k, (v, _)) in pending.iter().enumerate() {
                    let real = f.new_vreg();
                    stats.materialized += 1;
                    let placeholder = VReg(u32::MAX - k as u32);
                    substitute_placeholder(&mut inst, placeholder, real);
                    out.push(Inst::Copy {
                        dst: real,
                        src: Operand::Imm(*v),
                    });
                }
            }
            out.push(inst);
        }
        // Terminator operands (return value, branch condition).
        let term_operand = match &mut b.term {
            Some(Terminator::Ret(Some(o))) => Some(o),
            Some(Terminator::Branch { cond, .. }) => Some(cond),
            _ => None,
        };
        if let Some(o) = term_operand {
            if let Some(hoisted) = needs_work(o, &reg_for) {
                let v = o.imm().unwrap();
                let r = match hoisted {
                    Some(r) => r,
                    None => {
                        let r = f.new_vreg();
                        stats.materialized += 1;
                        out.push(Inst::Copy {
                            dst: r,
                            src: Operand::Imm(v),
                        });
                        r
                    }
                };
                *o = Operand::Reg(r);
            }
        }
        b.insts = out;
    }
    f.blocks = blocks;

    // Materialising copies for hoisted constants at the top of the entry
    // block.
    let copies: Vec<Inst> = hoist_order
        .iter()
        .map(|&v| Inst::Copy {
            dst: reg_for[&v],
            src: Operand::Imm(v),
        })
        .collect();
    let entry = &mut f.blocks[0];
    let old = std::mem::take(&mut entry.insts);
    entry.insts = copies.into_iter().chain(old).collect();

    stats
}

fn substitute_placeholder(inst: &mut Inst, placeholder: VReg, real: VReg) {
    rewrite_operands(inst, &mut |o: &mut Operand| {
        if *o == Operand::Reg(placeholder) {
            *o = Operand::Reg(real);
        }
    });
}

fn visit_operands(inst: &Inst, visit: &mut impl FnMut(&Operand)) {
    match inst {
        Inst::Bin { a, b, .. } => {
            visit(a);
            visit(b);
        }
        Inst::Un { a, .. } => visit(a),
        Inst::Copy { src, .. } => visit(src),
        Inst::Load { addr, .. } => visit(addr),
        Inst::Store { value, addr, .. } => {
            visit(value);
            visit(addr);
        }
        Inst::Call { args, .. } => args.iter().for_each(visit),
    }
}

fn rewrite_operands(inst: &mut Inst, rewrite: &mut impl FnMut(&mut Operand)) {
    match inst {
        Inst::Bin { a, b, .. } => {
            rewrite(a);
            rewrite(b);
        }
        Inst::Un { a, .. } => rewrite(a),
        Inst::Copy { src, .. } => rewrite(src),
        Inst::Load { addr, .. } => rewrite(addr),
        Inst::Store { value, addr, .. } => {
            rewrite(value);
            rewrite(addr);
        }
        Inst::Call { args, .. } => args.iter_mut().for_each(rewrite),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::FunctionBuilder;
    use tta_ir::verify::{collect_immediates, verify_function};

    fn fits6(v: i32) -> bool {
        (-32..32).contains(&v)
    }

    #[test]
    fn hoists_repeated_wide_constants() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let a = fb.add(1000, 1); // 1000 wide, used twice
        let b = fb.add(a, 1000);
        let c = fb.add(b, 7); // 7 fits
        fb.ret(c);
        let mut f = fb.finish();
        let stats = hoist_wide_constants(&mut f, &fits6, 16);
        assert_eq!(stats.hoisted, 1);
        assert_eq!(stats.materialized, 0);
        // 1000 now appears exactly once: in the entry copy.
        let imms = collect_immediates(&f);
        assert_eq!(imms.iter().filter(|&&v| v == 1000).count(), 1);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Copy {
                src: Operand::Imm(1000),
                ..
            }
        ));
        verify_function(&f, None).unwrap();
    }

    #[test]
    fn materializes_single_use_wide_constants() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let a = fb.add(123_456, 5);
        fb.ret(a);
        let mut f = fb.finish();
        let stats = hoist_wide_constants(&mut f, &fits6, 16);
        assert_eq!(stats.hoisted, 0);
        assert_eq!(stats.materialized, 1);
        assert!(collect_immediates(&f).contains(&123_456));
    }

    #[test]
    fn preserves_semantics() {
        use tta_ir::builder::ModuleBuilder;
        let build = |hoist: bool| {
            let mut mb = ModuleBuilder::new("m");
            let mut fb = FunctionBuilder::new("main", 0, true);
            let a = fb.mul(70_000, 3);
            let b = fb.add(a, 70_000);
            let c = fb.xor(b, 0x5555_5555u32 as i32);
            fb.ret(c);
            let mut f = fb.finish();
            if hoist {
                hoist_wide_constants(&mut f, &fits6, 16);
            }
            let id = mb.add(f);
            mb.set_entry(id);
            mb.finish()
        };
        let plain = tta_ir::interp::run_ret(&build(false), &[]);
        let hoisted = tta_ir::interp::run_ret(&build(true), &[]);
        assert_eq!(plain, hoisted);
    }

    #[test]
    fn hoisting_is_deterministic() {
        let mk = || {
            let mut fb = FunctionBuilder::new("f", 0, true);
            let a = fb.add(500, 600);
            let b = fb.add(500, 600);
            let c = fb.add(a, b);
            fb.ret(c);
            let mut f = fb.finish();
            hoist_wide_constants(&mut f, &fits6, 16);
            f
        };
        assert_eq!(mk(), mk());
    }
}
