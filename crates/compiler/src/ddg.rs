//! Per-block data-dependence graphs.
//!
//! Nodes are the block's located operations; edges carry the dependence
//! kind. Memory dependences use the IR's alias regions (accesses to
//! different non-zero regions are independent), standing in for the alias
//! analysis of a production compiler. The graph also records, per input of
//! each op, which in-block op (if any) produced the value — the information
//! the TTA scheduler needs to attempt software bypassing.

use crate::loc::{LocBlock, LocSrc};
use std::collections::HashMap;
use tta_model::RegRef;

/// Dependence kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write through a register.
    Data,
    /// Write-after-read of a register (the write must not overtake the
    /// read).
    Anti,
    /// Write-after-write of a register.
    Output,
    /// Memory-order dependence (aliasing accesses, at least one a store).
    Mem,
}

/// One dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// The earlier operation (producer / prior access).
    pub from: usize,
    /// The dependence kind.
    pub kind: DepKind,
}

/// The dependence graph of one block.
#[derive(Debug, Clone)]
pub struct Ddg {
    /// Incoming edges per node.
    pub preds: Vec<Vec<Dep>>,
    /// Outgoing edges per node.
    pub succs: Vec<Vec<Dep>>,
    /// For each node, the in-block producer of its `a` and `b` inputs
    /// (`None` = live-in register or immediate).
    pub src_def: Vec<[Option<usize>; 2]>,
    /// The in-block producer of the terminator's condition/return value.
    pub term_def: Option<usize>,
    /// Scheduling priority: longest latency-weighted path to any sink
    /// (higher = more critical).
    pub priority: Vec<u32>,
    /// For each node, in-block ops that read its result (via register
    /// name) before the register is redefined.
    pub consumers: Vec<Vec<usize>>,
    /// Whether the terminator consumes node's result directly.
    pub term_consumes: Vec<bool>,
}

impl Ddg {
    /// Build the graph for a block.
    pub fn build(block: &LocBlock) -> Ddg {
        let n = block.ops.len();
        let mut preds: Vec<Vec<Dep>> = vec![Vec::new(); n];
        let mut src_def: Vec<[Option<usize>; 2]> = vec![[None, None]; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut term_consumes = vec![false; n];

        // Register state walking forward.
        let mut last_def: HashMap<RegRef, usize> = HashMap::new();
        let mut reads_since_def: HashMap<RegRef, Vec<usize>> = HashMap::new();
        // Memory state.
        let mut stores_so_far: Vec<usize> = Vec::new();
        let mut loads_since_store: Vec<usize> = Vec::new();

        for (i, op) in block.ops.iter().enumerate() {
            // Input data deps.
            for (which, s) in [op.a, op.b].into_iter().enumerate() {
                if let Some(LocSrc::Reg(r)) = s {
                    if let Some(&d) = last_def.get(&r) {
                        preds[i].push(Dep {
                            from: d,
                            kind: DepKind::Data,
                        });
                        src_def[i][which] = Some(d);
                        if !consumers[d].contains(&i) {
                            consumers[d].push(i);
                        }
                    }
                    reads_since_def.entry(r).or_default().push(i);
                }
            }
            // Memory deps.
            if let Some((region, is_store)) = op.mem_region() {
                if is_store {
                    for &p in &stores_so_far {
                        if aliases(block, p, region) {
                            preds[i].push(Dep {
                                from: p,
                                kind: DepKind::Mem,
                            });
                        }
                    }
                    for &p in &loads_since_store {
                        if aliases(block, p, region) {
                            preds[i].push(Dep {
                                from: p,
                                kind: DepKind::Mem,
                            });
                        }
                    }
                    stores_so_far.push(i);
                    loads_since_store.retain(|&l| !aliases(block, l, region));
                } else {
                    for &p in &stores_so_far {
                        if aliases(block, p, region) {
                            preds[i].push(Dep {
                                from: p,
                                kind: DepKind::Mem,
                            });
                        }
                    }
                    loads_since_store.push(i);
                }
            }
            // Register anti/output deps for the destination.
            if let Some(d) = op.dst {
                if let Some(rs) = reads_since_def.get(&d) {
                    for &r in rs {
                        if r != i {
                            preds[i].push(Dep {
                                from: r,
                                kind: DepKind::Anti,
                            });
                        }
                    }
                }
                if let Some(&p) = last_def.get(&d) {
                    preds[i].push(Dep {
                        from: p,
                        kind: DepKind::Output,
                    });
                }
                last_def.insert(d, i);
                reads_since_def.insert(d, Vec::new());
            }
        }

        // Terminator inputs.
        let mut term_def = None;
        let term_src = match block.term {
            crate::loc::LocTerm::Branch { cond, .. } => Some(cond),
            crate::loc::LocTerm::Ret(v) => v,
            crate::loc::LocTerm::Jump(_) => None,
        };
        if let Some(LocSrc::Reg(r)) = term_src {
            if let Some(&d) = last_def.get(&r) {
                term_def = Some(d);
                term_consumes[d] = true;
            }
        }

        // Dedup pred edges (keep strongest kind first occurrence is fine —
        // scheduling only needs ordering + Data identity via src_def).
        for p in &mut preds {
            p.sort_by_key(|d| (d.from, d.kind as u8));
            p.dedup();
        }

        let mut succs: Vec<Vec<Dep>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for d in ps {
                succs[d.from].push(Dep {
                    from: i,
                    kind: d.kind,
                });
            }
        }

        // Priorities: reverse topological accumulation. Blocks are acyclic
        // by construction (edges always point forward in program order).
        let mut priority = vec![0u32; n];
        for i in (0..n).rev() {
            let mut h = block.ops[i].latency();
            for s in &succs[i] {
                let w = match s.kind {
                    DepKind::Data => block.ops[i].latency() + 1,
                    _ => 1,
                };
                h = h.max(priority[s.from] + w);
            }
            if term_consumes[i] {
                h = h.max(block.ops[i].latency() + 2);
            }
            priority[i] = h;
        }

        Ddg {
            preds,
            succs,
            src_def,
            term_def,
            priority,
            consumers,
            term_consumes,
        }
    }

    /// Nodes in a topological order that respects all edges, by descending
    /// priority among ready nodes (the list scheduler's dispatch order).
    pub fn priority_order(&self) -> Vec<usize> {
        let n = self.preds.len();
        let mut remaining: Vec<usize> = self.preds.iter().map(|p| p.len()).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(pos) = ready
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| (self.priority[i], std::cmp::Reverse(i)))
            .map(|(p, _)| p)
        {
            let i = ready.swap_remove(pos);
            out.push(i);
            for s in &self.succs[i] {
                remaining[s.from] -= 1;
                if remaining[s.from] == 0 {
                    ready.push(s.from);
                }
            }
        }
        debug_assert_eq!(out.len(), n, "dependence graph must be acyclic");
        out
    }
}

fn aliases(block: &LocBlock, prior: usize, region: tta_ir::MemRegion) -> bool {
    match block.ops[prior].mem_region() {
        Some((r, _)) => r.may_alias(region),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{LocBlock, LocKind, LocOp, LocTerm};
    use tta_ir::MemRegion;
    use tta_model::{Opcode, RegRef, RfId};

    fn r(i: u16) -> RegRef {
        RegRef {
            rf: RfId(0),
            index: i,
        }
    }

    fn alu(dst: u16, a: LocSrc, b: LocSrc) -> LocOp {
        LocOp {
            kind: LocKind::Alu(Opcode::Add),
            dst: Some(r(dst)),
            a: Some(a),
            b: Some(b),
        }
    }

    fn block(ops: Vec<LocOp>) -> LocBlock {
        LocBlock {
            ops,
            term: LocTerm::Ret(None),
            live_out: vec![],
        }
    }

    #[test]
    fn data_dependence_chain() {
        let b = block(vec![
            alu(1, LocSrc::Imm(1), LocSrc::Imm(2)),
            alu(2, LocSrc::Reg(r(1)), LocSrc::Imm(3)),
            alu(3, LocSrc::Reg(r(2)), LocSrc::Reg(r(1))),
        ]);
        let g = Ddg::build(&b);
        assert_eq!(g.src_def[1][0], Some(0));
        assert_eq!(g.src_def[2][0], Some(1));
        assert_eq!(g.src_def[2][1], Some(0));
        assert!(g.preds[2]
            .iter()
            .any(|d| d.from == 1 && d.kind == DepKind::Data));
        assert_eq!(g.consumers[0], vec![1, 2]);
        // Priorities decrease along the chain.
        assert!(g.priority[0] > g.priority[1]);
        assert!(g.priority[1] > g.priority[2]);
    }

    #[test]
    fn independent_ops_have_no_edges() {
        let b = block(vec![
            alu(1, LocSrc::Imm(1), LocSrc::Imm(2)),
            alu(2, LocSrc::Imm(3), LocSrc::Imm(4)),
        ]);
        let g = Ddg::build(&b);
        assert!(g.preds[0].is_empty());
        assert!(g.preds[1].is_empty());
    }

    #[test]
    fn register_reuse_creates_anti_and_output_deps() {
        let b = block(vec![
            alu(1, LocSrc::Imm(1), LocSrc::Imm(2)),    // def r1
            alu(2, LocSrc::Reg(r(1)), LocSrc::Imm(0)), // read r1
            alu(1, LocSrc::Imm(5), LocSrc::Imm(6)),    // redef r1
        ]);
        let g = Ddg::build(&b);
        assert!(g.preds[2]
            .iter()
            .any(|d| d.from == 1 && d.kind == DepKind::Anti));
        assert!(g.preds[2]
            .iter()
            .any(|d| d.from == 0 && d.kind == DepKind::Output));
    }

    #[test]
    fn memory_deps_respect_regions() {
        let ld = |reg: u16, region: u16| LocOp {
            kind: LocKind::Load(Opcode::Ldw, MemRegion(region)),
            dst: Some(r(reg)),
            a: None,
            b: Some(LocSrc::Imm(16)),
        };
        let st = |region: u16| LocOp {
            kind: LocKind::Store(Opcode::Stw, MemRegion(region)),
            dst: None,
            a: Some(LocSrc::Imm(0)),
            b: Some(LocSrc::Imm(16)),
        };
        // store r1 / load r1 → dep; store r1 / load r2 → none.
        let b = block(vec![st(1), ld(1, 1), ld(2, 2), st(2)]);
        let g = Ddg::build(&b);
        assert!(g.preds[1]
            .iter()
            .any(|d| d.from == 0 && d.kind == DepKind::Mem));
        assert!(g.preds[2].iter().all(|d| d.kind != DepKind::Mem));
        // The region-2 store depends on the region-2 load (WAR-mem) but not
        // on the region-1 accesses.
        assert!(g.preds[3]
            .iter()
            .any(|d| d.from == 2 && d.kind == DepKind::Mem));
        assert!(!g.preds[3].iter().any(|d| d.from == 0));
    }

    #[test]
    fn any_region_orders_everything() {
        let st = |region: u16| LocOp {
            kind: LocKind::Store(Opcode::Stw, MemRegion(region)),
            dst: None,
            a: Some(LocSrc::Imm(0)),
            b: Some(LocSrc::Imm(16)),
        };
        let b = block(vec![st(1), st(0), st(2)]);
        let g = Ddg::build(&b);
        assert!(g.preds[1].iter().any(|d| d.from == 0));
        assert!(g.preds[2].iter().any(|d| d.from == 1));
    }

    #[test]
    fn priority_order_is_topological() {
        let b = block(vec![
            alu(1, LocSrc::Imm(1), LocSrc::Imm(2)),
            alu(2, LocSrc::Reg(r(1)), LocSrc::Imm(3)),
            alu(3, LocSrc::Imm(9), LocSrc::Imm(9)),
            alu(4, LocSrc::Reg(r(2)), LocSrc::Reg(r(3))),
        ]);
        let g = Ddg::build(&b);
        let order = g.priority_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (k, &i) in order.iter().enumerate() {
                p[i] = k;
            }
            p
        };
        assert!(pos[0] < pos[1]);
        assert!(pos[1] < pos[3]);
        assert!(pos[2] < pos[3]);
    }

    #[test]
    fn terminator_condition_tracked() {
        let mut b = block(vec![alu(1, LocSrc::Imm(1), LocSrc::Imm(2))]);
        b.term = LocTerm::Branch {
            cond: LocSrc::Reg(r(1)),
            if_true: tta_ir::BlockId(0),
            if_false: tta_ir::BlockId(0),
        };
        let g = Ddg::build(&b);
        assert_eq!(g.term_def, Some(0));
        assert!(g.term_consumes[0]);
    }
}
