//! The transport-triggered scheduler — the heart of the reproduction.
//!
//! Operations are decomposed into explicit data transports and placed by a
//! list scheduler that exploits the TTA programming freedoms the paper
//! credits for its speedups (§III-B/C):
//!
//! * **software bypassing** — a consumer reads the producer's FU result
//!   port directly, skipping the RF round trip and saving the one-cycle
//!   writeback penalty the (forwarding-free) VLIW pays on every dependence;
//! * **dead-result elimination** — a result whose consumers all bypassed
//!   and whose register is not live out of the block is never written to
//!   the RF at all, relieving the single write port;
//! * **operand sharing** — an operand already sitting in an FU's input
//!   register is not transported again;
//! * **transport splitting** — operand moves are hoisted to earlier cycles
//!   than the trigger, spreading RF-read pressure over time.
//!
//! Timing model shared with `tta-sim`: moves of the instruction at cycle
//! `t` read machine state as of the start of `t`; an RF write at `t` is
//! readable from `t + 1`; a trigger at `t` makes the result readable on the
//! FU result port during `[t + L, next completion)`; a long immediate
//! written at `t` is readable from `t + 1`.

// The bounded searches in this file advance a machine cycle alongside an
// attempt counter; clippy's counter-loop lint would obscure that.
#![allow(clippy::explicit_counter_loop)]

use crate::ddg::Ddg;
use crate::loc::{LocBlock, LocFunc, LocKind, LocOp, LocSrc, LocTerm, RETVAL_ADDR};
use std::collections::HashMap;
use tta_ir::BlockId;
use tta_isa::{Move, MoveDst, MoveSrc, TtaInst};
use tta_model::{DstConn, FuId, FuKind, Machine, Opcode, RegRef, SrcConn};

/// How far past the dependence-ready cycle the scheduler searches before
/// concluding the machine cannot host the op (indicates a broken preset).
const MAX_SLACK: u32 = 4096;

/// Toggles for the TTA-specific programming freedoms (paper §III-B/C).
/// All enabled by default; disabling them individually quantifies each
/// freedom's contribution (see the `ablation` binary in `tta-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtaOptions {
    /// Software bypassing: consumers may read FU result ports directly.
    pub bypass: bool,
    /// Dead-result elimination: results whose consumers all bypassed and
    /// whose register is not live-out skip the RF write.
    pub dead_result_elim: bool,
    /// Operand sharing: an operand already in an FU input register is not
    /// transported again.
    pub operand_share: bool,
}

impl Default for TtaOptions {
    fn default() -> Self {
        TtaOptions {
            bypass: true,
            dead_result_elim: true,
            operand_share: true,
        }
    }
}

/// A long immediate awaiting its absolute branch-target address.
#[derive(Debug, Clone, Copy)]
pub struct TtaPatch {
    /// Cycle within the block whose `limm` field holds the target.
    pub cycle: u32,
    /// Target block.
    pub target: BlockId,
}

/// A scheduled block.
#[derive(Debug, Clone)]
pub struct TtaBlock {
    /// The instructions (block-local cycles).
    pub insts: Vec<TtaInst>,
    /// Branch-target patches.
    pub patches: Vec<TtaPatch>,
}

/// Schedule-quality counters (reported per program).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TtaStats {
    /// Total data transports programmed.
    pub moves: u64,
    /// Operand/trigger reads satisfied from an FU result port.
    pub bypassed: u64,
    /// Results never written to a register file.
    pub dead_results: u64,
    /// Operand moves elided because the value was already in the port.
    pub operand_shares: u64,
    /// Long immediates written.
    pub limms: u64,
    /// Operand/trigger reads satisfied from a register file.
    pub rf_reads: u64,
}

/// Identity of a value for operand-sharing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValKey {
    /// Result of an in-block node.
    Node(usize),
    /// A short immediate.
    Imm(i32),
    /// Anything else (no sharing).
    Opaque,
}

#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    fu: Option<FuId>,
    trigger: u32,
    done: u32,
    /// Cycle of the RF write of this node's result, if scheduled.
    rf_write: Option<u32>,
    /// Latest cycle at which the result port was read for this value.
    last_port_read: u32,
    /// Consumers (in-block reads + terminator) not yet scheduled.
    pending_consumers: usize,
    /// True once the value can no longer need an RF write.
    rf_closed: bool,
    scheduled: bool,
}

#[derive(Debug, Clone, Default)]
struct FuState {
    /// Scheduled triggers in increasing cycle order: (node, trigger, done).
    ops: Vec<(usize, u32, u32)>,
    /// Operand-port content and when it was written.
    port_val: Option<ValKey>,
    port_write: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct ImmRegState {
    /// Cycle the current value was written (value readable from +1).
    write: u32,
    /// Latest read of the current value.
    last_read: u32,
    in_use: bool,
}

/// The per-block scheduling engine.
struct BlockSched<'m> {
    m: &'m Machine,
    opts: TtaOptions,
    insts: Vec<TtaInst>,
    rf_reads: Vec<Vec<u8>>,
    rf_writes: Vec<Vec<u8>>,
    fu: Vec<FuState>,
    nodes: Vec<NodeState>,
    reg_last_rf_read: HashMap<RegRef, u32>,
    reg_last_rf_write: HashMap<RegRef, u32>,
    /// Most recently *scheduled* defining node per register (defs of one
    /// register schedule in program order thanks to Output edges).
    reg_last_def: HashMap<RegRef, usize>,
    immregs: Vec<ImmRegState>,
    stats: TtaStats,
    patches: Vec<TtaPatch>,
    /// Highest cycle with any activity (move, limm, trigger, writeback).
    last_activity: u32,
}

/// A source resolved to a concrete machine read.
#[derive(Debug, Clone, Copy)]
enum ReadPlan {
    Rf(RegRef),
    Bypass(FuId, usize), // producer node
    Imm(i32),
    ImmReg(u8),
}

impl<'m> BlockSched<'m> {
    fn new(m: &'m Machine, opts: TtaOptions, n_nodes: usize) -> Self {
        BlockSched {
            m,
            opts,
            insts: Vec::new(),
            rf_reads: Vec::new(),
            rf_writes: Vec::new(),
            fu: vec![FuState::default(); m.funits.len()],
            nodes: vec![NodeState::default(); n_nodes],
            reg_last_rf_read: HashMap::new(),
            reg_last_rf_write: HashMap::new(),
            reg_last_def: HashMap::new(),
            immregs: vec![ImmRegState::default(); m.limm.imm_regs as usize],
            stats: TtaStats::default(),
            patches: Vec::new(),
            last_activity: 0,
        }
    }

    fn grow(&mut self, cycle: u32) {
        while self.insts.len() <= cycle as usize {
            self.insts.push(TtaInst::nop(self.m.buses.len()));
            self.rf_reads.push(vec![0; self.m.rfs.len()]);
            self.rf_writes.push(vec![0; self.m.rfs.len()]);
        }
    }

    fn bus_free(&mut self, c: u32, b: usize) -> bool {
        self.grow(c);
        if self.insts[c as usize].slots[b].is_some() {
            return false;
        }
        // Slots repurposed by a long immediate are unavailable.
        if self.insts[c as usize].limm.is_some() && b < self.m.limm.bus_slots as usize {
            return false;
        }
        true
    }

    /// Find a bus able to carry `src -> dst` at cycle `c`.
    fn find_bus(&mut self, c: u32, src: &ReadPlan, dst: DstConn) -> Option<usize> {
        self.find_bus_excl(c, src, dst, None)
    }

    /// Like [`find_bus`], excluding one bus (for two moves planned in the
    /// same cycle before either is committed).
    fn find_bus_excl(
        &mut self,
        c: u32,
        src: &ReadPlan,
        dst: DstConn,
        excl: Option<usize>,
    ) -> Option<usize> {
        self.grow(c);
        (0..self.m.buses.len()).find(|&b| {
            if Some(b) == excl {
                return false;
            }
            if !self.bus_free(c, b) {
                return false;
            }
            let bus = &self.m.buses[b];
            if !bus.writes(dst) {
                return false;
            }
            match src {
                ReadPlan::Rf(r) => bus.reads(SrcConn::RfRead(r.rf)),
                ReadPlan::Bypass(f, _) => bus.reads(SrcConn::FuResult(*f)),
                ReadPlan::Imm(v) => bus.simm_fits(*v),
                ReadPlan::ImmReg(_) => true,
            }
        })
    }

    /// Whether the RF read/write port budget allows one more access at `c`.
    fn rf_read_ok(&mut self, c: u32, r: RegRef) -> bool {
        self.grow(c);
        self.rf_reads[c as usize][r.rf.0 as usize] < self.m.rf(r.rf).read_ports
    }

    fn rf_write_ok(&mut self, c: u32, r: RegRef) -> bool {
        self.grow(c);
        self.rf_writes[c as usize][r.rf.0 as usize] < self.m.rf(r.rf).write_ports
    }

    /// The result-port window of node `i` is still open at cycle `c` (no
    /// later op on the same FU completes at or before `c`).
    fn port_window_open(&self, i: usize, c: u32) -> bool {
        let st = &self.nodes[i];
        let f = st.fu.expect("bypass source has an FU");
        if c < st.done {
            return false;
        }
        // Find the next op triggered on the same FU after this node.
        for &(n, _, done) in &self.fu[f.0 as usize].ops {
            if n != i && done > st.done && done <= c {
                return false;
            }
        }
        true
    }

    /// All the ways value `src` (with in-block producer `producer`) can be
    /// read at cycle `c`. Does not commit anything.
    fn read_plans(&mut self, src: LocSrc, producer: Option<usize>, c: u32) -> Vec<ReadPlan> {
        let mut plans = Vec::new();
        match src {
            LocSrc::Imm(v) => plans.push(ReadPlan::Imm(v)),
            LocSrc::Reg(r) => {
                match producer {
                    Some(p) => {
                        let st = self.nodes[p];
                        // Bypass from the producer's result port (copies
                        // have no port).
                        if self.opts.bypass {
                            if let Some(f) = st.fu {
                                if st.done <= c && self.port_window_open(p, c) {
                                    plans.push(ReadPlan::Bypass(f, p));
                                }
                            }
                        }
                        // RF read after the producer's writeback.
                        if let Some(w) = st.rf_write {
                            if c > w && self.rf_read_ok(c, r) {
                                plans.push(ReadPlan::Rf(r));
                            }
                        }
                    }
                    None => {
                        // Live-in: in the RF from cycle 0.
                        if self.rf_read_ok(c, r) {
                            plans.push(ReadPlan::Rf(r));
                        }
                    }
                }
            }
        }
        plans
    }

    /// Commit a move at cycle `c` on bus `b`.
    fn commit_move(&mut self, c: u32, b: usize, src: ReadPlan, dst: MoveDst) {
        self.grow(c);
        let msrc = match src {
            ReadPlan::Rf(r) => {
                self.rf_reads[c as usize][r.rf.0 as usize] += 1;
                let e = self.reg_last_rf_read.entry(r).or_insert(0);
                *e = (*e).max(c);
                self.stats.rf_reads += 1;
                MoveSrc::Rf(r)
            }
            ReadPlan::Bypass(f, p) => {
                self.nodes[p].last_port_read = self.nodes[p].last_port_read.max(c);
                self.stats.bypassed += 1;
                MoveSrc::FuResult(f)
            }
            ReadPlan::Imm(v) => MoveSrc::Imm(v),
            ReadPlan::ImmReg(k) => {
                self.immregs[k as usize].last_read = self.immregs[k as usize].last_read.max(c);
                MoveSrc::ImmReg(k)
            }
        };
        if let MoveDst::Rf(r) = dst {
            self.rf_writes[c as usize][r.rf.0 as usize] += 1;
            let e = self.reg_last_rf_write.entry(r).or_insert(0);
            *e = (*e).max(c);
        }
        debug_assert!(
            self.insts[c as usize].slots[b].is_none(),
            "move slot double-booked at cycle {c} bus {b}"
        );
        self.insts[c as usize].slots[b] = Some(Move { src: msrc, dst });
        self.stats.moves += 1;
        self.last_activity = self.last_activity.max(c);
    }

    /// Earliest legal cycle for an RF write to `r`.
    fn rf_write_floor(&self, r: RegRef) -> u32 {
        let read = self.reg_last_rf_read.get(&r).copied().unwrap_or(0);
        let write = self.reg_last_rf_write.get(&r).map(|w| w + 1).unwrap_or(0);
        read.max(write)
    }

    /// Schedule the RF write of node `i`'s result (if not already done).
    /// Returns false if the result-port window has closed without a write —
    /// a scheduler invariant violation.
    fn ensure_rf_write(&mut self, i: usize, block: &LocBlock) -> bool {
        if self.nodes[i].rf_write.is_some() {
            return true;
        }
        let r = block.ops[i].dst.expect("value has a destination");
        let f = self.nodes[i]
            .fu
            .expect("copies are written at schedule time");
        let mut c = self.nodes[i].done.max(self.rf_write_floor(r));
        for _ in 0..MAX_SLACK {
            if self.port_window_open(i, c)
                && self.rf_write_ok(c, r)
                && self
                    .find_bus(c, &ReadPlan::Bypass(f, i), DstConn::RfWrite(r.rf))
                    .is_some()
            {
                let b = self
                    .find_bus(c, &ReadPlan::Bypass(f, i), DstConn::RfWrite(r.rf))
                    .unwrap();
                // The RF write itself reads the result port.
                self.commit_move(c, b, ReadPlan::Bypass(f, i), MoveDst::Rf(r));
                // A writeback is not a "bypass" in the statistics sense.
                self.stats.bypassed -= 1;
                self.nodes[i].rf_write = Some(c);
                return true;
            }
            if !self.port_window_open(i, c) {
                return false;
            }
            c += 1;
        }
        false
    }

    /// Allocate a long-immediate register and cycle for `value`, no earlier
    /// than `min_cycle`. Returns (imm_reg, cycle).
    fn place_limm(&mut self, value: i32, min_cycle: u32) -> (u8, u32) {
        let mut c = min_cycle;
        loop {
            self.grow(c);
            let inst_free = self.insts[c as usize].limm.is_none()
                && (0..self.m.limm.bus_slots as usize)
                    .all(|s| self.insts[c as usize].slots[s].is_none());
            if inst_free {
                // An imm register is reusable at cycle c when its current
                // tenancy lies entirely before c: written earlier (writes to
                // one register must be monotonic in machine time, or a
                // later-placed limm could corrupt an earlier tenancy) and no
                // longer read after c (the new value becomes visible at
                // c+1, so reads of the old value at <= c stay correct).
                let reg = (0..self.immregs.len()).find(|&k| {
                    !self.immregs[k].in_use
                        || (self.immregs[k].last_read <= c && self.immregs[k].write < c)
                });
                if let Some(k) = reg {
                    self.insts[c as usize].limm = Some((k as u8, value));
                    self.immregs[k] = ImmRegState {
                        write: c,
                        last_read: c,
                        in_use: true,
                    };
                    self.stats.limms += 1;
                    self.last_activity = self.last_activity.max(c);
                    return (k as u8, c);
                }
            }
            c += 1;
        }
    }

    /// Resolve the latest value on FU `f` before a new op completing at
    /// `new_done` may be triggered: if the pending result still has
    /// unscheduled consumers or is live-out, force its RF write now.
    /// Returns false if impossible (caller must try a later cycle).
    fn resolve_previous(
        &mut self,
        f: FuId,
        new_trigger: u32,
        new_done: u32,
        block: &LocBlock,
    ) -> bool {
        let Some(&(prev, _t, done)) = self.fu[f.0 as usize].ops.last() else {
            return true;
        };
        // Monotonic triggers and completions.
        if new_trigger <= _t || new_done <= done {
            return false;
        }
        // Existing port reads must stay inside the closing window.
        if self.nodes[prev].last_port_read >= new_done {
            return false;
        }
        let needs_rf = !self.nodes[prev].rf_closed
            && self.nodes[prev].rf_write.is_none()
            && (self.nodes[prev].pending_consumers > 0 || {
                let r = block.ops[prev].dst;
                r.map(|r| block.live_out.contains(&r)).unwrap_or(false)
            });
        if !needs_rf {
            return true;
        }
        // The write must land strictly before the window closes.
        let r = block.ops[prev]
            .dst
            .expect("value with consumers has a register");
        let floor = self.nodes[prev].done.max(self.rf_write_floor(r));
        for c in floor..new_done {
            if self.rf_write_ok(c, r) {
                if let Some(b) =
                    self.find_bus(c, &ReadPlan::Bypass(f, prev), DstConn::RfWrite(r.rf))
                {
                    self.commit_move(c, b, ReadPlan::Bypass(f, prev), MoveDst::Rf(r));
                    self.stats.bypassed -= 1;
                    self.nodes[prev].rf_write = Some(c);
                    return true;
                }
            }
        }
        false
    }
}

/// The TTA scheduler for one function.
pub struct TtaScheduler<'m> {
    m: &'m Machine,
    opts: TtaOptions,
    /// Accumulated schedule-quality statistics.
    pub stats: TtaStats,
}

impl<'m> TtaScheduler<'m> {
    /// Create a scheduler for a TTA machine with every programming freedom
    /// enabled.
    pub fn new(m: &'m Machine) -> Self {
        Self::with_options(m, TtaOptions::default())
    }

    /// Create a scheduler with explicit freedom toggles (ablation studies).
    pub fn with_options(m: &'m Machine, opts: TtaOptions) -> Self {
        TtaScheduler {
            m,
            opts,
            stats: TtaStats::default(),
        }
    }

    /// Schedule all blocks.
    pub fn schedule(&mut self, f: &LocFunc) -> Vec<TtaBlock> {
        let _span = tta_obs::span("sched");
        let before = self.stats;
        let blocks: Vec<TtaBlock> = f
            .blocks
            .iter()
            .enumerate()
            .map(|(bi, b)| {
                let next = if bi + 1 < f.blocks.len() {
                    Some(BlockId(bi as u32 + 1))
                } else {
                    None
                };
                self.schedule_block(b, next)
            })
            .collect();
        let d = self.stats;
        tta_obs::counter::add("compiler.tta_moves", d.moves - before.moves);
        tta_obs::counter::add("compiler.tta_bypassed", d.bypassed - before.bypassed);
        tta_obs::counter::add("compiler.tta_limms", d.limms - before.limms);
        tta_obs::counter::add(
            "compiler.tta_dead_results",
            d.dead_results - before.dead_results,
        );
        blocks
    }

    fn min_simm_fits(&self, v: i32) -> bool {
        self.m.buses.iter().all(|b| b.simm_fits(v))
    }

    fn schedule_block(&mut self, block: &LocBlock, next: Option<BlockId>) -> TtaBlock {
        let ddg = Ddg::build(block);
        let mut s = BlockSched::new(self.m, self.opts, block.ops.len());
        for (i, n) in s.nodes.iter_mut().enumerate() {
            n.pending_consumers = ddg.consumers[i].len() + usize::from(ddg.term_consumes[i]);
        }

        for i in ddg.priority_order() {
            self.schedule_node(i, block, &ddg, &mut s);
        }

        // Flush: last defs of live-out registers must be in the RF.
        let mut last_def: HashMap<RegRef, usize> = HashMap::new();
        for (i, op) in block.ops.iter().enumerate() {
            if let Some(d) = op.dst {
                last_def.insert(d, i);
            }
        }
        for (&r, &i) in &last_def {
            if block.live_out.contains(&r) && s.nodes[i].rf_write.is_none() {
                if s.nodes[i].fu.is_none() {
                    // Copies write the RF when scheduled.
                    debug_assert!(s.nodes[i].rf_write.is_some() || !s.nodes[i].scheduled);
                }
                assert!(
                    s.ensure_rf_write(i, block),
                    "live-out flush failed for {r} in a block of {}",
                    self.m.name
                );
            }
        }
        // Dead-result accounting.
        for (i, op) in block.ops.iter().enumerate() {
            if op.dst.is_some() && s.nodes[i].fu.is_some() && s.nodes[i].rf_write.is_none() {
                s.stats.dead_results += 1;
            }
        }

        self.emit_terminator(block, next, &ddg, &mut s);

        self.stats.moves += s.stats.moves;
        self.stats.bypassed += s.stats.bypassed;
        self.stats.dead_results += s.stats.dead_results;
        self.stats.operand_shares += s.stats.operand_shares;
        self.stats.limms += s.stats.limms;
        self.stats.rf_reads += s.stats.rf_reads;

        TtaBlock {
            insts: s.insts,
            patches: s.patches,
        }
    }

    /// Dependence-imposed lower bound for node `i`'s trigger cycle.
    fn dep_floor(&self, i: usize, ddg: &Ddg, block: &LocBlock, s: &BlockSched) -> u32 {
        let mut t = 0u32;
        for d in &ddg.preds[i] {
            let p = d.from;
            let min = match d.kind {
                crate::ddg::DepKind::Data => {
                    // The read move can happen at done(p) at the earliest;
                    // the trigger itself no earlier than that.
                    s.nodes[p].done
                }
                crate::ddg::DepKind::Anti | crate::ddg::DepKind::Output => 0,
                crate::ddg::DepKind::Mem => {
                    let prior_is_load = matches!(block.ops[p].kind, LocKind::Load(..));
                    let cur_is_store = matches!(block.ops[i].kind, LocKind::Store(..));
                    if prior_is_load && cur_is_store {
                        s.nodes[p].trigger
                    } else {
                        s.nodes[p].trigger + 1
                    }
                }
            };
            t = t.max(min);
        }
        t
    }

    fn schedule_node(&mut self, i: usize, block: &LocBlock, ddg: &Ddg, s: &mut BlockSched) {
        let op = &block.ops[i];
        match op.kind {
            LocKind::Copy => self.schedule_copy(i, block, ddg, s),
            _ => self.schedule_fu_op(i, block, ddg, s),
        }
        s.nodes[i].scheduled = true;
        // Consumers bookkeeping: this node consumed its producers.
        for d in &ddg.preds[i] {
            if d.kind == crate::ddg::DepKind::Data {
                s.nodes[d.from].pending_consumers =
                    s.nodes[d.from].pending_consumers.saturating_sub(1);
            }
        }
        // A redefinition closes the previous def's RF-write window: all of
        // its in-block readers are already scheduled (anti-dependences force
        // that order), so if it has not written the RF by now it never may —
        // a late write would clobber the newer value.
        if let Some(r) = block.ops[i].dst {
            if let Some(prev) = s.reg_last_def.insert(r, i) {
                s.nodes[prev].rf_closed = true;
            }
        }
    }

    /// A copy is a single transport into the destination register (plus a
    /// long immediate when the source constant is wide).
    fn schedule_copy(&mut self, i: usize, block: &LocBlock, ddg: &Ddg, s: &mut BlockSched) {
        let op = &block.ops[i];
        let dst = op.dst.expect("copy writes a register");
        let src = op.a.expect("copy has a source");
        let floor = self.dep_floor(i, ddg, block, s);
        let wfloor = s.rf_write_floor(dst);
        let producer = ddg.src_def[i][0];

        // Wide immediate: long immediate then ImmReg -> RF.
        if let LocSrc::Imm(v) = src {
            if !self.min_simm_fits(v) {
                let (k, lc) = s.place_limm(v, floor);
                let mut c = (lc + 1).max(wfloor);
                let deadline = c + MAX_SLACK;
                loop {
                    assert!(
                        c < deadline,
                        "wide-immediate copy wedged on {}",
                        self.m.name
                    );
                    if s.rf_write_ok(c, dst) {
                        if let Some(b) =
                            s.find_bus(c, &ReadPlan::ImmReg(k), DstConn::RfWrite(dst.rf))
                        {
                            s.commit_move(c, b, ReadPlan::ImmReg(k), MoveDst::Rf(dst));
                            s.nodes[i].rf_write = Some(c);
                            s.nodes[i].trigger = c;
                            s.nodes[i].done = c;
                            return;
                        }
                    }
                    c += 1;
                }
            }
        }

        // Register-to-register copies need a bus connecting the source
        // bank's read socket to the destination bank's write socket; on
        // partitioned machines such a route may not exist, in which case
        // the copy executes as `add src, #0` through an ALU (with the side
        // benefit that consumers may then bypass it).
        if let LocSrc::Reg(r) = src {
            let routed = self
                .m
                .buses_connecting(SrcConn::RfRead(r.rf), DstConn::RfWrite(dst.rf))
                .next()
                .is_some();
            if !routed {
                let alu_copy = LocOp {
                    kind: LocKind::Alu(Opcode::Add),
                    dst: Some(dst),
                    a: Some(src),
                    b: Some(LocSrc::Imm(0)),
                };
                self.schedule_fu_op_as(i, &alu_copy, producer, None, block, ddg, s);
                return;
            }
        }

        let mut c = floor.max(wfloor);
        for attempt in 0..MAX_SLACK {
            if attempt == 64 {
                if let Some(p) = producer {
                    if s.nodes[p].rf_write.is_none() && s.nodes[p].fu.is_some() {
                        let _ = s.ensure_rf_write(p, block);
                    }
                }
            }
            let plans = s.read_plans(src, producer, c);
            for plan in plans {
                if !s.rf_write_ok(c, dst) {
                    break;
                }
                if let Some(b) = s.find_bus(c, &plan, DstConn::RfWrite(dst.rf)) {
                    s.commit_move(c, b, plan, MoveDst::Rf(dst));
                    s.nodes[i].rf_write = Some(c);
                    s.nodes[i].trigger = c;
                    s.nodes[i].done = c;
                    return;
                }
            }
            c += 1;
        }
        panic!(
            "copy wedged on {} (block too congested): src {src:?} producer {producer:?} \
             state {:?} floor {floor} wfloor {wfloor}",
            self.m.name,
            producer.map(|p| s.nodes[p]),
        );
    }

    /// Schedule a function-unit operation: operand move (optional), trigger
    /// move, lazy result write.
    fn schedule_fu_op(&mut self, i: usize, block: &LocBlock, ddg: &Ddg, s: &mut BlockSched) {
        let op = block.ops[i];
        let a_producer = ddg.src_def[i][0];
        let b_producer = ddg.src_def[i][1];
        self.schedule_fu_op_as(i, &op, a_producer, b_producer, block, ddg, s);
    }

    /// Schedule node `i` executing `op` (which may differ from
    /// `block.ops[i]` when a register copy is rerouted through an ALU).
    #[allow(clippy::too_many_arguments)]
    fn schedule_fu_op_as(
        &mut self,
        i: usize,
        op: &LocOp,
        a_producer: Option<usize>,
        b_producer: Option<usize>,
        block: &LocBlock,
        ddg: &Ddg,
        s: &mut BlockSched,
    ) {
        let opcode = match op.kind {
            LocKind::Alu(o) | LocKind::Load(o, _) | LocKind::Store(o, _) => o,
            LocKind::Copy => unreachable!(),
        };
        let units: Vec<FuId> = self.m.units_for(opcode).collect();
        let lat = opcode.latency();
        let floor = self.dep_floor(i, ddg, block, s);
        let b_src = op.b.expect("every FU op has a trigger input");
        let a_src = op.a;

        let mut t = floor;
        for attempt in 0..MAX_SLACK {
            for &f in &units {
                if self.try_place_fu_op(
                    i, f, t, lat, opcode, op.dst, a_src, a_producer, b_src, b_producer, block, s,
                ) {
                    return;
                }
                // Commutative operations may swap which input rides the
                // trigger, which often dodges an RF read-port conflict on
                // the single-ported TTA files.
                if opcode.is_commutative()
                    && a_src.is_some()
                    && self.try_place_fu_op(
                        i,
                        f,
                        t,
                        lat,
                        opcode,
                        op.dst,
                        Some(b_src),
                        b_producer,
                        a_src.unwrap(),
                        a_producer,
                        block,
                        s,
                    )
                {
                    return;
                }
            }
            if attempt == 64 {
                // On sparsely connected (pruned) interconnects a value may
                // be unreachable by bypass from this FU; force the
                // producers' RF writebacks so the register file becomes a
                // route.
                for prod in [a_producer, b_producer].into_iter().flatten() {
                    if s.nodes[prod].rf_write.is_none() && s.nodes[prod].fu.is_some() {
                        let _ = s.ensure_rf_write(prod, block);
                    }
                }
            }
            t += 1;
        }
        panic!(
            "op {opcode} wedged on {} at floor {floor} (block too congested)",
            self.m.name
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn try_place_fu_op(
        &mut self,
        i: usize,
        f: FuId,
        t: u32,
        lat: u32,
        opcode: Opcode,
        _dst: Option<RegRef>,
        a_src: Option<LocSrc>,
        a_producer: Option<usize>,
        b_src: LocSrc,
        b_producer: Option<usize>,
        block: &LocBlock,
        s: &mut BlockSched,
    ) -> bool {
        // Trigger monotonicity on the unit.
        if let Some(&(_, pt, _)) = s.fu[f.0 as usize].ops.last() {
            if t <= pt {
                return false;
            }
        }
        // Trigger slot free (one trigger per FU per cycle is implied by
        // monotonicity; the bus slot is checked below).
        // 1. Find the trigger move: b value -> FuTrigger at exactly t.
        let trig_plans = s.read_plans(b_src, b_producer, t);
        let Some((trig_plan, trig_bus)) = trig_plans
            .into_iter()
            .find_map(|p| s.find_bus(t, &p, DstConn::FuTrigger(f)).map(|b| (p, b)))
        else {
            return false;
        };

        // 2. Operand move (if the op takes two inputs): at some cycle in
        //    [port_free, t], or shared.
        let mut operand_commit: Option<(u32, usize, ReadPlan)> = None;
        let mut shared = false;
        if let Some(a) = a_src {
            let key = match (a, a_producer) {
                (LocSrc::Imm(v), _) => ValKey::Imm(v),
                (LocSrc::Reg(_), Some(p)) => ValKey::Node(p),
                (LocSrc::Reg(_), None) => ValKey::Opaque,
            };
            let fu_state = &s.fu[f.0 as usize];
            if s.opts.operand_share
                && key != ValKey::Opaque
                && fu_state.port_val == Some(key)
                && fu_state.port_write <= t
            {
                shared = true;
            } else {
                // The port is free after the previous trigger on this unit.
                let port_free = fu_state.ops.last().map(|&(_, pt, _)| pt + 1).unwrap_or(0);
                let lo = port_free;
                let mut found = None;
                for c in lo..=t {
                    let mut plans = s.read_plans(a, a_producer, c);
                    // The trigger read at t is not committed yet: if both
                    // reads land in cycle t on the same register file, the
                    // port budget must cover them together.
                    if c == t {
                        if let ReadPlan::Rf(tr) = trig_plan {
                            plans.retain(|p| match p {
                                ReadPlan::Rf(or) if or.rf == tr.rf => {
                                    s.rf_reads[t as usize][tr.rf.0 as usize] + 2
                                        <= s.m.rf(tr.rf).read_ports
                                }
                                _ => true,
                            });
                        }
                    }
                    let excl = if c == t { Some(trig_bus) } else { None };
                    if let Some((plan, bus)) = plans.into_iter().find_map(|p| {
                        s.find_bus_excl(c, &p, DstConn::FuOperand(f), excl)
                            .map(|b| (p, b))
                    }) {
                        found = Some((c, bus, plan));
                        break;
                    }
                }
                match found {
                    Some(x) => operand_commit = Some(x),
                    None => return false,
                }
            }
        }

        // 3. The previous result on this unit must survive or be written
        //    back before the new op completes.
        if !s.resolve_previous(f, t, t + lat, block) {
            return false;
        }

        // NOTE: resolve_previous may have consumed bus/port resources; the
        // trigger/operand buses chosen above could in principle collide with
        // the writeback it just placed. Re-validate cheaply.
        if s.insts[t as usize].slots[trig_bus].is_some() {
            return false;
        }
        if let Some((c, bus, _)) = operand_commit {
            if s.insts[c as usize].slots[bus].is_some() {
                return false;
            }
        }

        // Commit.
        if let Some((c, bus, plan)) = operand_commit {
            s.commit_move(c, bus, plan, MoveDst::FuOperand(f));
            let key = match (a_src.unwrap(), a_producer) {
                (LocSrc::Imm(v), _) => ValKey::Imm(v),
                (LocSrc::Reg(_), Some(p)) => ValKey::Node(p),
                (LocSrc::Reg(_), None) => ValKey::Opaque,
            };
            s.fu[f.0 as usize].port_val = Some(key);
            s.fu[f.0 as usize].port_write = c;
        } else if shared {
            s.stats.operand_shares += 1;
        }
        s.commit_move(t, trig_bus, trig_plan, MoveDst::FuTrigger(f, opcode));
        s.fu[f.0 as usize].ops.push((i, t, t + lat));
        s.nodes[i].fu = Some(f);
        s.nodes[i].trigger = t;
        s.nodes[i].done = t + lat;
        // With bypassing or dead-result elimination disabled, every result
        // is committed to the register file eagerly, as an
        // operation-triggered machine would.
        if (!s.opts.bypass || !s.opts.dead_result_elim) && opcode.has_result() {
            let _ = s.ensure_rf_write(i, block);
        }
        // Completions count as block activity: the branch is pushed late
        // enough that no in-flight result lands after the block ends, so a
        // stale completion can never clobber a successor block's port.
        s.last_activity = s.last_activity.max(t + lat);
        true
    }

    /// Read a value for the terminator (condition or return value) at cycle
    /// `c`, committing the chosen move. Returns false if infeasible at `c`.
    fn emit_terminator(
        &mut self,
        block: &LocBlock,
        next: Option<BlockId>,
        ddg: &Ddg,
        s: &mut BlockSched,
    ) {
        let d = self.m.jump_delay_slots;
        let cu = self.m.ctrl_unit();
        match block.term {
            LocTerm::Jump(target) if Some(target) == next => {
                // Fall through: pad to cover all activity.
                s.grow(s.last_activity);
            }
            LocTerm::Jump(target) => {
                self.emit_branch(Opcode::Jump, None, None, target, 0, block, s, cu, d);
            }
            LocTerm::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let (opcode, target, other) = if Some(if_false) == next {
                    (Opcode::CJnz, if_true, None)
                } else if Some(if_true) == next {
                    (Opcode::CJz, if_false, None)
                } else {
                    (Opcode::CJnz, if_true, Some(if_false))
                };
                let t_br =
                    self.emit_branch(opcode, Some(cond), ddg.term_def, target, 0, block, s, cu, d);
                if let Some(ft) = other {
                    self.emit_branch(Opcode::Jump, None, None, ft, t_br + d + 1, block, s, cu, d);
                }
            }
            LocTerm::Ret(v) => {
                // Store the return value, then halt.
                let mut min_halt = s.last_activity;
                if let Some(v) = v {
                    let lsu = self
                        .m
                        .fu_ids()
                        .find(|&f| self.m.fu(f).kind == FuKind::Lsu)
                        .expect("machine has an LSU");
                    // Operand move: value -> lsu.o ; trigger: #RETVAL -> lsu.t.stw
                    let producer = ddg.term_def;
                    let ready = producer.map(|p| s.nodes[p].done).unwrap_or(0);
                    let port_free = s.fu[lsu.0 as usize]
                        .ops
                        .last()
                        .map(|&(_, pt, _)| pt + 1)
                        .unwrap_or(0);
                    let mut t = ready.max(port_free).max(
                        s.fu[lsu.0 as usize]
                            .ops
                            .last()
                            .map(|&(_, pt, _)| pt + 1)
                            .unwrap_or(0),
                    );
                    let ret_deadline = t + MAX_SLACK;
                    loop {
                        assert!(t < ret_deadline, "return store wedged on {}", self.m.name);
                        if !s.resolve_previous(lsu, t, t, block) {
                            t += 1;
                            continue;
                        }
                        let trig_plan = ReadPlan::Imm(RETVAL_ADDR as i32);
                        let Some(tb) = s.find_bus(t, &trig_plan, DstConn::FuTrigger(lsu)) else {
                            t += 1;
                            continue;
                        };
                        let plans = s.read_plans(v, producer, t);
                        let op_move = plans.into_iter().find_map(|p| {
                            s.find_bus_excl(t, &p, DstConn::FuOperand(lsu), Some(tb))
                                .map(|b| (p, b))
                        });
                        let Some((plan, ob)) = op_move else {
                            t += 1;
                            continue;
                        };
                        s.commit_move(t, ob, plan, MoveDst::FuOperand(lsu));
                        s.commit_move(t, tb, trig_plan, MoveDst::FuTrigger(lsu, Opcode::Stw));
                        s.fu[lsu.0 as usize].ops.push((usize::MAX, t, t));
                        min_halt = min_halt.max(t);
                        break;
                    }
                }
                // Halt trigger.
                let mut t = min_halt.max(
                    s.fu[cu.0 as usize]
                        .ops
                        .last()
                        .map(|&(_, pt, _)| pt + 1)
                        .unwrap_or(0),
                );
                loop {
                    let plan = ReadPlan::Imm(0);
                    if let Some(b) = s.find_bus(t, &plan, DstConn::FuTrigger(cu)) {
                        s.commit_move(t, b, plan, MoveDst::FuTrigger(cu, Opcode::Halt));
                        break;
                    }
                    t += 1;
                }
            }
        }
    }

    /// Emit `limm <target>` + moves triggering a control transfer. Returns
    /// the trigger cycle.
    #[allow(clippy::too_many_arguments)]
    fn emit_branch(
        &mut self,
        opcode: Opcode,
        cond: Option<LocSrc>,
        cond_producer: Option<usize>,
        target: BlockId,
        min_cycle: u32,
        block: &LocBlock,
        s: &mut BlockSched,
        cu: FuId,
        d: u32,
    ) -> u32 {
        // Target address long immediate (value patched later).
        let (k, lc) = s.place_limm(0, min_cycle);
        s.patches.push(TtaPatch { cycle: lc, target });

        let cond_ready = cond_producer.map(|p| s.nodes[p].done).unwrap_or(0);
        let cu_floor = s.fu[cu.0 as usize]
            .ops
            .last()
            .map(|&(_, pt, _)| pt + 1)
            .unwrap_or(0);
        let mut t = (lc + 1)
            .max(cond_ready)
            .max(cu_floor)
            .max(min_cycle)
            .max(s.last_activity.saturating_sub(d));

        let mut attempts = 0u32;
        loop {
            attempts += 1;
            assert!(
                attempts < MAX_SLACK,
                "branch wedged on {} (unroutable condition or target)",
                self.m.name
            );
            if attempts == 64 {
                if let Some(p) = cond_producer {
                    if s.nodes[p].rf_write.is_none() && s.nodes[p].fu.is_some() {
                        let _ = s.ensure_rf_write(p, block);
                    }
                }
            }
            match cond {
                None => {
                    // Unconditional: trigger = target (from the imm reg).
                    let plan = ReadPlan::ImmReg(k);
                    if let Some(b) = s.find_bus(t, &plan, DstConn::FuTrigger(cu)) {
                        s.commit_move(t, b, plan, MoveDst::FuTrigger(cu, opcode));
                        s.fu[cu.0 as usize].ops.push((usize::MAX, t, t));
                        s.grow(t + d);
                        return t;
                    }
                }
                Some(c_src) => {
                    // Operand = target, trigger = condition.
                    let plans = s.read_plans(c_src, cond_producer, t);
                    let trig = plans
                        .into_iter()
                        .find_map(|p| s.find_bus(t, &p, DstConn::FuTrigger(cu)).map(|b| (p, b)));
                    if let Some((tp, tb)) = trig {
                        // Operand move of the target in [lc+1, t].
                        let port_free = s.fu[cu.0 as usize]
                            .ops
                            .last()
                            .map(|&(_, pt, _)| pt + 1)
                            .unwrap_or(0);
                        let lo = (lc + 1).max(port_free);
                        let mut found = None;
                        for c in lo..=t {
                            if let Some(b) =
                                s.find_bus(c, &ReadPlan::ImmReg(k), DstConn::FuOperand(cu))
                            {
                                found = Some((c, b));
                                break;
                            }
                        }
                        if let Some((c, ob)) = found {
                            if ob != tb || c != t {
                                s.commit_move(c, ob, ReadPlan::ImmReg(k), MoveDst::FuOperand(cu));
                                s.commit_move(t, tb, tp, MoveDst::FuTrigger(cu, opcode));
                                s.fu[cu.0 as usize].ops.push((usize::MAX, t, t));
                                s.grow(t + d);
                                return t;
                            }
                        }
                    }
                }
            }
            t += 1;
        }
    }
}
