//! Code generation for the scalar in-order targets (the MicroBlaze-like
//! baselines).
//!
//! The stream is emitted one operation per instruction in dependence-graph
//! priority order — the instruction scheduling a `-O3` compiler performs to
//! hide load and multiply latencies on an in-order pipeline. Wide constants
//! cost an `imm`-prefix instruction, and control transfers encode their
//! absolute target inline in the 16-bit immediate field.

use crate::ddg::Ddg;
use crate::loc::{LocBlock, LocFunc, LocKind, LocOp, LocSrc, LocTerm, RETVAL_ADDR};
use tta_ir::BlockId;
use tta_isa::encoding::fits_signed;
use tta_isa::{OpSrc, Operation, ScalarInst};
use tta_model::{FuKind, Machine, Opcode};

/// Which source field of a patched operation holds the target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhichSrc {
    /// The `a` (operand) field.
    A,
    /// The `b` (trigger) field.
    B,
}

/// A branch awaiting its absolute target address.
#[derive(Debug, Clone, Copy)]
pub struct ScalarPatch {
    /// Instruction index within the block.
    pub index: u32,
    /// Which source field to patch.
    pub which: WhichSrc,
    /// Target block.
    pub target: BlockId,
}

/// A code-generated block.
#[derive(Debug, Clone)]
pub struct ScalarBlock {
    /// The instruction stream (block-local indices).
    pub insts: Vec<ScalarInst>,
    /// Branch-target patches.
    pub patches: Vec<ScalarPatch>,
}

/// Scalar code generator.
pub struct ScalarCodegen<'m> {
    m: &'m Machine,
    imm_bits: u32,
}

impl<'m> ScalarCodegen<'m> {
    /// Create a code generator for a scalar machine.
    pub fn new(m: &'m Machine) -> Self {
        let imm_bits = m.scalar.expect("scalar machine").imm_bits as u32;
        ScalarCodegen { m, imm_bits }
    }

    /// Generate code for all blocks.
    pub fn generate(&self, f: &LocFunc) -> Vec<ScalarBlock> {
        f.blocks
            .iter()
            .enumerate()
            .map(|(bi, b)| {
                let next = if bi + 1 < f.blocks.len() {
                    Some(BlockId(bi as u32 + 1))
                } else {
                    None
                };
                self.generate_block(b, next)
            })
            .collect()
    }

    fn push_op(&self, out: &mut Vec<ScalarInst>, o: Operation) {
        // Wide immediates need a prefix instruction.
        let wide = [o.a, o.b]
            .into_iter()
            .flatten()
            .any(|s| matches!(s, OpSrc::Imm(v) if !fits_signed(v, self.imm_bits)));
        if wide {
            out.push(ScalarInst::ImmPrefix);
        }
        out.push(ScalarInst::Op(o));
    }

    fn emit_op(&self, out: &mut Vec<ScalarInst>, op: &LocOp) {
        let src = |s: LocSrc| match s {
            LocSrc::Reg(r) => OpSrc::Reg(r),
            LocSrc::Imm(v) => OpSrc::Imm(v),
        };
        let (opcode, a, b) = match op.kind {
            LocKind::Alu(o) if o.num_inputs() == 1 => (o, None, Some(src(op.b.unwrap()))),
            LocKind::Alu(o) => (o, Some(src(op.a.unwrap())), Some(src(op.b.unwrap()))),
            LocKind::Load(o, _) => (o, None, Some(src(op.b.unwrap()))),
            LocKind::Store(o, _) => (o, Some(src(op.a.unwrap())), Some(src(op.b.unwrap()))),
            LocKind::Copy => (Opcode::Add, Some(src(op.a.unwrap())), Some(OpSrc::Imm(0))),
        };
        let fu = self
            .m
            .units_for(opcode)
            .next()
            .unwrap_or_else(|| panic!("no unit implements {opcode}"));
        let dst = if opcode.has_result() { op.dst } else { None };
        self.push_op(
            out,
            Operation {
                op: opcode,
                fu,
                dst,
                a,
                b,
            },
        );
    }

    fn generate_block(&self, block: &LocBlock, next: Option<BlockId>) -> ScalarBlock {
        let ddg = Ddg::build(block);
        let mut insts = Vec::with_capacity(block.ops.len() + 4);
        for i in ddg.priority_order() {
            self.emit_op(&mut insts, &block.ops[i]);
        }

        let mut patches = Vec::new();
        let cu = self.m.ctrl_unit();
        let src = |s: LocSrc| match s {
            LocSrc::Reg(r) => OpSrc::Reg(r),
            LocSrc::Imm(v) => OpSrc::Imm(v),
        };
        match block.term {
            LocTerm::Jump(target) if Some(target) == next => {}
            LocTerm::Jump(target) => {
                patches.push(ScalarPatch {
                    index: insts.len() as u32,
                    which: WhichSrc::B,
                    target,
                });
                insts.push(ScalarInst::Op(Operation {
                    op: Opcode::Jump,
                    fu: cu,
                    dst: None,
                    a: None,
                    b: Some(OpSrc::Imm(0)),
                }));
            }
            LocTerm::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let (opcode, target, other) = if Some(if_false) == next {
                    (Opcode::CJnz, if_true, None)
                } else if Some(if_true) == next {
                    (Opcode::CJz, if_false, None)
                } else {
                    (Opcode::CJnz, if_true, Some(if_false))
                };
                patches.push(ScalarPatch {
                    index: insts.len() as u32,
                    which: WhichSrc::A,
                    target,
                });
                insts.push(ScalarInst::Op(Operation {
                    op: opcode,
                    fu: cu,
                    dst: None,
                    a: Some(OpSrc::Imm(0)),
                    b: Some(src(cond)),
                }));
                if let Some(f_target) = other {
                    patches.push(ScalarPatch {
                        index: insts.len() as u32,
                        which: WhichSrc::B,
                        target: f_target,
                    });
                    insts.push(ScalarInst::Op(Operation {
                        op: Opcode::Jump,
                        fu: cu,
                        dst: None,
                        a: None,
                        b: Some(OpSrc::Imm(0)),
                    }));
                }
            }
            LocTerm::Ret(v) => {
                if let Some(v) = v {
                    let lsu = self
                        .m
                        .fu_ids()
                        .find(|&f| self.m.fu(f).kind == FuKind::Lsu)
                        .expect("machine has an LSU");
                    self.push_op(
                        &mut insts,
                        Operation {
                            op: Opcode::Stw,
                            fu: lsu,
                            dst: None,
                            a: Some(src(v)),
                            b: Some(OpSrc::Imm(RETVAL_ADDR as i32)),
                        },
                    );
                }
                insts.push(ScalarInst::Op(Operation {
                    op: Opcode::Halt,
                    fu: cu,
                    dst: None,
                    a: None,
                    b: Some(OpSrc::Imm(0)),
                }));
            }
        }

        ScalarBlock { insts, patches }
    }
}
