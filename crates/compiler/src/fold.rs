//! Constant folding and algebraic simplification on the flattened IR.
//!
//! Two rewrite families, applied to a fixpoint together with the builder
//! patterns they expose:
//!
//! * **constant folding** — a two- or one-input ALU operation whose inputs
//!   are all immediates becomes a `Copy` of the computed value;
//! * **identities** — `x + 0`, `x - 0`, `x | 0`, `x ^ 0`, `x * 1`,
//!   `x << 0`, `x >> 0`, `x & -1` become `Copy x` (a bare transport on a
//!   TTA, rather than an ALU trip).
//!
//! The pass never creates new wide immediates (folded values go through
//! the same constant legalisation as everything else) and is
//! semantics-preserving by construction — the property tests in
//! `tests/passes_prop.rs` check it against the interpreter.

use std::collections::HashMap;
use tta_ir::{Function, Inst, Operand, Terminator, VReg};
use tta_model::Opcode;

/// Fold constants and simplify identities. Returns the number of
/// instructions rewritten.
pub fn fold_constants(f: &mut Function) -> usize {
    let mut rewritten = 0;
    for b in &mut f.blocks {
        // A branch whose condition became a constant is a jump.
        if let Some(Terminator::Branch {
            cond: Operand::Imm(v),
            if_true,
            if_false,
        }) = b.term
        {
            b.term = Some(Terminator::Jump(if v != 0 { if_true } else { if_false }));
            rewritten += 1;
        }
        for inst in &mut b.insts {
            let new = match inst {
                Inst::Bin {
                    op,
                    dst,
                    a: Operand::Imm(a),
                    b: Operand::Imm(bv),
                } => Some(Inst::Copy {
                    dst: *dst,
                    src: Operand::Imm(op.eval_alu(*a, *bv)),
                }),
                Inst::Un {
                    op,
                    dst,
                    a: Operand::Imm(a),
                } => Some(Inst::Copy {
                    dst: *dst,
                    src: Operand::Imm(op.eval_alu(*a, 0)),
                }),
                Inst::Bin { op, dst, a, b } => {
                    identity(*op, *a, *b).map(|src| Inst::Copy { dst: *dst, src })
                }
                _ => None,
            };
            if let Some(n) = new {
                *inst = n;
                rewritten += 1;
            }
        }
    }
    rewritten
}

/// Sparse conditional constant propagation, restricted to the provably
/// safe case: a register defined exactly once in the whole function, by a
/// `Copy` of an immediate. Definite-assignment verification guarantees the
/// single def dominates every use, so the substitution is always valid.
/// Returns the number of operands rewritten.
pub fn propagate_single_def_constants(f: &mut Function) -> usize {
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    let mut const_of: HashMap<VReg, i32> = HashMap::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
                if let Inst::Copy {
                    src: Operand::Imm(v),
                    ..
                } = inst
                {
                    const_of.insert(d, *v);
                }
            }
        }
    }
    const_of.retain(|r, _| def_count.get(r) == Some(&1));
    if const_of.is_empty() {
        return 0;
    }
    let mut rewritten = 0;
    let mut rw = |o: &mut Operand| {
        if let Operand::Reg(r) = o {
            if let Some(&v) = const_of.get(r) {
                *o = Operand::Imm(v);
                rewritten += 1;
            }
        }
    };
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::Bin { a, b, .. } => {
                    rw(a);
                    rw(b);
                }
                Inst::Un { a, .. } => rw(a),
                Inst::Copy { src, .. } => rw(src),
                Inst::Load { addr, .. } => rw(addr),
                Inst::Store { value, addr, .. } => {
                    rw(value);
                    rw(addr);
                }
                Inst::Call { args, .. } => args.iter_mut().for_each(&mut rw),
            }
        }
        match &mut b.term {
            Some(Terminator::Branch { cond, .. }) => rw(cond),
            Some(Terminator::Ret(Some(o))) => rw(o),
            _ => {}
        }
    }
    rewritten
}

/// `op(a, b)` when it reduces to one of its operands.
fn identity(op: Opcode, a: Operand, b: Operand) -> Option<Operand> {
    let (av, bv) = (a.imm(), b.imm());
    match op {
        Opcode::Add | Opcode::Ior | Opcode::Xor => {
            if bv == Some(0) {
                Some(a)
            } else if av == Some(0) {
                Some(b)
            } else {
                None
            }
        }
        Opcode::Sub | Opcode::Shl | Opcode::Shr | Opcode::Shru => {
            if bv == Some(0) {
                Some(a)
            } else {
                None
            }
        }
        Opcode::Mul => {
            if bv == Some(1) {
                Some(a)
            } else if av == Some(1) {
                Some(b)
            } else {
                None
            }
        }
        Opcode::And => {
            if bv == Some(-1) {
                Some(a)
            } else if av == Some(-1) {
                Some(b)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::FunctionBuilder;

    #[test]
    fn folds_constant_expressions() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let a = fb.add(3, 4); // 7
        let b = fb.mul(a, 1); // identity
        let c = fb.sxhw(0x1_ffff); // -1
        let d = fb.xor(b, c);
        fb.ret(d);
        let mut f = fb.finish();
        let n = fold_constants(&mut f);
        assert_eq!(n, 3);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Copy {
                src: Operand::Imm(7),
                ..
            }
        ));
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
        assert!(matches!(
            f.blocks[0].insts[2],
            Inst::Copy {
                src: Operand::Imm(-1),
                ..
            }
        ));
    }

    #[test]
    fn identities_reduce_to_copies() {
        let mut fb = FunctionBuilder::new("f", 1, true);
        let p = fb.param(0);
        let a = fb.add(p, 0);
        let b = fb.shl(a, 0);
        let c = fb.and(b, -1);
        let d = fb.ior(0, c);
        fb.ret(d);
        let mut f = fb.finish();
        assert_eq!(fold_constants(&mut f), 4);
        for inst in &f.blocks[0].insts {
            assert!(matches!(inst, Inst::Copy { .. }), "{inst}");
        }
    }

    #[test]
    fn subtraction_only_folds_on_the_right() {
        let mut fb = FunctionBuilder::new("f", 1, true);
        let p = fb.param(0);
        let a = fb.sub(0, p); // negation: NOT an identity
        let b = fb.sub(a, 0); // identity
        fb.ret(b);
        let mut f = fb.finish();
        assert_eq!(fold_constants(&mut f), 1);
        assert!(matches!(f.blocks[0].insts[0], Inst::Bin { .. }));
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
    }

    #[test]
    fn wrapping_semantics_match_the_interpreter() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let a = fb.mul(i32::MAX, 3);
        let b = fb.shl(a, 33); // masked shift
        fb.ret(b);
        let mut f = fb.finish();
        let want = {
            use tta_ir::{FuncId, Module};
            let m = Module {
                name: "w".into(),
                funcs: vec![f.clone()],
                entry: FuncId(0),
                data: vec![],
                mem_size: 64,
            };
            tta_ir::interp::run_ret(&m, &[])
        };
        fold_constants(&mut f);
        propagate_single_def_constants(&mut f);
        fold_constants(&mut f);
        match &f.blocks[0].insts[1] {
            Inst::Copy {
                src: Operand::Imm(v),
                ..
            } => assert_eq!(*v, want),
            other => panic!("expected folded copy, got {other}"),
        }
    }
}
