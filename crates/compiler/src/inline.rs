//! Exhaustive inlining: flatten a module's call graph into one function.
//!
//! The paper's toolchain compiles CHStone with LLVM at `-O3`, which performs
//! aggressive whole-program inlining (the paper credits it for the small TTA
//! program images on `blowfish`). We make that explicit: the back end only
//! schedules a single flat function, which also removes any need for a
//! machine-level calling convention — consistent with the evaluated cores,
//! whose control units provide absolute jumps only.

use tta_ir::{Block, BlockId, Function, Inst, Module, Operand, Terminator, VReg};

/// Error produced when a module cannot be inlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineError(pub String);

impl std::fmt::Display for InlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for InlineError {}

/// Flatten the module into a single function equivalent to its entry
/// function with every call expanded. Fails on recursive call graphs.
pub fn inline_module(m: &Module) -> Result<Function, InlineError> {
    if let Some(f) = tta_ir::verify::find_recursion(m) {
        return Err(InlineError(format!(
            "recursive function {f} cannot be inlined"
        )));
    }
    let entry = m.entry_func();
    let mut out = Function {
        name: entry.name.clone(),
        params: entry.params.clone(),
        returns_value: entry.returns_value,
        blocks: Vec::new(),
        next_vreg: entry.next_vreg,
    };
    clone_body(m, entry, None, &mut out, 0);
    Ok(out)
}

/// Clone `f`'s body into `out`.
///
/// `vreg_base`: the caller allocates a contiguous vreg range for the callee
/// and passes the offset; 0 for the entry function (identity mapping).
/// Returns the block offset at which the body was placed.
fn clone_body(
    m: &Module,
    f: &Function,
    ret: Option<RetCtx>,
    out: &mut Function,
    vreg_base: u32,
) -> u32 {
    let block_base = out.blocks.len() as u32;
    // Reserve the blocks up front so ids are stable while we fill them.
    for _ in 0..f.blocks.len() {
        out.blocks.push(Block::new());
    }
    let map_reg = |r: VReg| VReg(r.0 + vreg_base);
    let map_op = |o: Operand| match o {
        Operand::Reg(r) => Operand::Reg(map_reg(r)),
        Operand::Imm(v) => Operand::Imm(v),
    };
    let map_block = |b: BlockId| BlockId(b.0 + block_base);

    for (bi, src_block) in f.blocks.iter().enumerate() {
        let mut insts: Vec<Inst> = Vec::with_capacity(src_block.insts.len());
        // Where execution continues within this (possibly split) block.
        let mut cur_out = BlockId(block_base + bi as u32);
        for inst in &src_block.insts {
            match inst {
                Inst::Call { func, args, dst } => {
                    let callee = m.func(*func);
                    // Allocate the callee's vreg space.
                    let callee_base = out.next_vreg;
                    out.next_vreg += callee.next_vreg;
                    // Bind arguments: copies into the callee's parameters.
                    for (p, a) in callee.params.iter().zip(args) {
                        insts.push(Inst::Copy {
                            dst: VReg(p.0 + callee_base),
                            src: map_op(*a),
                        });
                    }
                    // Flush pending instructions into the current block,
                    // reserve the continuation block (the callee may expand
                    // to arbitrarily many blocks, so reserve it *before*
                    // cloning), then clone the callee body.
                    out.blocks[cur_out.0 as usize].insts = std::mem::take(&mut insts);
                    let cont = BlockId(out.blocks.len() as u32);
                    out.blocks.push(Block::new());
                    let callee_entry = BlockId(out.blocks.len() as u32);
                    out.blocks[cur_out.0 as usize].term = Some(Terminator::Jump(callee_entry));
                    clone_body(
                        m,
                        callee,
                        Some(RetCtx {
                            cont,
                            dst: dst.map(map_reg),
                        }),
                        out,
                        callee_base,
                    );
                    cur_out = cont;
                }
                other => insts.push(remap_inst(other, &map_op, &map_reg)),
            }
        }
        out.blocks[cur_out.0 as usize].insts = std::mem::take(&mut insts);
        let term = src_block
            .term
            .as_ref()
            .expect("verified blocks are terminated");
        out.blocks[cur_out.0 as usize].term = Some(match term {
            Terminator::Jump(b) => Terminator::Jump(map_block(*b)),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => Terminator::Branch {
                cond: map_op(*cond),
                if_true: map_block(*if_true),
                if_false: map_block(*if_false),
            },
            Terminator::Ret(v) => match &ret {
                // Entry function: keep the return.
                None => Terminator::Ret(v.map(map_op)),
                // Inlined callee: copy the value and jump to the caller's
                // continuation.
                Some(ctx) => {
                    if let (Some(dst), Some(v)) = (ctx.dst, v) {
                        out.blocks[cur_out.0 as usize].insts.push(Inst::Copy {
                            dst,
                            src: map_op(*v),
                        });
                    }
                    Terminator::Jump(ctx.cont)
                }
            },
        });
    }
    block_base
}

struct RetCtx {
    /// Caller block to continue in after the callee returns.
    cont: BlockId,
    /// Register receiving the return value.
    dst: Option<VReg>,
}

fn remap_inst(
    inst: &Inst,
    map_op: &impl Fn(Operand) -> Operand,
    map_reg: &impl Fn(VReg) -> VReg,
) -> Inst {
    match inst {
        Inst::Bin { op, dst, a, b } => Inst::Bin {
            op: *op,
            dst: map_reg(*dst),
            a: map_op(*a),
            b: map_op(*b),
        },
        Inst::Un { op, dst, a } => Inst::Un {
            op: *op,
            dst: map_reg(*dst),
            a: map_op(*a),
        },
        Inst::Copy { dst, src } => Inst::Copy {
            dst: map_reg(*dst),
            src: map_op(*src),
        },
        Inst::Load {
            op,
            dst,
            addr,
            region,
        } => Inst::Load {
            op: *op,
            dst: map_reg(*dst),
            addr: map_op(*addr),
            region: *region,
        },
        Inst::Store {
            op,
            value,
            addr,
            region,
        } => Inst::Store {
            op: *op,
            value: map_op(*value),
            addr: map_op(*addr),
            region: *region,
        },
        Inst::Call { .. } => unreachable!("calls handled by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
    use tta_ir::interp::Interpreter;
    use tta_ir::verify::verify_function;

    /// Interpret `m` and the inlined flat function and compare results.
    fn assert_inline_equivalent(m: &Module, args: &[i32]) {
        tta_ir::verify::verify_module(m).expect("input verifies");
        let flat = inline_module(m).expect("inlines");
        verify_function(&flat, None)
            .unwrap_or_else(|e| panic!("flat function fails verification: {e:?}"));
        // Wrap the flat function in a module to reuse the interpreter.
        let flat_mod = Module {
            name: m.name.clone(),
            funcs: vec![flat],
            entry: tta_ir::FuncId(0),
            data: m.data.clone(),
            mem_size: m.mem_size,
        };
        let a = Interpreter::new(m).run(args).expect("original runs");
        let b = Interpreter::new(&flat_mod).run(args).expect("flat runs");
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.memory, b.memory);
        assert_eq!(b.stats.calls, 0, "flat module performs no calls");
    }

    #[test]
    fn inlines_simple_call() {
        let mut mb = ModuleBuilder::new("m");
        let mut cb = FunctionBuilder::new("sq", 1, true);
        let s = cb.mul(cb.param(0), cb.param(0));
        cb.ret(s);
        let sq = mb.add(cb.finish());
        let mut fb = FunctionBuilder::new("main", 1, true);
        let a = fb.call(sq, &[Operand::Reg(fb.param(0))]);
        let b = fb.call(sq, &[Operand::Reg(a)]);
        fb.ret(b);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        assert_inline_equivalent(&mb.finish(), &[3]); // ((3^2)^2) = 81
    }

    #[test]
    fn inlines_nested_calls_with_control_flow() {
        let mut mb = ModuleBuilder::new("m");
        // abs(x)
        let mut ab = FunctionBuilder::new("abs", 1, true);
        let neg = ab.new_block();
        let pos = ab.new_block();
        let c = ab.lt(ab.param(0), 0);
        ab.branch(c, neg, pos);
        ab.switch_to(neg);
        let n = ab.sub(0, ab.param(0));
        ab.ret(n);
        ab.switch_to(pos);
        ab.ret(ab.param(0));
        let abs = mb.add(ab.finish());
        // dist(a, b) = abs(a - b)
        let mut db = FunctionBuilder::new("dist", 2, true);
        let d = db.sub(db.param(0), db.param(1));
        let r = db.call(abs, &[Operand::Reg(d)]);
        db.ret(r);
        let dist = mb.add(db.finish());
        // main: dist(3, 10) + dist(10, 3)
        let mut fb = FunctionBuilder::new("main", 0, true);
        let x = fb.call(dist, &[Operand::Imm(3), Operand::Imm(10)]);
        let y = fb.call(dist, &[Operand::Imm(10), Operand::Imm(3)]);
        let s = fb.add(x, y);
        fb.ret(s);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        assert_inline_equivalent(&m, &[]);
        assert_eq!(tta_ir::interp::run_ret(&m, &[]), 14);
    }

    #[test]
    fn inlines_calls_inside_loops() {
        let mut mb = ModuleBuilder::new("m");
        let mut cb = FunctionBuilder::new("step", 2, true);
        let t = cb.mul(cb.param(0), 3);
        let s = cb.add(t, cb.param(1));
        cb.ret(s);
        let step = mb.add(cb.finish());
        let mut fb = FunctionBuilder::new("main", 0, true);
        let acc = fb.copy(1);
        let i = fb.copy(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        let c = fb.lt(i, 5);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let a2 = fb.call(step, &[Operand::Reg(acc), Operand::Reg(i)]);
        fb.copy_to(acc, a2);
        let i2 = fb.add(i, 1);
        fb.copy_to(i, i2);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(acc);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        assert_inline_equivalent(&mb.finish(), &[]);
    }

    #[test]
    fn rejects_recursion() {
        let mut mb = ModuleBuilder::new("m");
        let f_id = mb.declare("f");
        let mut fb = FunctionBuilder::new("f", 0, false);
        fb.call_void(f_id, &[]);
        fb.ret_void();
        mb.define(f_id, fb.finish());
        mb.set_entry(f_id);
        let e = inline_module(&mb.finish()).unwrap_err();
        assert!(e.0.contains("recursive"));
    }

    #[test]
    fn void_calls_and_memory_effects() {
        let mut mb = ModuleBuilder::new("m");
        let buf = mb.buffer(16);
        let mut cb = FunctionBuilder::new("bump", 0, false);
        let v = cb.ldw(buf.base(), buf.region);
        let v2 = cb.add(v, 1);
        cb.stw(v2, buf.base(), buf.region);
        cb.ret_void();
        let bump = mb.add(cb.finish());
        let mut fb = FunctionBuilder::new("main", 0, true);
        fb.call_void(bump, &[]);
        fb.call_void(bump, &[]);
        fb.call_void(bump, &[]);
        let v = fb.ldw(buf.base(), buf.region);
        fb.ret(v);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        assert_inline_equivalent(&m, &[]);
        assert_eq!(tta_ir::interp::run_ret(&m, &[]), 3);
    }
}
