//! Dead-code elimination on the flattened IR.
//!
//! Removes instructions whose results are never observed: pure operations
//! (ALU, copies, loads) whose destination register is not live at the
//! point of definition. Stores, calls and terminators are always live.
//! Runs after inlining — argument-binding copies for unused parameters and
//! values computed only for dead paths disappear here, the way `-O3` would
//! clean them up before scheduling.

use crate::liveness::Liveness;
use tta_ir::{Function, Inst};

/// Remove dead instructions. Returns the number removed (iterates to a
/// fixpoint, since removing one use can kill its producers).
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let _span = tta_obs::span("dce");
    let mut removed_total = 0;
    loop {
        let live = Liveness::compute(f);
        let mut removed = 0;
        for (bi, b) in f.blocks.iter_mut().enumerate() {
            // Walk backwards keeping a running live set within the block,
            // seeded with the successor liveness plus the terminator's own
            // reads (live_out only covers values consumed in successors).
            let mut live_now = live.live_out[bi].clone();
            if let Some(t) = &b.term {
                for u in t.uses() {
                    live_now.insert(u.0 as usize);
                }
            }
            let mut keep = vec![true; b.insts.len()];
            for (ii, inst) in b.insts.iter().enumerate().rev() {
                let side_effecting = matches!(inst, Inst::Store { .. } | Inst::Call { .. });
                let dead = match inst.def() {
                    Some(d) if !side_effecting => !live_now.contains(d.0 as usize),
                    _ => false,
                };
                if dead {
                    keep[ii] = false;
                    removed += 1;
                    continue;
                }
                if let Some(d) = inst.def() {
                    live_now.remove(d.0 as usize);
                }
                for u in inst.uses() {
                    live_now.insert(u.0 as usize);
                }
            }
            let mut k = keep.iter();
            b.insts.retain(|_| *k.next().unwrap());
        }
        removed_total += removed;
        if removed == 0 {
            tta_obs::counter::add("compiler.dce_removed", removed_total as u64);
            return removed_total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
    use tta_ir::MemRegion;

    #[test]
    fn removes_unused_chains() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let live = fb.add(1, 2);
        let dead1 = fb.mul(3, 4); // never used
        let _dead2 = fb.add(dead1, 1); // uses dead1, itself unused
        fb.ret(live);
        let mut f = fb.finish();
        let n = eliminate_dead_code(&mut f);
        assert_eq!(n, 2);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn keeps_stores_and_loads_feeding_them() {
        let mut fb = FunctionBuilder::new("f", 0, false);
        let v = fb.ldw(16, MemRegion(1));
        fb.stw(v, 20, MemRegion(1));
        let _dead = fb.ldw(24, MemRegion(1)); // dead load: removable (pure)
        fb.ret_void();
        let mut f = fb.finish();
        let n = eliminate_dead_code(&mut f);
        assert_eq!(n, 1);
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn respects_loop_carried_liveness() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let acc = fb.copy(0);
        let i = fb.copy(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        let c = fb.lt(i, 10);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let a2 = fb.add(acc, i);
        fb.copy_to(acc, a2);
        let i2 = fb.add(i, 1);
        fb.copy_to(i, i2);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(acc);
        let mut f = fb.finish();
        let before: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        let n = eliminate_dead_code(&mut f);
        assert_eq!(n, 0, "nothing is dead in this loop");
        let after: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn preserves_semantics_end_to_end() {
        let build = |dce: bool| {
            let mut mb = ModuleBuilder::new("m");
            let buf = mb.buffer(32);
            let mut fb = FunctionBuilder::new("main", 0, true);
            let a = fb.add(10, 20);
            let _dead = fb.mul(a, 99);
            fb.stw(a, buf.base(), buf.region);
            let b = fb.ldw(buf.base(), buf.region);
            let _dead2 = fb.xor(b, -1);
            let r = fb.add(b, 1);
            fb.ret(r);
            let mut f = fb.finish();
            if dce {
                assert!(eliminate_dead_code(&mut f) >= 2);
            }
            let id = mb.add(f);
            mb.set_entry(id);
            mb.finish()
        };
        assert_eq!(
            tta_ir::interp::run_ret(&build(false), &[]),
            tta_ir::interp::run_ret(&build(true), &[])
        );
    }
}
