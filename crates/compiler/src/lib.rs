//! # tta-compiler — from IR to soft-core machine code
//!
//! The compiler back end of the reproduction. One IR and one scheduler
//! framework serve all three programming models, mirroring how the paper
//! produces its VLIW numbers by disabling the TTA-specific freedoms in the
//! TCE compiler (§IV): the [`tta_sched`] backend performs software
//! bypassing, dead-result elimination and operand sharing; the
//! [`vliw_sched`] backend is the same list scheduler constrained to
//! operation-triggered semantics (all operands through the register file,
//! one writeback cycle on every dependence); the [`scalar_sched`] backend
//! emits a single-issue stream for the MicroBlaze-like baselines.
//!
//! Entry point: [`compile::compile`].

#![warn(missing_docs)]

pub mod bitset;
pub mod compact;
pub mod compile;
pub mod consts;
pub mod dce;
pub mod ddg;
pub mod fold;
pub mod inline;
pub mod liveness;
pub mod loc;
pub mod regalloc;
pub mod scalar_sched;
pub mod tta_sched;
pub mod vliw_sched;

pub use compile::{compile, compile_with, CompileError, CompileStats, Compiled};
pub use tta_sched::TtaOptions;
