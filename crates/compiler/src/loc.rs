//! Located code: the post-register-allocation form the schedulers consume.
//!
//! Every operand is a physical register or an immediate; blocks carry their
//! lowered terminator. The convention for the two input fields mirrors the
//! TTA function-unit ports: `b` is the value transported to the *trigger*
//! port (second ALU input, load/store address, branch condition), `a` the
//! value for the storing *operand* port (first ALU input, store data,
//! branch target).

use crate::regalloc::Allocation;
use tta_ir::{BlockId, Inst, MemRegion, Operand, Terminator, VReg};
use tta_model::{Opcode, RegRef};

/// A physical operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocSrc {
    /// Read a physical register.
    Reg(RegRef),
    /// An immediate constant (may be wide; backends materialise as needed).
    Imm(i32),
}

impl LocSrc {
    /// The register read, if any.
    pub fn reg(self) -> Option<RegRef> {
        match self {
            LocSrc::Reg(r) => Some(r),
            LocSrc::Imm(_) => None,
        }
    }
}

/// The kind of a located operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocKind {
    /// An ALU operation (one or two inputs per the opcode).
    Alu(Opcode),
    /// A load (address in `b`).
    Load(Opcode, MemRegion),
    /// A store (data in `a`, address in `b`).
    Store(Opcode, MemRegion),
    /// A register/immediate copy (source in `a`). On a TTA this is a bare
    /// transport; operation-triggered backends expand it to `add a, #0`.
    Copy,
}

/// One located operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocOp {
    /// What the operation does.
    pub kind: LocKind,
    /// Result register, if the operation produces a value.
    pub dst: Option<RegRef>,
    /// Operand-port input.
    pub a: Option<LocSrc>,
    /// Trigger-port input.
    pub b: Option<LocSrc>,
}

impl LocOp {
    /// Functional latency: cycles from trigger to result availability.
    pub fn latency(&self) -> u32 {
        match self.kind {
            LocKind::Alu(op) | LocKind::Load(op, _) | LocKind::Store(op, _) => op.latency(),
            // A copy through the ALU has add-latency; as a raw transport the
            // TTA scheduler handles it specially.
            LocKind::Copy => 1,
        }
    }

    /// The memory region touched, if this is a memory operation.
    pub fn mem_region(&self) -> Option<(MemRegion, bool)> {
        match self.kind {
            LocKind::Load(_, r) => Some((r, false)),
            LocKind::Store(_, r) => Some((r, true)),
            _ => None,
        }
    }

    /// Registers read by this op.
    pub fn reads(&self) -> impl Iterator<Item = RegRef> {
        [self.a, self.b]
            .into_iter()
            .flatten()
            .filter_map(LocSrc::reg)
    }
}

/// A lowered terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocTerm {
    /// Unconditional jump.
    Jump(BlockId),
    /// Branch on `cond != 0`.
    Branch {
        /// Condition value.
        cond: LocSrc,
        /// Successor when non-zero.
        if_true: BlockId,
        /// Successor when zero.
        if_false: BlockId,
    },
    /// Program end (entry-function return); the return value, if any, is
    /// stored to [`RETVAL_ADDR`] before halting.
    Ret(Option<LocSrc>),
}

impl LocTerm {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            LocTerm::Jump(b) => vec![*b],
            LocTerm::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            LocTerm::Ret(_) => vec![],
        }
    }
}

/// Absolute byte address of the return-value slot (shared with the
/// simulators through `tta-isa`).
pub use tta_isa::RETVAL_ADDR;

/// A located basic block.
#[derive(Debug, Clone)]
pub struct LocBlock {
    /// Operations in program order.
    pub ops: Vec<LocOp>,
    /// The terminator.
    pub term: LocTerm,
    /// Registers that must be in their register file at block exit (live
    /// into some successor). Defs whose register is not live-out and whose
    /// in-block consumers were all satisfied by bypassing can skip their RF
    /// write entirely — the paper's dead-result elimination.
    pub live_out: Vec<RegRef>,
}

/// A fully located function.
#[derive(Debug, Clone)]
pub struct LocFunc {
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<LocBlock>,
}

/// Lower an allocated function to located code.
pub fn lower(alloc: &Allocation) -> LocFunc {
    let f = &alloc.func;
    let live = crate::liveness::Liveness::compute(f);
    let reg = |r: VReg| alloc.reg(r);
    let src = |o: Operand| match o {
        Operand::Reg(r) => LocSrc::Reg(reg(r)),
        Operand::Imm(v) => LocSrc::Imm(v),
    };

    let mut blocks = Vec::with_capacity(f.blocks.len());
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut ops = Vec::with_capacity(b.insts.len());
        for inst in &b.insts {
            let op = match inst {
                Inst::Bin { op, dst, a, b } => LocOp {
                    kind: LocKind::Alu(*op),
                    dst: Some(reg(*dst)),
                    a: Some(src(*a)),
                    b: Some(src(*b)),
                },
                Inst::Un { op, dst, a } => LocOp {
                    kind: LocKind::Alu(*op),
                    dst: Some(reg(*dst)),
                    a: None,
                    b: Some(src(*a)),
                },
                Inst::Copy { dst, src: s } => LocOp {
                    kind: LocKind::Copy,
                    dst: Some(reg(*dst)),
                    a: Some(src(*s)),
                    b: None,
                },
                Inst::Load {
                    op,
                    dst,
                    addr,
                    region,
                } => LocOp {
                    kind: LocKind::Load(*op, *region),
                    dst: Some(reg(*dst)),
                    a: None,
                    b: Some(src(*addr)),
                },
                Inst::Store {
                    op,
                    value,
                    addr,
                    region,
                } => LocOp {
                    kind: LocKind::Store(*op, *region),
                    dst: None,
                    a: Some(src(*value)),
                    b: Some(src(*addr)),
                },
                Inst::Call { .. } => unreachable!("calls are inlined before lowering"),
            };
            ops.push(op);
        }
        let term = match b.term.as_ref().expect("terminated blocks") {
            Terminator::Jump(t) => LocTerm::Jump(*t),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => LocTerm::Branch {
                cond: src(*cond),
                if_true: *if_true,
                if_false: *if_false,
            },
            Terminator::Ret(v) => LocTerm::Ret(v.map(src)),
        };
        let live_out: Vec<RegRef> = live.live_out[bi]
            .iter()
            .filter_map(|v| alloc.assignment[v].as_ref().copied())
            .collect();
        blocks.push(LocBlock {
            ops,
            term,
            live_out,
        });
    }
    LocFunc { blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use tta_ir::builder::FunctionBuilder;
    use tta_model::presets;

    fn lower_simple() -> LocFunc {
        let mut fb = FunctionBuilder::new("main", 0, true);
        let a = fb.copy(5);
        let b = fb.mul(a, a);
        let c = fb.sub(b, 1);
        fb.stw(c, 16, tta_ir::MemRegion(1));
        let d = fb.ldw(16, tta_ir::MemRegion(1));
        fb.ret(d);
        let f = fb.finish();
        let alloc = allocate(&f, &presets::m_tta_1(), &[], 1 << 16).unwrap();
        lower(&alloc)
    }

    #[test]
    fn lowers_all_op_kinds() {
        let lf = lower_simple();
        assert_eq!(lf.blocks.len(), 1);
        let ops = &lf.blocks[0].ops;
        assert!(matches!(ops[0].kind, LocKind::Copy));
        assert!(matches!(ops[1].kind, LocKind::Alu(Opcode::Mul)));
        assert!(matches!(ops[2].kind, LocKind::Alu(Opcode::Sub)));
        assert!(matches!(ops[3].kind, LocKind::Store(Opcode::Stw, _)));
        assert!(matches!(ops[4].kind, LocKind::Load(Opcode::Ldw, _)));
        assert!(matches!(lf.blocks[0].term, LocTerm::Ret(Some(_))));
        // Store carries data in `a`, address in `b`.
        assert_eq!(ops[3].a.unwrap().reg(), ops[2].dst);
        assert_eq!(ops[3].b, Some(LocSrc::Imm(16)));
    }

    #[test]
    fn straight_line_block_has_no_live_out() {
        let lf = lower_simple();
        assert!(lf.blocks[0].live_out.is_empty());
    }

    #[test]
    fn loop_block_reports_live_out_registers() {
        let mut fb = FunctionBuilder::new("main", 0, true);
        let i = fb.copy(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        let c = fb.lt(i, 10);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, 1);
        fb.copy_to(i, i2);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(i);
        let f = fb.finish();
        let alloc = allocate(&f, &presets::m_tta_1(), &[], 1 << 16).unwrap();
        let lf = lower(&alloc);
        // The entry block must keep `i` alive for the loop.
        assert!(!lf.blocks[0].live_out.is_empty());
    }
}
