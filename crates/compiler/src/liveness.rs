//! Per-block liveness analysis over virtual registers.

use crate::bitset::BitSet;
use tta_ir::{Function, VReg};

/// Live-in/live-out sets per block, indexed by `BlockId`.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at block entry.
    pub live_in: Vec<BitSet>,
    /// Registers live at block exit.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Compute liveness for a function with a standard backward dataflow.
    pub fn compute(f: &Function) -> Liveness {
        let nregs = f.next_vreg as usize;
        let nblocks = f.blocks.len();

        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = Vec::with_capacity(nblocks);
        let mut kill = Vec::with_capacity(nblocks);
        for b in &f.blocks {
            let mut g = BitSet::new(nregs);
            let mut k = BitSet::new(nregs);
            for inst in &b.insts {
                for u in inst.uses() {
                    if !k.contains(u.0 as usize) {
                        g.insert(u.0 as usize);
                    }
                }
                if let Some(d) = inst.def() {
                    k.insert(d.0 as usize);
                }
            }
            if let Some(t) = &b.term {
                for u in t.uses() {
                    if !k.contains(u.0 as usize) {
                        g.insert(u.0 as usize);
                    }
                }
            }
            gen.push(g);
            kill.push(k);
        }

        let mut live_in: Vec<BitSet> = vec![BitSet::new(nregs); nblocks];
        let mut live_out: Vec<BitSet> = vec![BitSet::new(nregs); nblocks];
        let succs: Vec<Vec<u32>> = f
            .blocks
            .iter()
            .map(|b| {
                b.term
                    .as_ref()
                    .map(|t| t.successors().into_iter().map(|s| s.0).collect())
                    .unwrap_or_default()
            })
            .collect();

        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..nblocks).rev() {
                let mut out = BitSet::new(nregs);
                for &s in &succs[bi] {
                    out.union_with(&live_in[s as usize]);
                }
                // in = gen | (out - kill)
                let mut inp = gen[bi].clone();
                for e in out.iter() {
                    if !kill[bi].contains(e) {
                        inp.insert(e);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inp != live_in[bi] {
                    live_in[bi] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Whether `r` is live out of block `bi`.
    pub fn is_live_out(&self, bi: usize, r: VReg) -> bool {
        self.live_out[bi].contains(r.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::FunctionBuilder;

    #[test]
    fn straight_line_liveness() {
        let mut fb = FunctionBuilder::new("f", 1, true);
        let a = fb.add(fb.param(0), 1);
        let b = fb.add(a, 2);
        fb.ret(b);
        let f = fb.finish();
        let l = Liveness::compute(&f);
        // Entry: only the parameter is live-in.
        assert!(l.live_in[0].contains(0));
        assert!(!l.live_in[0].contains(a.0 as usize));
        assert!(l.live_out[0].is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let acc = fb.copy(0);
        let i = fb.copy(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        let c = fb.lt(i, 10);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let a2 = fb.add(acc, i);
        fb.copy_to(acc, a2);
        let i2 = fb.add(i, 1);
        fb.copy_to(i, i2);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(acc);
        let f = fb.finish();
        let l = Liveness::compute(&f);
        let head_i = 1usize;
        let body_i = 2usize;
        // acc and i are live around the back edge.
        assert!(l.live_in[head_i].contains(acc.0 as usize));
        assert!(l.live_in[head_i].contains(i.0 as usize));
        assert!(l.live_out[body_i].contains(acc.0 as usize));
        assert!(l.live_out[body_i].contains(i.0 as usize));
        // The condition is block-local to head.
        assert!(!l.live_out[head_i].contains(c.0 as usize));
    }

    #[test]
    fn value_dead_after_last_use() {
        let mut fb = FunctionBuilder::new("f", 0, true);
        let a = fb.copy(1);
        let b1 = fb.new_block();
        fb.jump(b1);
        fb.switch_to(b1);
        let b = fb.add(a, 1); // last use of a
        let b2 = fb.new_block();
        fb.jump(b2);
        fb.switch_to(b2);
        fb.ret(b);
        let f = fb.finish();
        let l = Liveness::compute(&f);
        assert!(l.live_out[0].contains(a.0 as usize));
        assert!(!l.live_out[1].contains(a.0 as usize));
        assert!(l.live_out[1].contains(b.0 as usize));
    }
}
