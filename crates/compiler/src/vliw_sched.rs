//! List scheduler for the operation-triggered VLIW targets.
//!
//! Timing model (matches the paper's synthesised VLIW, which has *no*
//! forwarding network — §V.B notes the comparison omits forward-resolution
//! logic): an operation issued at cycle `t` reads its RF operands at `t`,
//! occupies an RF write port at `t + latency`, and its result becomes
//! readable at `t + latency + 1`. The one-cycle writeback penalty on every
//! dependence edge is exactly what TTA software bypassing removes.

use crate::ddg::{Ddg, DepKind};
use crate::loc::{LocBlock, LocFunc, LocKind, LocOp, LocSrc, LocTerm, RETVAL_ADDR};
use tta_ir::BlockId;
use tta_isa::encoding::{fits_signed, vliw_imm_bits};
use tta_isa::{OpSrc, Operation, VliwBundle, VliwSlot};
use tta_model::{FuId, FuKind, Machine, Opcode, RegRef};

/// A branch-target long-immediate awaiting its absolute address.
#[derive(Debug, Clone, Copy)]
pub struct Patch {
    /// Cycle within the block.
    pub cycle: u32,
    /// First slot of the long immediate.
    pub slot: usize,
    /// Target block whose start address must be written.
    pub target: BlockId,
}

/// A scheduled block.
#[derive(Debug, Clone)]
pub struct SchedBlock {
    /// The bundles (block-local cycles).
    pub bundles: Vec<VliwBundle>,
    /// Branch-target patches.
    pub patches: Vec<Patch>,
}

/// Growable per-cycle resource grid.
struct Grid<'m> {
    m: &'m Machine,
    slots: Vec<Vec<bool>>,
    fu_busy: Vec<Vec<bool>>,
    reads: Vec<Vec<u8>>,
    writes: Vec<Vec<u8>>,
}

impl<'m> Grid<'m> {
    fn new(m: &'m Machine) -> Self {
        Grid {
            m,
            slots: Vec::new(),
            fu_busy: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn grow(&mut self, cycle: u32) {
        while self.slots.len() <= cycle as usize {
            self.slots.push(vec![false; self.m.slots.len()]);
            self.fu_busy.push(vec![false; self.m.funits.len()]);
            self.reads.push(vec![0; self.m.rfs.len()]);
            self.writes.push(vec![0; self.m.rfs.len()]);
        }
    }

    fn read_ok(&mut self, t: u32, regs: &[RegRef]) -> bool {
        self.grow(t);
        let mut need = vec![0u8; self.m.rfs.len()];
        for r in regs {
            need[r.rf.0 as usize] += 1;
        }
        need.iter()
            .enumerate()
            .all(|(rf, &n)| self.reads[t as usize][rf] + n <= self.m.rfs[rf].read_ports)
    }

    fn write_ok(&mut self, t: u32, reg: RegRef) -> bool {
        self.grow(t);
        self.writes[t as usize][reg.rf.0 as usize] < self.m.rfs[reg.rf.0 as usize].write_ports
    }

    fn free_slot_for(&mut self, t: u32, fu: FuId) -> Option<usize> {
        self.grow(t);
        (0..self.m.slots.len())
            .find(|&s| !self.slots[t as usize][s] && self.m.slots[s].units.contains(&fu))
    }

    fn consecutive_free_slots(&mut self, t: u32, n: usize) -> Option<usize> {
        self.grow(t);
        let row = &self.slots[t as usize];
        (0..=row.len().saturating_sub(n)).find(|&s| row[s..s + n].iter().all(|b| !b))
    }

    fn commit_op(
        &mut self,
        t: u32,
        slot: usize,
        fu: FuId,
        reads: &[RegRef],
        write: Option<(u32, RegRef)>,
    ) {
        self.grow(t);
        self.slots[t as usize][slot] = true;
        self.fu_busy[t as usize][fu.0 as usize] = true;
        for r in reads {
            self.reads[t as usize][r.rf.0 as usize] += 1;
        }
        if let Some((wt, wr)) = write {
            self.grow(wt);
            self.writes[wt as usize][wr.rf.0 as usize] += 1;
        }
    }
}

/// Context for scheduling one function.
pub struct VliwScheduler<'m> {
    m: &'m Machine,
    /// Reserved branch-target scratch register.
    pub bt_reg: RegRef,
    imm_bits: u32,
}

impl<'m> VliwScheduler<'m> {
    /// Create a scheduler for a VLIW machine. `bt_reg` must have been
    /// reserved during register allocation.
    pub fn new(m: &'m Machine, bt_reg: RegRef) -> Self {
        VliwScheduler {
            m,
            bt_reg,
            imm_bits: vliw_imm_bits(m),
        }
    }

    /// Schedule all blocks of a function. Blocks are laid out in index
    /// order; `fallthrough[bi]` is the next block in layout (None for the
    /// last).
    pub fn schedule(&self, f: &LocFunc) -> Vec<SchedBlock> {
        let _span = tta_obs::span("sched");
        let blocks: Vec<SchedBlock> = f
            .blocks
            .iter()
            .enumerate()
            .map(|(bi, b)| {
                let next = if bi + 1 < f.blocks.len() {
                    Some(BlockId(bi as u32 + 1))
                } else {
                    None
                };
                self.schedule_block(b, next)
            })
            .collect();
        let bundles: u64 = blocks.iter().map(|b| b.bundles.len() as u64).sum();
        tta_obs::counter::add("compiler.vliw_bundles", bundles);
        blocks
    }

    fn op_src(&self, s: LocSrc) -> OpSrc {
        match s {
            LocSrc::Reg(r) => OpSrc::Reg(r),
            LocSrc::Imm(v) => {
                debug_assert!(
                    fits_signed(v, self.imm_bits),
                    "constant legalisation must have removed wide immediate {v}"
                );
                OpSrc::Imm(v)
            }
        }
    }

    /// Pick the opcode/FU/operands for a located op (Copy becomes
    /// `add a, #0`; wide-immediate Copy becomes a long immediate, handled by
    /// the caller).
    fn operation_for(&self, op: &LocOp) -> (Opcode, Vec<FuId>, Option<OpSrc>, Option<OpSrc>) {
        match op.kind {
            LocKind::Alu(o) => {
                let units: Vec<FuId> = self.m.units_for(o).collect();
                if o.num_inputs() == 1 {
                    (o, units, None, Some(self.op_src(op.b.unwrap())))
                } else {
                    (
                        o,
                        units,
                        Some(self.op_src(op.a.unwrap())),
                        Some(self.op_src(op.b.unwrap())),
                    )
                }
            }
            LocKind::Load(o, _) => (
                o,
                self.m.units_for(o).collect(),
                None,
                Some(self.op_src(op.b.unwrap())),
            ),
            LocKind::Store(o, _) => (
                o,
                self.m.units_for(o).collect(),
                Some(self.op_src(op.a.unwrap())),
                Some(self.op_src(op.b.unwrap())),
            ),
            LocKind::Copy => {
                let a = self.op_src(op.a.unwrap());
                let units: Vec<FuId> = self.m.units_for(Opcode::Add).collect();
                (Opcode::Add, units, Some(a), Some(OpSrc::Imm(0)))
            }
        }
    }

    fn is_wide_copy(&self, op: &LocOp) -> bool {
        matches!(
            (op.kind, op.a),
            (LocKind::Copy, Some(LocSrc::Imm(v))) if !fits_signed(v, self.imm_bits)
        )
    }

    fn earliest_from_deps(
        &self,
        i: usize,
        ddg: &Ddg,
        block: &LocBlock,
        cycle_of: &[Option<u32>],
    ) -> u32 {
        let mut t = 0u32;
        for d in &ddg.preds[i] {
            let tp = cycle_of[d.from].expect("topological order");
            let lp = block.ops[d.from].latency();
            let li = block.ops[i].latency();
            let min = match d.kind {
                DepKind::Data => tp + lp + 1,
                DepKind::Anti => tp,
                DepKind::Output => tp + 1.max(lp.saturating_sub(li) + 1),
                DepKind::Mem => {
                    let prior_is_load = matches!(block.ops[d.from].kind, LocKind::Load(..));
                    let cur_is_store = matches!(block.ops[i].kind, LocKind::Store(..));
                    if prior_is_load && cur_is_store {
                        tp
                    } else {
                        tp + 1
                    }
                }
            };
            t = t.max(min);
        }
        t
    }

    fn schedule_block(&self, block: &LocBlock, next: Option<BlockId>) -> SchedBlock {
        let ddg = Ddg::build(block);
        let order = ddg.priority_order();
        let mut grid = Grid::new(self.m);
        let mut bundles: Vec<VliwBundle> = Vec::new();
        let mut cycle_of: Vec<Option<u32>> = vec![None; block.ops.len()];
        let mut last_activity = 0u32;
        let ensure = |bundles: &mut Vec<VliwBundle>, t: u32, nslots: usize| {
            while bundles.len() <= t as usize {
                bundles.push(VliwBundle::nop(nslots));
            }
        };
        let nslots = self.m.slots.len();

        for &i in &order {
            let op = &block.ops[i];
            let earliest = self.earliest_from_deps(i, &ddg, block, &cycle_of);
            if self.is_wide_copy(op) {
                // Long immediate: consecutive slots, writeback at t+1.
                let dst = op.dst.expect("copy has a destination");
                let value = match op.a {
                    Some(LocSrc::Imm(v)) => v,
                    _ => unreachable!(),
                };
                let mut t = earliest;
                let slot = loop {
                    if let Some(s) = grid.consecutive_free_slots(t, self.m.vliw_limm_slots as usize)
                    {
                        if grid.write_ok(t + 1, dst) {
                            break s;
                        }
                    }
                    t += 1;
                };
                ensure(&mut bundles, t, nslots);
                bundles[t as usize].slots[slot] = Some(VliwSlot::LimmHead { dst, value });
                for k in 1..self.m.vliw_limm_slots as usize {
                    bundles[t as usize].slots[slot + k] = Some(VliwSlot::LimmCont);
                }
                for k in 0..self.m.vliw_limm_slots as usize {
                    grid.slots[t as usize][slot + k] = true;
                }
                grid.grow(t + 1);
                grid.writes[t as usize + 1][dst.rf.0 as usize] += 1;
                cycle_of[i] = Some(t);
                last_activity = last_activity.max(t + 1);
                continue;
            }

            let (opcode, units, a, b) = self.operation_for(op);
            let reads: Vec<RegRef> = [a, b]
                .into_iter()
                .flatten()
                .filter_map(|s| match s {
                    OpSrc::Reg(r) => Some(r),
                    OpSrc::Imm(_) => None,
                })
                .collect();
            let lat = opcode.latency();
            let mut t = earliest;
            let (t, slot, fu) = loop {
                grid.grow(t);
                let mut found = None;
                for &fu in &units {
                    if grid.fu_busy[t as usize][fu.0 as usize] {
                        continue;
                    }
                    if let Some(s) = grid.free_slot_for(t, fu) {
                        found = Some((s, fu));
                        break;
                    }
                }
                if let Some((s, fu)) = found {
                    let reads_ok = grid.read_ok(t, &reads);
                    let write_ok = match op.dst {
                        Some(d) if opcode.has_result() => grid.write_ok(t + lat, d),
                        _ => true,
                    };
                    if reads_ok && write_ok {
                        break (t, s, fu);
                    }
                }
                t += 1;
            };
            let dst = if opcode.has_result() { op.dst } else { None };
            let write = dst.map(|d| (t + lat, d));
            grid.commit_op(t, slot, fu, &reads, write);
            ensure(&mut bundles, t, nslots);
            bundles[t as usize].slots[slot] = Some(VliwSlot::Op(Operation {
                op: opcode,
                fu,
                dst,
                a,
                b,
            }));
            cycle_of[i] = Some(t);
            last_activity = last_activity.max(t);
            if let Some((wt, _)) = write {
                last_activity = last_activity.max(wt);
            }
        }

        // Terminator.
        let mut patches = Vec::new();
        let cond_ready = ddg
            .term_def
            .map(|d| cycle_of[d].unwrap() + block.ops[d].latency() + 1)
            .unwrap_or(0);
        let d = self.m.jump_delay_slots;

        match block.term {
            LocTerm::Jump(target) if Some(target) == next => {
                // Fall through; pad so every writeback lands inside the
                // block.
                ensure(&mut bundles, last_activity, nslots);
            }
            LocTerm::Jump(target) => {
                self.emit_jump(
                    &mut grid,
                    &mut bundles,
                    &mut patches,
                    Opcode::Jump,
                    None,
                    target,
                    0,
                    0,
                    last_activity,
                    d,
                );
            }
            LocTerm::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let cond_src = self.op_src(cond);
                let (opcode, target, other) = if Some(if_false) == next {
                    (Opcode::CJnz, if_true, None)
                } else if Some(if_true) == next {
                    (Opcode::CJz, if_false, None)
                } else {
                    (Opcode::CJnz, if_true, Some(if_false))
                };
                let t_br = self.emit_jump(
                    &mut grid,
                    &mut bundles,
                    &mut patches,
                    opcode,
                    Some(cond_src),
                    target,
                    cond_ready,
                    0,
                    last_activity,
                    d,
                );
                if let Some(f_target) = other {
                    self.emit_jump(
                        &mut grid,
                        &mut bundles,
                        &mut patches,
                        Opcode::Jump,
                        None,
                        f_target,
                        t_br + d + 1,
                        t_br,
                        last_activity,
                        d,
                    );
                }
            }
            LocTerm::Ret(v) => {
                // Store the return value, then halt.
                let mut after = last_activity;
                if let Some(v) = v {
                    let val = self.op_src(v);
                    let lsu = self
                        .m
                        .fu_ids()
                        .find(|&f| self.m.fu(f).kind == FuKind::Lsu)
                        .expect("machine has an LSU");
                    let ready = match v {
                        LocSrc::Reg(_) => cond_ready, // term_def covers the value
                        LocSrc::Imm(_) => 0,
                    };
                    let mut t = ready;
                    let (t, slot) = loop {
                        if let Some(s) = grid.free_slot_for(t, lsu) {
                            let reads: Vec<RegRef> = match val {
                                OpSrc::Reg(r) => vec![r],
                                _ => vec![],
                            };
                            if grid.read_ok(t, &reads) {
                                break (t, s);
                            }
                        }
                        t += 1;
                    };
                    grid.slots[t as usize][slot] = true;
                    ensure(&mut bundles, t, nslots);
                    bundles[t as usize].slots[slot] = Some(VliwSlot::Op(Operation {
                        op: Opcode::Stw,
                        fu: lsu,
                        dst: None,
                        a: Some(val),
                        b: Some(OpSrc::Imm(RETVAL_ADDR as i32)),
                    }));
                    after = after.max(t);
                }
                // Halt.
                let cu = self.m.ctrl_unit();
                let mut t = after;
                let (t, slot) = loop {
                    if let Some(s) = grid.free_slot_for(t, cu) {
                        break (t, s);
                    }
                    t += 1;
                };
                grid.slots[t as usize][slot] = true;
                ensure(&mut bundles, t, nslots);
                bundles[t as usize].slots[slot] = Some(VliwSlot::Op(Operation {
                    op: Opcode::Halt,
                    fu: cu,
                    dst: None,
                    a: None,
                    b: Some(OpSrc::Imm(0)),
                }));
            }
        }

        SchedBlock { bundles, patches }
    }

    /// Emit `limm bt_reg <- target` followed by a control op reading it.
    /// Returns the control op's cycle.
    #[allow(clippy::too_many_arguments)]
    fn emit_jump(
        &self,
        grid: &mut Grid,
        bundles: &mut Vec<VliwBundle>,
        patches: &mut Vec<Patch>,
        opcode: Opcode,
        cond: Option<OpSrc>,
        target: BlockId,
        ready: u32,
        min_limm: u32,
        last_activity: u32,
        delay_slots: u32,
    ) -> u32 {
        let nslots = self.m.slots.len();
        let ensure = |bundles: &mut Vec<VliwBundle>, t: u32| {
            while bundles.len() <= t as usize {
                bundles.push(VliwBundle::nop(nslots));
            }
        };
        // Long immediate for the target address.
        let mut t_l = min_limm;
        let slot_l = loop {
            if let Some(s) = grid.consecutive_free_slots(t_l, self.m.vliw_limm_slots as usize) {
                if grid.write_ok(t_l + 1, self.bt_reg) {
                    break s;
                }
            }
            t_l += 1;
        };
        ensure(bundles, t_l);
        bundles[t_l as usize].slots[slot_l] = Some(VliwSlot::LimmHead {
            dst: self.bt_reg,
            value: 0,
        });
        for k in 1..self.m.vliw_limm_slots as usize {
            bundles[t_l as usize].slots[slot_l + k] = Some(VliwSlot::LimmCont);
        }
        for k in 0..self.m.vliw_limm_slots as usize {
            grid.slots[t_l as usize][slot_l + k] = true;
        }
        grid.grow(t_l + 1);
        grid.writes[t_l as usize + 1][self.bt_reg.rf.0 as usize] += 1;
        patches.push(Patch {
            cycle: t_l,
            slot: slot_l,
            target,
        });

        // The control op: must start no earlier than the limm is readable,
        // the condition is ready, and late enough that every writeback lands
        // within the delay-slot window.
        let cu = self.m.ctrl_unit();
        let mut t = ready
            .max(t_l + 2)
            .max(last_activity.saturating_sub(delay_slots));
        let (t_br, slot) = loop {
            if let Some(s) = grid.free_slot_for(t, cu) {
                let reads: Vec<RegRef> = std::iter::once(self.bt_reg)
                    .chain(cond.and_then(|c| match c {
                        OpSrc::Reg(r) => Some(r),
                        _ => None,
                    }))
                    .collect();
                if grid.read_ok(t, &reads) {
                    break (t, s);
                }
            }
            t += 1;
        };
        let reads: Vec<RegRef> = std::iter::once(self.bt_reg)
            .chain(cond.and_then(|c| match c {
                OpSrc::Reg(r) => Some(r),
                _ => None,
            }))
            .collect();
        grid.commit_op(t_br, slot, cu, &reads, None);
        ensure(bundles, t_br + delay_slots);
        let (a, b) = match cond {
            // Conditional jumps: target on the operand port, condition on
            // the trigger.
            Some(c) => (Some(OpSrc::Reg(self.bt_reg)), Some(c)),
            // Unconditional jump: the target itself triggers.
            None => (None, Some(OpSrc::Reg(self.bt_reg))),
        };
        bundles[t_br as usize].slots[slot] = Some(VliwSlot::Op(Operation {
            op: opcode,
            fu: cu,
            dst: None,
            a,
            b,
        }));
        // The bundles up to t_br + delay_slots exist; everything scheduled
        // there already belongs to this block (delay-slot execution).
        t_br
    }
}
