//! Dense renumbering of virtual registers.
//!
//! The exhaustive inliner allocates a fresh contiguous vreg range per call
//! site, so a heavily inlined function can have a very sparse vreg space.
//! The dataflow analyses use dense bitsets indexed by vreg number, so we
//! renumber before running them.

use std::collections::HashMap;
use tta_ir::{Function, Inst, Operand, Terminator, VReg};

/// Renumber vregs densely in order of first appearance. Returns the number
/// of distinct registers in use.
pub fn compact_vregs(f: &mut Function) -> u32 {
    struct Renamer {
        map: HashMap<VReg, VReg>,
        next: u32,
    }
    impl Renamer {
        fn get(&mut self, r: VReg) -> VReg {
            let next = &mut self.next;
            *self.map.entry(r).or_insert_with(|| {
                let n = VReg(*next);
                *next += 1;
                n
            })
        }
        fn reg(&mut self, r: &mut VReg) {
            *r = self.get(*r);
        }
        fn op(&mut self, o: &mut Operand) {
            if let Operand::Reg(r) = o {
                *r = self.get(*r);
            }
        }
    }
    let mut rn = Renamer {
        map: HashMap::new(),
        next: 0,
    };

    // Parameters first, preserving their order.
    let params = f.params.clone();
    for p in &params {
        rn.get(*p);
    }

    for b in &mut f.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::Bin { dst, a, b, .. } => {
                    rn.op(a);
                    rn.op(b);
                    rn.reg(dst);
                }
                Inst::Un { dst, a, .. } => {
                    rn.op(a);
                    rn.reg(dst);
                }
                Inst::Copy { dst, src } => {
                    rn.op(src);
                    rn.reg(dst);
                }
                Inst::Load { dst, addr, .. } => {
                    rn.op(addr);
                    rn.reg(dst);
                }
                Inst::Store { value, addr, .. } => {
                    rn.op(value);
                    rn.op(addr);
                }
                Inst::Call { args, dst, .. } => {
                    for a in args {
                        rn.op(a);
                    }
                    if let Some(d) = dst {
                        rn.reg(d);
                    }
                }
            }
        }
        match &mut b.term {
            Some(Terminator::Branch { cond, .. }) => rn.op(cond),
            Some(Terminator::Ret(Some(o))) => rn.op(o),
            _ => {}
        }
    }
    for p in &mut f.params {
        *p = rn.map[p];
    }
    let count = rn.map.len() as u32;
    f.next_vreg = count;
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::{FunctionBuilder, ModuleBuilder};

    #[test]
    fn compaction_preserves_semantics_and_shrinks() {
        let build = |compact: bool| {
            let mut mb = ModuleBuilder::new("m");
            let mut fb = FunctionBuilder::new("main", 0, true);
            // Waste vreg numbers.
            for _ in 0..100 {
                let _ = fb.vreg();
            }
            let a = fb.add(3, 4);
            for _ in 0..50 {
                let _ = fb.vreg();
            }
            let b = fb.mul(a, a);
            fb.ret(b);
            let mut f = fb.finish();
            if compact {
                let n = compact_vregs(&mut f);
                assert_eq!(n, 2); // only a and b survive
            }
            let id = mb.add(f);
            mb.set_entry(id);
            mb.finish()
        };
        assert_eq!(
            tta_ir::interp::run_ret(&build(false), &[]),
            tta_ir::interp::run_ret(&build(true), &[])
        );
    }

    #[test]
    fn params_keep_their_slots() {
        let mut fb = FunctionBuilder::new("f", 2, true);
        let s = fb.add(fb.param(0), fb.param(1));
        fb.ret(s);
        let mut f = fb.finish();
        compact_vregs(&mut f);
        assert_eq!(f.params, vec![VReg(0), VReg(1)]);
        assert_eq!(f.next_vreg, 3);
        tta_ir::verify::verify_function(&f, None).unwrap();
    }
}
