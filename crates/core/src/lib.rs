//! # tta-core — transport-triggered soft cores, end to end
//!
//! The facade crate of the *Transport-Triggered Soft Cores* reproduction:
//! design (or pick) a soft-core architecture, compile a program for it, run
//! it cycle-accurately, and estimate what it would cost on an FPGA — in a
//! handful of calls.
//!
//! ```
//! use tta_core::SoftCore;
//! use tta_ir::{FunctionBuilder, ModuleBuilder};
//!
//! // A program: sum of squares 1..=10.
//! let mut mb = ModuleBuilder::new("sumsq");
//! let mut fb = FunctionBuilder::new("main", 0, true);
//! let acc = fb.copy(0);
//! tta_core::build_loop(&mut fb, 10, |fb, i| {
//!     let i1 = fb.add(i, 1);
//!     let sq = fb.mul(i1, i1);
//!     let a = fb.add(acc, sq);
//!     fb.copy_to(acc, a);
//! });
//! fb.ret(acc);
//! let main = mb.add(fb.finish());
//! mb.set_entry(main);
//! let module = mb.finish();
//!
//! // Run it on the paper's best performance/area design point.
//! let core = SoftCore::design_point("m-tta-2").unwrap();
//! let exec = core.run(&module).unwrap();
//! assert_eq!(exec.ret, 385);
//!
//! // The same program on the VLIW counterpart takes more cycles...
//! let vliw = SoftCore::design_point("m-vliw-2").unwrap();
//! assert!(exec.cycles <= vliw.run(&module).unwrap().cycles);
//! // ...on a larger core.
//! assert!(core.resources().lut_core < vliw.resources().lut_core);
//! ```

#![warn(missing_docs)]

pub use tta_compiler::{compile, CompileError, Compiled};
pub use tta_fpga::Resources;
pub use tta_ir::{Function, FunctionBuilder, Module, ModuleBuilder};
pub use tta_isa::Program;
pub use tta_model::{presets, CoreStyle, Machine};
pub use tta_sim::{SimError, SimResult, SimStats};

use tta_ir::{Operand, VReg};

/// A soft core: a validated machine plus the operations a user performs
/// with one (compile, run, estimate).
#[derive(Debug, Clone)]
pub struct SoftCore {
    machine: Machine,
}

/// The outcome of running a program on a core.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The program's return value.
    pub ret: i32,
    /// Cycle count.
    pub cycles: u64,
    /// Final data memory.
    pub memory: Vec<u8>,
    /// Dynamic statistics.
    pub stats: SimStats,
    /// The compiled program (for inspection / size accounting).
    pub compiled: Compiled,
}

/// Errors from the end-to-end [`SoftCore::run`] flow.
#[derive(Debug)]
pub enum CoreError {
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Compile(e) => write!(f, "{e}"),
            CoreError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl SoftCore {
    /// One of the paper's thirteen design points, by name (e.g.
    /// `"m-tta-2"`, `"p-vliw-3"`, `"mblaze-5"`).
    pub fn design_point(name: &str) -> Option<SoftCore> {
        presets::by_name(name).map(|machine| SoftCore { machine })
    }

    /// Wrap a custom machine (validated first).
    pub fn new(machine: Machine) -> Result<SoftCore, Vec<tta_model::ModelError>> {
        machine.validate()?;
        Ok(SoftCore { machine })
    }

    /// The underlying machine description.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Compile a verified IR module for this core.
    pub fn compile(&self, module: &Module) -> Result<Compiled, CompileError> {
        compile(module, &self.machine)
    }

    /// Compile and run a module, returning the full execution record.
    pub fn run(&self, module: &Module) -> Result<Execution, CoreError> {
        let compiled = self.compile(module).map_err(CoreError::Compile)?;
        let result = tta_sim::run(&self.machine, &compiled.program, module.initial_memory())
            .map_err(CoreError::Sim)?;
        Ok(Execution {
            ret: result.ret,
            cycles: result.cycles,
            memory: result.memory,
            stats: result.stats,
            compiled,
        })
    }

    /// Estimated FPGA cost of this core.
    pub fn resources(&self) -> Resources {
        tta_fpga::estimate(&self.machine)
    }

    /// Instruction width in bits (the Table II metric).
    pub fn instruction_bits(&self) -> u32 {
        tta_isa::encoding::instruction_bits(&self.machine)
    }

    /// Estimated wall-clock runtime of an execution on this core, in
    /// microseconds at the estimated fmax (the Fig. 5 metric).
    pub fn runtime_us(&self, exec: &Execution) -> f64 {
        exec.cycles as f64 / self.resources().fmax_mhz
    }
}

/// Convenience: emit `for i in 0..n { body }` (re-exported from the kernel
/// utility set so facade users don't need `tta-chstone`).
pub fn build_loop(fb: &mut FunctionBuilder, n: i32, body: impl FnOnce(&mut FunctionBuilder, VReg)) {
    let i = fb.copy(0);
    let head = fb.new_block();
    let body_b = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, n);
    fb.branch(c, body_b, exit);
    fb.switch_to(body_b);
    body(fb, i);
    let i2 = fb.add(i, Operand::Imm(1));
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_module(n: i32) -> Module {
        let mut mb = ModuleBuilder::new("sum");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let acc = fb.copy(0);
        build_loop(&mut fb, n, |fb, i| {
            let a = fb.add(acc, i);
            fb.copy_to(acc, a);
        });
        fb.ret(acc);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        mb.finish()
    }

    #[test]
    fn run_on_every_design_point() {
        let module = sum_module(20);
        for m in presets::all_design_points() {
            let core = SoftCore::design_point(&m.name).unwrap();
            let exec = core.run(&module).unwrap();
            assert_eq!(exec.ret, 190, "{}", m.name);
            assert!(exec.cycles > 0);
            assert!(core.runtime_us(&exec) > 0.0);
        }
    }

    #[test]
    fn invalid_machines_are_rejected() {
        let mut m = presets::m_tta_1();
        m.buses.clear();
        assert!(SoftCore::new(m).is_err());
    }

    #[test]
    fn unknown_design_point_is_none() {
        assert!(SoftCore::design_point("m-tta-9").is_none());
    }

    #[test]
    fn execution_exposes_program_metrics() {
        let module = sum_module(5);
        let core = SoftCore::design_point("bm-tta-2").unwrap();
        let exec = core.run(&module).unwrap();
        assert!(!exec.compiled.program.is_empty());
        assert_eq!(
            exec.compiled.program.image_bits(core.machine()),
            exec.compiled.program.len() as u64 * core.instruction_bits() as u64
        );
    }
}
