//! End-to-end shrinker self-test (the ISSUE acceptance check): plant a
//! deliberate semantics bug behind the oracle's test-only hook, fuzz until
//! a generated program trips it, and verify the shrinker minimises the
//! repro to at most 10 IR instructions that still diverge.

use tta_fuzz::gen::{generate, GenConfig};
use tta_fuzz::oracle::{Oracle, PlantedBug};
use tta_fuzz::shrink::{inst_count, shrink};
use tta_ir::Module;

/// Fuzz seeds until the planted bug diverges, then shrink and check.
fn plant_detect_minimise(bug: PlantedBug, seed_budget: u64) {
    let oracle = Oracle {
        planted: Some(bug),
        ..Oracle::all_presets()
    };
    let cfg = GenConfig::default();
    let reproduces = |m: &Module| matches!(oracle.check(m), Err(d) if d.is_semantic());

    let mut found = None;
    for seed in 0..seed_budget {
        let module = generate(seed, &cfg);
        if reproduces(&module) {
            found = Some((seed, module));
            break;
        }
    }
    let (seed, module) = found.unwrap_or_else(|| {
        panic!(
            "planted bug {} not detected in {seed_budget} seeds",
            bug.name()
        )
    });

    let small = shrink(&module, &reproduces);
    assert!(
        reproduces(&small),
        "seed {seed}: shrunk module lost the divergence"
    );
    assert!(
        tta_ir::verify_module(&small).is_ok(),
        "seed {seed}: shrunk module does not verify"
    );
    assert!(
        inst_count(&small) <= 10,
        "seed {seed}: planted bug {} shrunk to {} insts (> 10):\n{}",
        bug.name(),
        inst_count(&small),
        tta_ir::module_to_text(&small)
    );
}

#[test]
fn planted_sub_swap_is_detected_and_minimised() {
    plant_detect_minimise(PlantedBug::SubSwapped, 64);
}

#[test]
fn planted_sxqw_widening_is_detected_and_minimised() {
    plant_detect_minimise(PlantedBug::SxqwAsSxhw, 64);
}

#[test]
fn planted_shr_logical_is_detected_and_minimised() {
    plant_detect_minimise(PlantedBug::ShrAsShru, 64);
}
