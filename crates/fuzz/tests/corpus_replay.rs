//! Replay every committed corpus case forever.
//!
//! Each `crates/fuzz/corpus/*.ir` file is a minimised repro written by the
//! fuzzer — for reactive cases together with its minimised interrupt
//! schedule and UART script (the `; irq:` / `; uart-rx:` headers). Two
//! guarantees are pinned here:
//!
//! 1. the clean toolchain passes every case on all 13 design points
//!    (historical divergences stay fixed), and
//! 2. cases tagged with a planted bug still make the oracle report a
//!    semantic divergence when that bug is armed (the detection pipeline
//!    itself stays alive) — including the spec-mutating bug classes,
//!    which need the case's own schedule to bite.

use tta_fuzz::oracle::Oracle;
use tta_fuzz::{inst_count, load_corpus};

#[test]
fn corpus_has_at_least_three_minimised_cases() {
    let cases = load_corpus().expect("corpus must load");
    assert!(cases.len() >= 3, "expected >= 3 cases, got {}", cases.len());
    for c in &cases {
        // Planted-bug repros shrink all the way down; real-divergence
        // keepsakes (no planted tag) may keep load-bearing structure the
        // shrinker proved necessary — seed 2604's mid-block trap needs
        // its jump-delay chains around the interrupted block.
        let cap = if c.planted.is_some() { 10 } else { 20 };
        assert!(
            inst_count(&c.module) <= cap,
            "corpus case {} is not minimised: {} insts",
            c.name,
            inst_count(&c.module)
        );
        assert!(
            c.seed.is_some(),
            "corpus case {} lacks a seed header",
            c.name
        );
    }
}

#[test]
fn corpus_has_at_least_three_minimised_reactive_cases() {
    let cases = load_corpus().expect("corpus must load");
    let reactive: Vec<_> = cases.iter().filter(|c| !c.spec.is_empty()).collect();
    assert!(
        reactive.len() >= 3,
        "expected >= 3 reactive cases, got {}",
        reactive.len()
    );
    for c in &reactive {
        assert!(
            c.spec.schedule.len() <= 2 && c.spec.uart_rx.len() <= 2,
            "corpus case {} schedule is not minimised: {:?}",
            c.name,
            c.spec
        );
        assert!(
            c.module.funcs.iter().any(|f| f.name == "__irq"),
            "reactive corpus case {} lost its handler",
            c.name
        );
    }
}

#[test]
fn corpus_replay_clean_toolchain_passes_every_case() {
    let cases = load_corpus().expect("corpus must load");
    let oracle = Oracle::all_presets();
    for c in &cases {
        let report = oracle
            .check_reactive(&c.module, &c.spec)
            .unwrap_or_else(|d| panic!("corpus case {} regressed: {d}", c.name));
        assert_eq!(
            report.runs.len(),
            13,
            "case {} must hit all 13 machines",
            c.name
        );
    }
}

#[test]
fn corpus_replay_planted_bugs_are_still_detected() {
    let cases = load_corpus().expect("corpus must load");
    for c in &cases {
        let Some(bug) = c.planted else { continue };
        let oracle = Oracle {
            planted: Some(bug),
            ..Oracle::all_presets()
        };
        let d = oracle
            .check_reactive(&c.module, &c.spec)
            .expect_err(&format!(
                "corpus case {} no longer reproduces planted bug {}",
                c.name,
                bug.name()
            ));
        assert!(
            d.is_semantic(),
            "case {} produced a non-semantic divergence: {d}",
            c.name
        );
    }
}

#[test]
fn corpus_covers_every_planted_bug_class() {
    use tta_fuzz::oracle::PlantedBug;
    let cases = load_corpus().expect("corpus must load");
    for bug in PlantedBug::ALL {
        assert!(
            cases.iter().any(|c| c.planted == Some(bug)),
            "no corpus case pins planted bug {}",
            bug.name()
        );
    }
}
