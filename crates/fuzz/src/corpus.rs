//! The regression corpus: minimised repro cases stored as textual IR.
//!
//! Every divergence the fuzzer finds is shrunk and written to
//! `crates/fuzz/corpus/<name>.ir`. A case is the module text (see
//! [`tta_ir::text`]) preceded by `; key: value` header comments:
//!
//! ```text
//! ; seed: 42
//! ; planted: shr-as-shru
//! ; note: arithmetic shift of negative value
//! ; irq: mmio-store 2 line 2
//! ; uart-rx: 0 97
//! module ...
//! ```
//!
//! `seed` records the generator seed that produced the original program,
//! `planted` (optional) names the deliberate bug the case reproduces —
//! set for the synthetic cases that pin the detection pipeline itself —
//! and `note` is free text. Reactive cases additionally serialise their
//! [`tta_model::io::IoSpec`]: one `irq` line per scheduled arrival
//! (`mmio-store K` or `cycle C` key plus the interrupt line) and one
//! `uart-rx` line per scripted receive byte (arrival cycle, byte value);
//! `uart-irq-on-rx` arms the UART's own receive interrupt. Cases without
//! `planted` are real historical divergences: replay asserts they stay
//! fixed; cases with `planted` assert the oracle still catches that bug
//! class.

use std::io;
use std::path::{Path, PathBuf};

use crate::oracle::PlantedBug;
use tta_ir::Module;
use tta_model::io::{IoSpec, IrqAt};

/// One corpus entry, parsed from disk.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// File stem, e.g. `0001-shr-as-shru`.
    pub name: String,
    /// Generator seed the original program came from, if recorded.
    pub seed: Option<u64>,
    /// Planted bug this case reproduces (synthetic pipeline tests), or
    /// `None` for a real historical divergence.
    pub planted: Option<PlantedBug>,
    /// Free-text description.
    pub note: Option<String>,
    /// The scripted I/O environment (empty for pure compute cases).
    pub spec: IoSpec,
    /// The minimised module.
    pub module: Module,
}

/// The on-disk corpus directory (compile-time anchored to this crate, so
/// tests find it regardless of the working directory).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parse one `; irq: <key> line <n>` header value, e.g. `mmio-store 2
/// line 2` or `cycle 40 line 0`.
fn parse_irq(name: &str, value: &str) -> Result<(IrqAt, u8), String> {
    let parts: Vec<&str> = value.split_whitespace().collect();
    let bad = || format!("{name}: bad irq header {value:?}");
    let [kind, key, lit, line] = parts.as_slice() else {
        return Err(bad());
    };
    if *lit != "line" {
        return Err(bad());
    }
    let key: u64 = key.parse().map_err(|_| bad())?;
    let line: u8 = line.parse().map_err(|_| bad())?;
    let at = match *kind {
        "mmio-store" => IrqAt::MmioStore(key),
        "cycle" => IrqAt::Cycle(key),
        _ => return Err(bad()),
    };
    Ok((at, line))
}

/// Parse one corpus file's contents.
pub fn parse_case(name: &str, text: &str) -> Result<CorpusCase, String> {
    let mut seed = None;
    let mut planted = None;
    let mut note = None;
    let mut spec = IoSpec::default();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix(';') else {
            // Headers only appear before the module text.
            if !line.is_empty() {
                break;
            }
            continue;
        };
        if let Some((key, value)) = rest.split_once(':') {
            let value = value.trim();
            match key.trim() {
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("{name}: bad seed {value:?}: {e}"))?,
                    )
                }
                "planted" => {
                    planted = Some(
                        PlantedBug::from_name(value)
                            .ok_or_else(|| format!("{name}: unknown planted bug {value:?}"))?,
                    )
                }
                "note" => note = Some(value.to_string()),
                "irq" => spec.schedule.push(parse_irq(name, value)?),
                "uart-rx" => {
                    let bad = || format!("{name}: bad uart-rx header {value:?}");
                    let (cycle, byte) = value.split_once(' ').ok_or_else(bad)?;
                    let cycle: u64 = cycle.trim().parse().map_err(|_| bad())?;
                    let byte: u8 = byte.trim().parse().map_err(|_| bad())?;
                    spec.uart_rx.push((cycle, byte));
                }
                "uart-irq-on-rx" => {
                    spec.uart_irq_on_rx = value
                        .parse::<bool>()
                        .map_err(|e| format!("{name}: bad uart-irq-on-rx {value:?}: {e}"))?;
                }
                _ => {}
            }
        }
    }
    let module =
        tta_ir::parse_module(text).map_err(|e| format!("{name}: line {}: {}", e.line, e.msg))?;
    Ok(CorpusCase {
        name: name.to_string(),
        seed,
        planted,
        note,
        spec,
        module,
    })
}

/// Load every `*.ir` case from [`corpus_dir`], sorted by file name.
/// Malformed cases are hard errors — a corpus that does not parse is a
/// broken regression suite.
pub fn load_corpus() -> io::Result<Vec<CorpusCase>> {
    load_corpus_from(&corpus_dir())
}

/// [`load_corpus`] from an explicit directory.
pub fn load_corpus_from(dir: &Path) -> io::Result<Vec<CorpusCase>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for p in paths {
        let name = p
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        let text = std::fs::read_to_string(&p)?;
        let case =
            parse_case(&name, &text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        cases.push(case);
    }
    Ok(cases)
}

/// Render a case back to its on-disk form.
pub fn render_case(
    seed: u64,
    planted: Option<PlantedBug>,
    note: &str,
    spec: &IoSpec,
    module: &Module,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("; seed: {seed}\n"));
    if let Some(bug) = planted {
        out.push_str(&format!("; planted: {}\n", bug.name()));
    }
    if !note.is_empty() {
        out.push_str(&format!("; note: {note}\n"));
    }
    for &(at, line) in &spec.schedule {
        let key = match at {
            IrqAt::MmioStore(k) => format!("mmio-store {k}"),
            IrqAt::Cycle(c) => format!("cycle {c}"),
        };
        out.push_str(&format!("; irq: {key} line {line}\n"));
    }
    for &(cycle, byte) in &spec.uart_rx {
        out.push_str(&format!("; uart-rx: {cycle} {byte}\n"));
    }
    if spec.uart_irq_on_rx {
        out.push_str("; uart-irq-on-rx: true\n");
    }
    out.push_str(&tta_ir::module_to_text(module));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_headers_round_trip() {
        let m = crate::gen::generate(3, &crate::gen::GenConfig::default());
        let spec = IoSpec::default();
        let text = render_case(
            3,
            Some(PlantedBug::SubSwapped),
            "swapped operands",
            &spec,
            &m,
        );
        let case = parse_case("0003-test", &text).unwrap();
        assert_eq!(case.seed, Some(3));
        assert_eq!(case.planted, Some(PlantedBug::SubSwapped));
        assert_eq!(case.note.as_deref(), Some("swapped operands"));
        assert!(case.spec.is_empty());
        assert_eq!(
            tta_ir::module_to_text(&case.module),
            tta_ir::module_to_text(&m)
        );
    }

    #[test]
    fn reactive_case_headers_round_trip() {
        let (m, spec) = crate::gen::generate_reactive(7, &crate::gen::GenConfig::default());
        assert!(!spec.is_empty(), "reactive cases must script I/O");
        let text = render_case(7, Some(PlantedBug::IrqShiftKey), "late latch", &spec, &m);
        let case = parse_case("0007-test", &text).unwrap();
        assert_eq!(case.seed, Some(7));
        assert_eq!(case.planted, Some(PlantedBug::IrqShiftKey));
        assert_eq!(case.spec, spec);
        assert_eq!(
            tta_ir::module_to_text(&case.module),
            tta_ir::module_to_text(&m)
        );
    }

    #[test]
    fn cycle_keyed_irq_headers_round_trip() {
        let m = crate::gen::generate(3, &crate::gen::GenConfig::default());
        let spec = IoSpec {
            schedule: vec![(IrqAt::Cycle(40), 0), (IrqAt::MmioStore(2), 2)],
            uart_rx: vec![(0, 97), (5, 200)],
            uart_irq_on_rx: true,
        };
        let text = render_case(3, None, "", &spec, &m);
        let case = parse_case("0003-io", &text).unwrap();
        assert_eq!(case.spec, spec);
    }

    #[test]
    fn committed_corpus_parses() {
        let cases = load_corpus().expect("corpus dir must exist and parse");
        assert!(cases.len() >= 3, "corpus must hold >= 3 cases");
        for c in &cases {
            assert!(
                tta_ir::verify_module(&c.module).is_ok(),
                "corpus case {} does not verify",
                c.name
            );
        }
    }
}
