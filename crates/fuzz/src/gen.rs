//! Seeded random IR program generator.
//!
//! [`generate`] maps a `u64` seed to a verified, terminating
//! [`Module`] covering the full Table-I instruction surface:
//!
//! * arithmetic with edge constants (signed overflow at `i32::MIN`/`MAX`,
//!   shift amounts at and beyond 31, sign-extension boundary patterns);
//! * loads and stores of all three widths at mixed alignments, through both
//!   static and data-dependent (masked, always in-bounds) addresses;
//! * calls into generated leaf functions (inliner stress);
//! * `if`/`else` diamonds and loops with fixed *and* data-dependent trip
//!   counts, nested up to a configured depth;
//! * constant shapes chosen to stress the compiler's legalisation split
//!   between short bus immediates and long-immediate transports.
//!
//! Programs are correct by construction: every generated module passes
//! `tta_ir::verify` (the builder discipline guarantees definite
//! assignment), every memory access is aligned and in bounds (dynamic
//! addresses are masked into their buffer), and every loop has a bounded
//! trip count, so the reference interpreter always terminates. A generator
//! bug that breaks one of these invariants is reported by the oracle as a
//! distinct non-semantic outcome rather than as a divergence.

use tta_ir::builder::{Buffer, FunctionBuilder, ModuleBuilder};
use tta_ir::{FuncId, MemRegion, Module, Operand, VReg};
use tta_model::io::{
    IoSpec, IrqAt, IRQ_CTRL_ADDR, IRQ_HANDLER_NAME, SOFT_LINE, UART_RX_ADDR, UART_TX_ADDR,
};
use tta_model::Opcode;
use tta_testutil::Rng;

/// Tunables for [`generate`]. The defaults match what the fuzz binary and
/// the CI job run.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Top-level statement budget for `main`.
    pub max_stmts: usize,
    /// Maximum `if`/loop nesting depth.
    pub max_depth: u32,
    /// Maximum number of generated leaf functions (0 disables calls).
    pub max_leaf_funcs: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_stmts: 12,
            max_depth: 2,
            max_leaf_funcs: 2,
        }
    }
}

/// Constants that exercise arithmetic edge cases and both sides of the
/// compiler's short-immediate/long-immediate legalisation split
/// (`PRESET_SIMM_BITS` is 6, so anything outside `-32..=31` needs a long
/// immediate).
const EDGE_CONSTS: [i32; 20] = [
    0,
    1,
    -1,
    2,
    -2,
    31,
    32,
    33,
    63,
    -31,
    i32::MIN,
    i32::MIN + 1,
    i32::MAX,
    0x7fff,
    0x8000,
    -0x8000,
    0xffff,
    0x0001_0000,
    0x55aa_55aa_u32 as i32,
    0x00ff_00ff,
];

/// Shift amounts biased towards the masking boundary (`b & 31`).
const SHIFT_AMOUNTS: [i32; 8] = [0, 1, 4, 31, 32, 33, 63, -1];

/// The two-input ALU opcodes.
const BIN_OPS: [Opcode; 12] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Ior,
    Opcode::Xor,
    Opcode::Mul,
    Opcode::Eq,
    Opcode::Gt,
    Opcode::Gtu,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Shru,
];

/// Loads and stores by width: `(load, zero-extending load, store, width)`;
/// the 32-bit row reuses `Ldw` in the second slot.
const MEM_OPS: [(Opcode, Opcode, Opcode, u32); 3] = [
    (Opcode::Ldw, Opcode::Ldw, Opcode::Stw, 4),
    (Opcode::Ldh, Opcode::Ldhu, Opcode::Sth, 2),
    (Opcode::Ldq, Opcode::Ldqu, Opcode::Stq, 1),
];

/// A generated leaf function: its id and parameter count.
struct Leaf {
    id: FuncId,
    nparams: usize,
}

struct Ctx<'a> {
    rng: &'a mut Rng,
    /// Buffer with random initial data.
    data: Buffer,
    /// Zero-initialised scratch buffer.
    scratch: Buffer,
    leaves: Vec<Leaf>,
}

impl Ctx<'_> {
    /// Draw a constant with a fuzzer-interesting shape.
    fn constant(&mut self) -> i32 {
        match self.rng.below(4) {
            0 => EDGE_CONSTS[self.rng.below(EDGE_CONSTS.len())],
            1 => self.rng.next_i32(),
            // Small constants that fit the 6-bit bus immediates.
            2 => self.rng.range(0, 64) as i32 - 32,
            // 16-bit-ish constants around the scalar imm-prefix boundary.
            _ => (self.rng.next_u32() & 0x1_ffff) as i32 - 0x8000,
        }
    }

    /// Pick a value from the pool (by random index, modulo its length).
    fn pick(&mut self, vals: &[VReg]) -> VReg {
        vals[self.rng.below(vals.len())]
    }

    /// A register or an immediate operand.
    fn operand(&mut self, vals: &[VReg]) -> Operand {
        if self.rng.chance(3, 4) {
            Operand::Reg(self.pick(vals))
        } else {
            Operand::Imm(self.constant())
        }
    }

    /// One of the two data buffers, plus its alias region (occasionally the
    /// conservative ANY region, which constrains the scheduler harder).
    fn buffer(&mut self) -> (Buffer, MemRegion) {
        let buf = if self.rng.next_bool() {
            self.data
        } else {
            self.scratch
        };
        let region = if self.rng.chance(1, 4) {
            MemRegion::ANY
        } else {
            buf.region
        };
        (buf, region)
    }

    /// A static in-bounds address aligned to `width` — deliberately
    /// including sub-word offsets that are *not* word aligned.
    fn static_addr(&mut self, buf: Buffer, width: u32) -> Operand {
        let slots = buf.size / width;
        let off = self.rng.below(slots as usize) as u32 * width;
        Operand::Imm((buf.addr + off) as i32)
    }

    /// Emit `base + (v & mask)`: a data-dependent address that is always
    /// in bounds and aligned for `width` (buffer sizes are powers of two).
    fn dynamic_addr(
        &mut self,
        fb: &mut FunctionBuilder,
        buf: Buffer,
        width: u32,
        vals: &[VReg],
    ) -> VReg {
        debug_assert!(buf.size.is_power_of_two());
        let mask = ((buf.size - 1) & !(width - 1)) as i32;
        let v = self.pick(vals);
        let masked = fb.and(v, mask);
        fb.add(masked, buf.base() as Operand)
    }
}

/// Emit one statement; pushes any produced value onto `vals`.
fn stmt(ctx: &mut Ctx, fb: &mut FunctionBuilder, vals: &mut Vec<VReg>, depth: u32) {
    // At positive depth, one draw in three picks a branching construct.
    if depth > 0 && ctx.rng.chance(1, 3) {
        match ctx.rng.below(3) {
            0 => if_else(ctx, fb, vals, depth - 1),
            1 => fixed_loop(ctx, fb, vals, depth - 1),
            _ => dynamic_loop(ctx, fb, vals, depth - 1),
        }
        return;
    }
    match ctx.rng.below(8) {
        0 | 1 => {
            // Two-input ALU op; shifts get edge-biased amounts.
            let op = BIN_OPS[ctx.rng.below(BIN_OPS.len())];
            let a = ctx.operand(vals);
            let b =
                if matches!(op, Opcode::Shl | Opcode::Shr | Opcode::Shru) && ctx.rng.chance(2, 3) {
                    Operand::Imm(SHIFT_AMOUNTS[ctx.rng.below(SHIFT_AMOUNTS.len())])
                } else {
                    ctx.operand(vals)
                };
            vals.push(fb.bin(op, a, b));
        }
        2 => {
            let op = if ctx.rng.next_bool() {
                Opcode::Sxhw
            } else {
                Opcode::Sxqw
            };
            let a = ctx.operand(vals);
            vals.push(fb.un(op, a));
        }
        3 => {
            let c = ctx.constant();
            vals.push(fb.copy(c));
        }
        4 => {
            // Load: static or data-dependent address, any width/extension.
            let (buf, region) = ctx.buffer();
            let (ld, ldu, _, width) = MEM_OPS[ctx.rng.below(MEM_OPS.len())];
            let op = if ctx.rng.next_bool() { ld } else { ldu };
            let addr: Operand = if ctx.rng.next_bool() {
                ctx.static_addr(buf, width)
            } else {
                Operand::Reg(ctx.dynamic_addr(fb, buf, width, vals))
            };
            vals.push(fb.load(op, addr, region));
        }
        5 => {
            // Store, same address split.
            let (buf, region) = ctx.buffer();
            let (_, _, st, width) = MEM_OPS[ctx.rng.below(MEM_OPS.len())];
            let value = ctx.operand(vals);
            let addr: Operand = if ctx.rng.next_bool() {
                ctx.static_addr(buf, width)
            } else {
                Operand::Reg(ctx.dynamic_addr(fb, buf, width, vals))
            };
            fb.store(st, value, addr, region);
        }
        6 if !ctx.leaves.is_empty() => {
            let li = ctx.rng.below(ctx.leaves.len());
            let (id, nparams) = (ctx.leaves[li].id, ctx.leaves[li].nparams);
            let args: Vec<Operand> = (0..nparams).map(|_| ctx.operand(vals)).collect();
            vals.push(fb.call(id, &args));
        }
        _ => {
            // Dependence chain: two ops feeding each other (bypass stress).
            let a = ctx.pick(vals);
            let t = fb.add(a, ctx.constant());
            vals.push(fb.xor(t, a));
        }
    }
}

/// Emit `lo..=hi` statements.
fn stmts(
    ctx: &mut Ctx,
    fb: &mut FunctionBuilder,
    vals: &mut Vec<VReg>,
    depth: u32,
    lo: usize,
    hi: usize,
) {
    let n = ctx.rng.range(lo, hi + 1);
    for _ in 0..n {
        stmt(ctx, fb, vals, depth);
    }
}

/// An `if`/`else` diamond merging one value through a pre-allocated vreg.
fn if_else(ctx: &mut Ctx, fb: &mut FunctionBuilder, vals: &mut Vec<VReg>, depth: u32) {
    let cond = ctx.pick(vals);
    let res = fb.vreg();
    let tb = fb.new_block();
    let eb = fb.new_block();
    let merge = fb.new_block();
    fb.branch(cond, tb, eb);

    let n_before = vals.len();
    fb.switch_to(tb);
    stmts(ctx, fb, vals, depth, 1, 3);
    let tv = ctx.pick(vals);
    fb.copy_to(res, tv);
    fb.jump(merge);
    vals.truncate(n_before); // arm-local values are not definitely assigned

    fb.switch_to(eb);
    stmts(ctx, fb, vals, depth, 1, 3);
    let ev = ctx.pick(vals);
    fb.copy_to(res, ev);
    fb.jump(merge);
    vals.truncate(n_before);

    fb.switch_to(merge);
    vals.push(res);
}

/// A counted loop with a fixed trip count, accumulating the body value.
fn fixed_loop(ctx: &mut Ctx, fb: &mut FunctionBuilder, vals: &mut Vec<VReg>, depth: u32) {
    let trip = ctx.rng.range(1, 5) as i32;
    emit_loop(ctx, fb, vals, depth, Operand::Imm(trip));
}

/// A loop whose trip count depends on runtime data: `n = v & 7`.
fn dynamic_loop(ctx: &mut Ctx, fb: &mut FunctionBuilder, vals: &mut Vec<VReg>, depth: u32) {
    let v = ctx.pick(vals);
    let n = fb.and(v, 7);
    emit_loop(ctx, fb, vals, depth, Operand::Reg(n));
}

fn emit_loop(
    ctx: &mut Ctx,
    fb: &mut FunctionBuilder,
    vals: &mut Vec<VReg>,
    depth: u32,
    trip: Operand,
) {
    let i = fb.copy(0);
    let acc = fb.copy(1);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, trip);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let n_before = vals.len();
    vals.push(i);
    vals.push(acc);
    stmts(ctx, fb, vals, depth, 1, 3);
    let bv = ctx.pick(vals);
    let acc2 = fb.add(acc, bv);
    fb.copy_to(acc, acc2);
    vals.truncate(n_before);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    // i and acc are assigned before the loop, so both survive the exit.
    vals.push(acc);
}

/// Build one leaf function: a few ALU/memory ops over its parameters.
fn leaf_function(ctx: &mut Ctx, name: String, nparams: usize) -> tta_ir::Function {
    let mut fb = FunctionBuilder::new(name, nparams as u32, true);
    let mut vals: Vec<VReg> = (0..nparams).map(|i| fb.param(i)).collect();
    let n = ctx.rng.range(2, 7);
    for _ in 0..n {
        match ctx.rng.below(4) {
            0 => {
                let op = BIN_OPS[ctx.rng.below(BIN_OPS.len())];
                let a = ctx.operand(&vals);
                let b = ctx.operand(&vals);
                vals.push(fb.bin(op, a, b));
            }
            1 => {
                let a = ctx.operand(&vals);
                vals.push(fb.sxhw(a));
            }
            2 => {
                let (buf, region) = ctx.buffer();
                let addr = ctx.static_addr(buf, 4);
                vals.push(fb.ldw(addr, region));
            }
            _ => {
                let (buf, region) = ctx.buffer();
                let value = ctx.operand(&vals);
                let addr = ctx.static_addr(buf, 4);
                fb.stw(value, addr, region);
            }
        }
    }
    let r = ctx.pick(&vals);
    fb.ret(r);
    fb.finish()
}

/// Generate the module for `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> Module {
    let _span = tta_obs::span("fuzz_generate");
    tta_obs::counter::add("fuzz.generated", 1);
    let mut rng = Rng::new(seed);
    let mut mb = ModuleBuilder::new(format!("fuzz_{seed}"));
    let init: Vec<u8> = rng.vec(64, |r| r.next_u32() as u8);
    let data = mb.data(&init);
    let scratch = mb.buffer(64);

    let mut ctx = Ctx {
        rng: &mut rng,
        data,
        scratch,
        leaves: Vec::new(),
    };

    // Leaf functions first, so main can call them.
    let n_leaves = ctx.rng.below(cfg.max_leaf_funcs + 1);
    for li in 0..n_leaves {
        let nparams = ctx.rng.range(1, 4);
        let f = leaf_function(&mut ctx, format!("leaf{li}"), nparams);
        let id = mb.add(f);
        ctx.leaves.push(Leaf { id, nparams });
    }

    let mut fb = FunctionBuilder::new("main", 0, true);
    // Seed the value pool with shaped constants so the first statements
    // have material to work with.
    let mut vals = Vec::new();
    for _ in 0..3 {
        let c = ctx.constant();
        vals.push(fb.copy(c));
    }
    let budget = ctx.rng.range(cfg.max_stmts / 2 + 1, cfg.max_stmts + 1);
    for _ in 0..budget {
        stmt(&mut ctx, &mut fb, &mut vals, cfg.max_depth);
    }

    // Fold the tail of the value pool into the return value so dead-code
    // elimination cannot erase the interesting work, and pin one copy of
    // the result into memory.
    let mut acc = *vals.last().expect("pool is never empty");
    let tail: Vec<VReg> = vals.iter().rev().take(6).copied().collect();
    for v in tail {
        acc = fb.xor(acc, v);
    }
    fb.stw(acc, scratch.word(0), scratch.region);
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

/// Opcodes for the handler's seeded accumulate step (no shifts: the
/// handler must stay sensitive to *which* byte it popped, and a shift by
/// a large rx value would mask everything to zero).
const IRQ_ACC_OPS: [Opcode; 4] = [Opcode::Add, Opcode::Xor, Opcode::Sub, Opcode::Ior];

/// Generate a reactive case for `seed`: a module with a `__irq` handler
/// plus the [`IoSpec`] it runs against.
///
/// The guest's `main` is a normal generated program with two additions:
/// it enables interrupts first thing, and it transmits sentinel bytes
/// over the UART between top-level statements (always at the top level,
/// so the MMIO-store count of the main path is static). The handler pops
/// one UART rx byte, folds it into an accumulator buffer with a seeded
/// ALU op, and echoes a byte back; `main` folds the accumulator into its
/// return value, so delivery points are visible in the return value, the
/// memory image *and* the tx stream.
///
/// Interrupt arrivals are keyed on MMIO-store counts ([`IrqAt::MmioStore`])
/// and rx bytes arrive at cycle 0 — the style-invariant choices, so the
/// golden interpreter is an exact oracle for every design point (see the
/// `tta_model::io` docs for why cycle keys are not).
pub fn generate_reactive(seed: u64, cfg: &GenConfig) -> (Module, IoSpec) {
    let _span = tta_obs::span("fuzz_generate");
    tta_obs::counter::add("fuzz.generated", 1);
    let mut rng = Rng::new(seed);
    let mut mb = ModuleBuilder::new(format!("fuzz_irq_{seed}"));
    let init: Vec<u8> = rng.vec(64, |r| r.next_u32() as u8);
    let data = mb.data(&init);
    let scratch = mb.buffer(64);
    let ibuf = mb.buffer(8);

    let mut ctx = Ctx {
        rng: &mut rng,
        data,
        scratch,
        leaves: Vec::new(),
    };

    let n_leaves = ctx.rng.below(cfg.max_leaf_funcs + 1);
    for li in 0..n_leaves {
        let nparams = ctx.rng.range(1, 4);
        let f = leaf_function(&mut ctx, format!("leaf{li}"), nparams);
        let id = mb.add(f);
        ctx.leaves.push(Leaf { id, nparams });
    }

    // The interrupt handler: pop rx, fold it into the accumulator at
    // ibuf[0] with a seeded op, echo a byte.
    let mut hb = FunctionBuilder::new(IRQ_HANDLER_NAME, 0, false);
    let rx = hb.ldw(UART_RX_ADDR as i32, MemRegion::ANY);
    let acc = hb.ldw(ibuf.word(0), ibuf.region);
    let op = IRQ_ACC_OPS[ctx.rng.below(IRQ_ACC_OPS.len())];
    let mixed = hb.bin(op, Operand::Reg(acc), Operand::Reg(rx));
    hb.stw(mixed, ibuf.word(0), ibuf.region);
    let echo = if ctx.rng.next_bool() { rx } else { mixed };
    hb.stw(echo, UART_TX_ADDR as i32, MemRegion::ANY);
    hb.ret_void();
    mb.add(hb.finish());

    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    let mut main_stores = 1u64; // the IE enable above
    let mut vals = Vec::new();
    for _ in 0..3 {
        let c = ctx.constant();
        vals.push(fb.copy(c));
    }
    let budget = ctx.rng.range(cfg.max_stmts / 2 + 1, cfg.max_stmts + 1);
    for s in 0..budget {
        stmt(&mut ctx, &mut fb, &mut vals, cfg.max_depth);
        if ctx.rng.chance(1, 2) {
            fb.stw(0x40 + s as i32, UART_TX_ADDR as i32, MemRegion::ANY);
            main_stores += 1;
        }
    }
    // Pad to at least three main-path MMIO stores, so a schedule key can
    // always land strictly before the last one. A key on the *final*
    // store may coincide with halt: the fused styles retire the store and
    // the return in one cycle and drop the pending interrupt, while the
    // instruction-granular interpreter still delivers it — deterministic
    // on every engine, but not style-invariant, so (like cycle keys) the
    // differential oracle never schedules it.
    while main_stores < 3 {
        fb.stw(0x7e, UART_TX_ADDR as i32, MemRegion::ANY);
        main_stores += 1;
    }

    // Fold the handler's accumulator and the tail of the value pool into
    // the return value, and pin one copy into memory.
    let hits = fb.ldw(ibuf.word(0), ibuf.region);
    let mut out = *vals.last().expect("pool is never empty");
    let tail: Vec<VReg> = vals.iter().rev().take(6).copied().collect();
    for v in tail {
        out = fb.xor(out, v);
    }
    out = fb.xor(out, hits);
    fb.stw(out, scratch.word(0), scratch.region);
    fb.ret(out);
    let id = mb.add(fb.finish());
    mb.set_entry(id);

    // Seeded schedule: 1-3 arrivals keyed on the main path's MMIO-store
    // counts (key 1 is the IE store itself; 2.. land on markers), plus
    // 0-3 rx bytes available from the start. The upper bound excludes the
    // final store (halt-edge delivery, see above); handler echoes only
    // push the k-th store *earlier* in main's sequence, so every key is
    // still followed by at least one more MMIO store.
    let n_irqs = ctx.rng.range(1, 4);
    let mut keys: Vec<u64> = (0..n_irqs)
        .map(|_| ctx.rng.range(2, main_stores as usize) as u64)
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let schedule = keys
        .into_iter()
        .map(|k| (IrqAt::MmioStore(k), SOFT_LINE))
        .collect();
    let n_rx = ctx.rng.range(0, 4);
    let uart_rx = (0..n_rx)
        .map(|_| (0u64, ctx.rng.next_u32() as u8))
        .collect();
    let spec = IoSpec {
        schedule,
        uart_rx,
        uart_irq_on_rx: false,
    };
    (mb.finish(), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::Interpreter;

    #[test]
    fn generated_modules_verify_and_terminate() {
        let cfg = GenConfig::default();
        for seed in 0..64 {
            let m = generate(seed, &cfg);
            tta_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: verify failed: {e:?}"));
            assert_eq!(tta_ir::verify::find_recursion(&m), None, "seed {seed}");
            let r = Interpreter::new(&m)
                .with_fuel(50_000_000)
                .run(&[])
                .unwrap_or_else(|e| panic!("seed {seed}: interpreter failed: {e}"));
            assert!(r.ret.is_some(), "seed {seed}: entry must return a value");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0u64, 7, 123, 9999] {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn reactive_modules_verify_and_terminate_under_their_spec() {
        let cfg = GenConfig::default();
        let mut delivered = 0u64;
        for seed in 0..64 {
            let (m, spec) = generate_reactive(seed, &cfg);
            tta_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: verify failed: {e:?}"));
            assert!(!spec.schedule.is_empty(), "seed {seed}: empty schedule");
            assert!(
                spec.schedule
                    .iter()
                    .all(|&(at, _)| matches!(at, IrqAt::MmioStore(_))),
                "seed {seed}: cycle-keyed arrival in a differential spec"
            );
            let mut io = tta_model::io::IoSystem::new(&spec);
            let r = Interpreter::new(&m)
                .with_fuel(50_000_000)
                .run_with_io(&[], &mut io)
                .unwrap_or_else(|e| panic!("seed {seed}: interpreter failed: {e}"));
            assert!(r.ret.is_some(), "seed {seed}: entry must return a value");
            delivered += io.irqs_delivered;
        }
        assert!(delivered > 32, "interrupts barely ever fire: {delivered}");
    }

    #[test]
    fn reactive_generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0u64, 7, 123, 9999] {
            assert_eq!(generate_reactive(seed, &cfg), generate_reactive(seed, &cfg));
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_programs() {
        let cfg = GenConfig::default();
        let a = generate(1, &cfg);
        let b = generate(2, &cfg);
        assert_ne!(a.funcs, b.funcs);
    }

    #[test]
    fn surface_coverage_over_a_seed_range() {
        // Across a modest seed range the generator must exercise every
        // two-input ALU op, every load/store width, calls, branches and
        // both loop forms.
        use std::collections::BTreeSet;
        let cfg = GenConfig::default();
        let mut ops: BTreeSet<&'static str> = BTreeSet::new();
        let mut calls = 0usize;
        let mut branches = 0usize;
        for seed in 0..200 {
            let m = generate(seed, &cfg);
            for f in &m.funcs {
                for b in &f.blocks {
                    for i in &b.insts {
                        match i {
                            tta_ir::Inst::Bin { op, .. } | tta_ir::Inst::Un { op, .. } => {
                                ops.insert(op.mnemonic());
                            }
                            tta_ir::Inst::Load { op, .. } | tta_ir::Inst::Store { op, .. } => {
                                ops.insert(op.mnemonic());
                            }
                            tta_ir::Inst::Call { .. } => calls += 1,
                            tta_ir::Inst::Copy { .. } => {}
                        }
                    }
                    if matches!(b.term, Some(tta_ir::Terminator::Branch { .. })) {
                        branches += 1;
                    }
                }
            }
        }
        for op in BIN_OPS {
            assert!(ops.contains(op.mnemonic()), "missing {op}");
        }
        for op in [
            Opcode::Sxhw,
            Opcode::Sxqw,
            Opcode::Ldw,
            Opcode::Ldh,
            Opcode::Ldhu,
            Opcode::Ldq,
            Opcode::Ldqu,
            Opcode::Stw,
            Opcode::Sth,
            Opcode::Stq,
        ] {
            assert!(ops.contains(op.mnemonic()), "missing {op}");
        }
        assert!(calls > 0, "no calls generated");
        assert!(branches > 0, "no branches generated");
    }
}
