//! Differential fuzzer driver.
//!
//! ```text
//! fuzz --seeds 0..500                  # fuzz a seed range over all 13 design points
//! fuzz --seeds 0..500 --schedules      # reactive cases: interrupt schedules + UART scripts
//! fuzz --seeds 0..20 --plant-bug shr-as-shru --write-corpus
//! fuzz --replay                        # re-check every committed corpus case
//! ```
//!
//! Every generated program runs through the golden interpreter and
//! compile+simulate on every preset machine. With `--schedules` each seed
//! generates a reactive case instead: a guest with a `__irq` handler plus
//! a seeded interrupt schedule and UART receive script, checked
//! differentially (return value, memory, UART tx stream, interrupt
//! count). Any semantic divergence is printed with its seed, auto-shrunk
//! to a minimal module (and minimal schedule), and (with
//! `--write-corpus`) committed to `crates/fuzz/corpus/` for permanent
//! replay. Exit code is non-zero iff a divergence was found.

use std::process::ExitCode;
use std::time::Instant;

use tta_fuzz::corpus::{corpus_dir, load_corpus, render_case};
use tta_fuzz::gen::{generate, generate_reactive, GenConfig};
use tta_fuzz::oracle::{Divergence, Oracle, PlantedBug};
use tta_fuzz::shrink::{inst_count, shrink_reactive};
use tta_model::io::IoSpec;

struct Args {
    seeds: Option<(u64, u64)>,
    replay: bool,
    plant: Option<PlantedBug>,
    machine: Option<String>,
    write_corpus: bool,
    max_stmts: Option<usize>,
    schedules: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz --seeds A..B [--schedules] [--plant-bug NAME] [--machine NAME] \
         [--write-corpus] [--max-stmts N]\n       fuzz --replay\n\
         planted bugs: {}",
        PlantedBug::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: None,
        replay: false,
        plant: None,
        machine: None,
        write_corpus: false,
        max_stmts: None,
        schedules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let Some((lo, hi)) = spec.split_once("..") else {
                    usage()
                };
                let (Ok(lo), Ok(hi)) = (lo.parse(), hi.parse()) else {
                    usage()
                };
                args.seeds = Some((lo, hi));
            }
            "--replay" => args.replay = true,
            "--plant-bug" => {
                let name = it.next().unwrap_or_else(|| usage());
                match PlantedBug::from_name(&name) {
                    Some(b) => args.plant = Some(b),
                    None => usage(),
                }
            }
            "--machine" => args.machine = Some(it.next().unwrap_or_else(|| usage())),
            "--write-corpus" => args.write_corpus = true,
            "--schedules" => args.schedules = true,
            "--max-stmts" => {
                args.max_stmts = it.next().and_then(|s| s.parse().ok()).or_else(|| usage())
            }
            _ => usage(),
        }
    }
    if args.seeds.is_none() && !args.replay {
        usage();
    }
    args
}

fn make_oracle(args: &Args) -> Oracle {
    let mut oracle = match &args.machine {
        Some(name) => Oracle::single(name).unwrap_or_else(|| {
            eprintln!("unknown machine {name:?}");
            std::process::exit(2);
        }),
        None => Oracle::all_presets(),
    };
    oracle.planted = args.plant;
    oracle
}

/// Shrink a diverging case: fast passes against the one machine that
/// diverged, then confirm the reduced case still diverges on the full
/// oracle (falling back to full-oracle shrinking if it does not). The
/// I/O spec is minimised jointly with the module.
///
/// When the divergence comes from a *planted* bug, the predicate also
/// requires the clean oracle to pass: otherwise shrinking can wander
/// into genuinely divergent territory (e.g. a schedule key migrating
/// onto the guest's final MMIO store) and mint a corpus case that fails
/// clean replay.
fn shrink_divergence(
    module: &tta_ir::Module,
    spec: &IoSpec,
    d: &Divergence,
    oracle: &Oracle,
) -> (tta_ir::Module, IoSpec) {
    let clean = oracle.planted.map(|_| Oracle {
        planted: None,
        ..Oracle::all_presets()
    });
    let full = |m: &tta_ir::Module, s: &IoSpec| {
        matches!(oracle.check_reactive(m, s), Err(d) if d.is_semantic())
            && clean
                .as_ref()
                .is_none_or(|c| c.check_reactive(m, s).is_ok())
    };
    if let Some(name) = d.machine() {
        if let Some(mut fast) = Oracle::single(name) {
            fast.planted = oracle.planted;
            let fast_clean = oracle.planted.and_then(|_| Oracle::single(name));
            let fast_pred = |m: &tta_ir::Module, s: &IoSpec| {
                matches!(fast.check_reactive(m, s), Err(d) if d.is_semantic())
                    && fast_clean
                        .as_ref()
                        .is_none_or(|c| c.check_reactive(m, s).is_ok())
            };
            let (small_m, small_s) = shrink_reactive(module, spec, &fast_pred);
            if full(&small_m, &small_s) {
                return (small_m, small_s);
            }
        }
    }
    shrink_reactive(module, spec, &full)
}

fn report_divergence(
    seed: u64,
    module: &tta_ir::Module,
    spec: &IoSpec,
    d: &Divergence,
    oracle: &Oracle,
    args: &Args,
) {
    println!("seed {seed}: DIVERGENCE: {d}");
    println!("  shrinking ({} insts)...", inst_count(module));
    let (small, small_spec) = shrink_divergence(module, spec, d, oracle);
    let residual = match oracle.check_reactive(&small, &small_spec) {
        Err(d) => d.to_string(),
        Ok(_) => "lost during shrinking".to_string(),
    };
    println!(
        "  minimised to {} insts, {} irqs, {} rx bytes: {residual}\n{}",
        inst_count(&small),
        small_spec.schedule.len(),
        small_spec.uart_rx.len(),
        tta_ir::module_to_text(&small)
    );
    if args.write_corpus {
        let dir = corpus_dir();
        let _ = std::fs::create_dir_all(&dir);
        let tag = args.plant.map(|b| b.name()).unwrap_or("divergence");
        let path = dir.join(format!("seed{seed:05}-{tag}.ir"));
        let case = render_case(seed, args.plant, &residual, &small_spec, &small);
        match std::fs::write(&path, case) {
            Ok(()) => println!("  wrote {}", path.display()),
            Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
        }
    }
}

fn run_replay() -> ExitCode {
    let cases = match load_corpus() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load corpus from {}: {e}", corpus_dir().display());
            return ExitCode::from(2);
        }
    };
    let mut failures = 0u32;
    for case in &cases {
        // A clean toolchain must pass the case as written...
        if let Err(d) = Oracle::all_presets().check_reactive(&case.module, &case.spec) {
            println!("corpus {}: FAIL (clean oracle): {d}", case.name);
            failures += 1;
            continue;
        }
        // ...and, for synthetic cases, still catch the planted bug class.
        if let Some(bug) = case.planted {
            let oracle = Oracle {
                planted: Some(bug),
                ..Oracle::all_presets()
            };
            match oracle.check_reactive(&case.module, &case.spec) {
                Err(d) if d.is_semantic() => {}
                other => {
                    println!(
                        "corpus {}: FAIL (planted {} no longer detected): {other:?}",
                        case.name,
                        bug.name()
                    );
                    failures += 1;
                    continue;
                }
            }
        }
        println!("corpus {}: ok", case.name);
    }
    println!("replayed {} corpus cases, {failures} failures", cases.len());
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.replay {
        return run_replay();
    }
    let (lo, hi) = args.seeds.unwrap();
    let oracle = make_oracle(&args);
    let mut cfg = GenConfig::default();
    if let Some(n) = args.max_stmts {
        cfg.max_stmts = n;
    }

    let t0 = Instant::now();
    let mut divergences = 0u64;
    let mut golden_insts = 0u64;
    let mut sim_cycles = 0u64;
    for seed in lo..hi {
        let (module, spec) = if args.schedules {
            generate_reactive(seed, &cfg)
        } else {
            (generate(seed, &cfg), IoSpec::default())
        };
        match oracle.check_reactive(&module, &spec) {
            Ok(report) => {
                golden_insts += report.golden_insts;
                sim_cycles += report.runs.iter().map(|r| r.cycles).sum::<u64>();
            }
            Err(d) if d.is_semantic() => {
                divergences += 1;
                report_divergence(seed, &module, &spec, &d, &oracle, &args);
            }
            Err(d) => {
                // Generator artefact (unverified / interpreter fault):
                // a bug in the fuzzer itself, not in the toolchain.
                println!("seed {seed}: GENERATOR BUG: {d}");
                divergences += 1;
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let n = hi.saturating_sub(lo);
    println!(
        "fuzzed {n} seeds on {} machine(s) in {dt:.2}s ({:.1} cases/s), \
         {golden_insts} golden insts, {sim_cycles} simulated cycles, \
         {divergences} divergence(s)",
        oracle.machines.len(),
        n as f64 / dt.max(1e-9),
    );
    if divergences == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
