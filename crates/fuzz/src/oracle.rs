//! The differential oracle: golden interpreter vs compile+simulate.
//!
//! For one IR module the oracle runs the reference interpreter once, then
//! compiles and simulates the module on every configured machine,
//! comparing:
//!
//! * the returned value,
//! * the final data-memory image (outside the reserved low words and the
//!   compiler's spill scratch area, exactly like the hand-written
//!   differential tests),
//! * for reactive cases ([`Oracle::check_reactive`]), the UART transmit
//!   stream and the number of interrupts delivered, and
//! * that a second simulation of the same program reproduces the same
//!   cycle count bit-for-bit (simulators must be deterministic).
//!
//! Reactive cases carry an [`IoSpec`] alongside the module: an interrupt
//! schedule keyed on MMIO-store counts (the style-invariant clock — see
//! [`tta_model::io::IrqAt`]) plus a scripted UART receive stream. The
//! golden interpreter and every simulator run against their own fresh
//! `IoSystem` built from the same spec.
//!
//! A [`PlantedBug`] can be armed to mutate the module *or the I/O spec on
//! the compiled path only*, emulating a mis-compilation or a broken
//! interrupt controller. This is the hook the shrinker self-test uses to
//! prove the whole detect-and-minimise pipeline works even when the real
//! toolchain is clean.

use tta_compiler::compile;
use tta_ir::{Inst, Interpreter, Module};
use tta_model::io::{IoSpec, IoSystem, IrqAt, SOFT_LINE};
use tta_model::{presets, Machine, Opcode};

/// Memory bytes below this address are reserved (return-value slot) and
/// excluded from the comparison.
pub const MEM_COMPARE_LO: usize = 16;

/// Spill scratch headroom at the top of memory excluded from the
/// comparison (matches `ModuleBuilder::finish`).
pub const MEM_COMPARE_HEADROOM: u32 = 4096;

/// Why a module diverged between the golden model and a machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The module failed IR verification — a generator/shrinker artefact,
    /// not a semantic divergence.
    Verify(String),
    /// The golden interpreter itself failed (fuel, memory fault) — also a
    /// generator artefact, not a compiler bug.
    Interp(String),
    /// Compilation failed on a verified module.
    Compile {
        /// Design-point name.
        machine: String,
        /// The compiler's error.
        error: String,
    },
    /// Simulation failed (machine-rule violation, fault, fuel).
    Sim {
        /// Design-point name.
        machine: String,
        /// The simulator's error.
        error: String,
    },
    /// The simulated return value disagrees with the interpreter.
    Ret {
        /// Design-point name.
        machine: String,
        /// Interpreter's return value.
        golden: i32,
        /// Simulator's return value.
        got: i32,
    },
    /// The final memory images disagree.
    Mem {
        /// Design-point name.
        machine: String,
        /// First differing byte address.
        addr: usize,
        /// Interpreter's byte.
        golden: u8,
        /// Simulator's byte.
        got: u8,
    },
    /// Two simulations of the same program returned different cycle
    /// counts.
    Cycles {
        /// Design-point name.
        machine: String,
        /// First run's cycles.
        first: u64,
        /// Second run's cycles.
        second: u64,
    },
    /// The UART transmit streams disagree (reactive cases only).
    Uart {
        /// Design-point name.
        machine: String,
        /// Interpreter's transmit log.
        golden: Vec<u8>,
        /// Simulator's transmit log.
        got: Vec<u8>,
    },
    /// The interrupt delivery counts disagree (reactive cases only).
    Irqs {
        /// Design-point name.
        machine: String,
        /// Interrupts the interpreter delivered.
        golden: u64,
        /// Interrupts the simulator delivered.
        got: u64,
    },
}

impl Divergence {
    /// Whether this divergence indicates a real compiler/simulator bug
    /// (as opposed to an ill-formed input module). The shrinker only
    /// accepts reductions that keep a *semantic* divergence alive, so it
    /// can never "shrink" into a module that merely fails verification.
    pub fn is_semantic(&self) -> bool {
        !matches!(self, Divergence::Verify(_) | Divergence::Interp(_))
    }

    /// The design point the divergence was observed on, if any.
    pub fn machine(&self) -> Option<&str> {
        match self {
            Divergence::Verify(_) | Divergence::Interp(_) => None,
            Divergence::Compile { machine, .. }
            | Divergence::Sim { machine, .. }
            | Divergence::Ret { machine, .. }
            | Divergence::Mem { machine, .. }
            | Divergence::Cycles { machine, .. }
            | Divergence::Uart { machine, .. }
            | Divergence::Irqs { machine, .. } => Some(machine),
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Verify(e) => write!(f, "verify failed: {e}"),
            Divergence::Interp(e) => write!(f, "interpreter failed: {e}"),
            Divergence::Compile { machine, error } => {
                write!(f, "[{machine}] compile failed: {error}")
            }
            Divergence::Sim { machine, error } => {
                write!(f, "[{machine}] simulation failed: {error}")
            }
            Divergence::Ret {
                machine,
                golden,
                got,
            } => write!(f, "[{machine}] return value {got} != golden {golden}"),
            Divergence::Mem {
                machine,
                addr,
                golden,
                got,
            } => write!(
                f,
                "[{machine}] memory[{addr:#x}] = {got:#04x} != golden {golden:#04x}"
            ),
            Divergence::Cycles {
                machine,
                first,
                second,
            } => write!(
                f,
                "[{machine}] nondeterministic cycle count: {first} then {second}"
            ),
            Divergence::Uart {
                machine,
                golden,
                got,
            } => write!(f, "[{machine}] uart tx {got:02x?} != golden {golden:02x?}"),
            Divergence::Irqs {
                machine,
                golden,
                got,
            } => write!(
                f,
                "[{machine}] {got} interrupts delivered != golden {golden}"
            ),
        }
    }
}

/// A deliberate semantics bug injected on the compiled path only. The
/// first three mutate the *module* (a mis-compilation); the last three
/// mutate the *I/O spec* the simulators run against (a broken interrupt
/// controller or lossy device). Used by the shrinker self-test and by
/// `fuzz --plant-bug` to validate the whole pipeline end to end; never
/// enabled in normal fuzzing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantedBug {
    /// Compile every arithmetic `shr` as the logical `shru`: diverges
    /// whenever a negative value is shifted right by a non-zero amount.
    ShrAsShru,
    /// Compile `sub` with swapped operands: `a - b` becomes `b - a`.
    SubSwapped,
    /// Compile every `sxqw` (8-bit sign extension) as `sxhw` (16-bit):
    /// diverges on values whose bits 8..15 disagree with bit 7.
    SxqwAsSxhw,
    /// Shift every interrupt-schedule key one step later (a controller
    /// that latches a beat late): the handler runs at the wrong point in
    /// the MMIO-store stream, or not at all.
    IrqShiftKey,
    /// Drop every scripted interrupt on the soft line: scheduled
    /// deliveries silently never happen.
    IrqDropLine,
    /// Lose the first scripted UART receive byte: the handler pops the
    /// wrong byte (or -1) from that point on.
    UartDropByte,
}

impl PlantedBug {
    /// All planted bugs (for CLI parsing and corpus seeding).
    pub const ALL: [PlantedBug; 6] = [
        PlantedBug::ShrAsShru,
        PlantedBug::SubSwapped,
        PlantedBug::SxqwAsSxhw,
        PlantedBug::IrqShiftKey,
        PlantedBug::IrqDropLine,
        PlantedBug::UartDropByte,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PlantedBug::ShrAsShru => "shr-as-shru",
            PlantedBug::SubSwapped => "sub-swapped",
            PlantedBug::SxqwAsSxhw => "sxqw-as-sxhw",
            PlantedBug::IrqShiftKey => "irq-shift-key",
            PlantedBug::IrqDropLine => "irq-drop-line",
            PlantedBug::UartDropByte => "uart-drop-byte",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Whether this bug mutates the I/O spec (as opposed to the module).
    pub fn is_spec_bug(self) -> bool {
        matches!(
            self,
            PlantedBug::IrqShiftKey | PlantedBug::IrqDropLine | PlantedBug::UartDropByte
        )
    }

    /// Apply the mis-compilation to a module clone. Spec bugs leave the
    /// module untouched.
    pub fn apply(self, m: &Module) -> Module {
        let mut out = m.clone();
        for f in &mut out.funcs {
            for b in &mut f.blocks {
                for i in &mut b.insts {
                    match (self, &mut *i) {
                        (PlantedBug::ShrAsShru, Inst::Bin { op, .. }) if *op == Opcode::Shr => {
                            *op = Opcode::Shru;
                        }
                        (PlantedBug::SubSwapped, Inst::Bin { op, a, b, .. })
                            if *op == Opcode::Sub =>
                        {
                            std::mem::swap(a, b);
                        }
                        (PlantedBug::SxqwAsSxhw, Inst::Un { op, .. }) if *op == Opcode::Sxqw => {
                            *op = Opcode::Sxhw;
                        }
                        _ => {}
                    }
                }
            }
        }
        out
    }

    /// Apply the device/controller fault to a spec clone. Module bugs
    /// leave the spec untouched.
    pub fn apply_spec(self, spec: &IoSpec) -> IoSpec {
        let mut out = spec.clone();
        match self {
            PlantedBug::IrqShiftKey => {
                for (at, _) in &mut out.schedule {
                    *at = match *at {
                        IrqAt::Cycle(c) => IrqAt::Cycle(c + 1),
                        IrqAt::MmioStore(k) => IrqAt::MmioStore(k + 1),
                    };
                }
            }
            PlantedBug::IrqDropLine => {
                out.schedule.retain(|&(_, line)| line != SOFT_LINE);
            }
            PlantedBug::UartDropByte if !out.uart_rx.is_empty() => {
                out.uart_rx.remove(0);
            }
            _ => {}
        }
        out
    }
}

/// Per-machine success data from one oracle check.
#[derive(Debug, Clone)]
pub struct MachineRun {
    /// Design-point name.
    pub machine: String,
    /// Simulated cycle count.
    pub cycles: u64,
}

/// Everything a clean oracle check learned.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The golden return value.
    pub ret: i32,
    /// Dynamic golden instruction count (throughput accounting).
    pub golden_insts: u64,
    /// One entry per machine checked.
    pub runs: Vec<MachineRun>,
}

/// The differential oracle configuration.
pub struct Oracle {
    /// Machines to check (defaults to all 13 paper design points).
    pub machines: Vec<Machine>,
    /// Interpreter fuel per case.
    pub interp_fuel: u64,
    /// Simulator cycle budget per case.
    pub sim_fuel: u64,
    /// Optional mis-compilation hook (see [`PlantedBug`]).
    pub planted: Option<PlantedBug>,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle {
            machines: presets::all_design_points(),
            interp_fuel: 50_000_000,
            sim_fuel: 20_000_000,
            planted: None,
        }
    }
}

impl Oracle {
    /// An oracle over all 13 design points.
    pub fn all_presets() -> Self {
        Self::default()
    }

    /// An oracle over a single named design point.
    pub fn single(name: &str) -> Option<Self> {
        presets::by_name(name).map(|m| Oracle {
            machines: vec![m],
            ..Self::default()
        })
    }

    /// Check one module with no scripted I/O. `Ok` carries per-machine
    /// cycle counts; `Err` carries the first divergence found.
    pub fn check(&self, module: &Module) -> Result<OracleReport, Divergence> {
        self.check_reactive(module, &IoSpec::default())
    }

    /// Check one reactive case: a module plus the interrupt schedule and
    /// device scripts it runs against. The golden interpreter and every
    /// simulator get their own fresh `IoSystem` built from `spec`; a
    /// planted spec bug mutates only the simulators' copy.
    ///
    /// Observability: the whole check runs under a `fuzz_check` span
    /// (the compiler and simulator charge `compile`/`simulate` spans
    /// beneath it) and feeds the `fuzz.*` counters.
    pub fn check_reactive(
        &self,
        module: &Module,
        spec: &IoSpec,
    ) -> Result<OracleReport, Divergence> {
        let _span = tta_obs::span("fuzz_check");
        let result = self.check_inner(module, spec);
        if tta_obs::enabled() {
            match &result {
                Ok(report) => {
                    tta_obs::counter::add("fuzz.cases_ok", 1);
                    tta_obs::counter::add("fuzz.golden_insts", report.golden_insts);
                    tta_obs::counter::add(
                        "fuzz.sim_cycles",
                        report.runs.iter().map(|r| r.cycles).sum(),
                    );
                }
                Err(d) if d.is_semantic() => tta_obs::counter::add("fuzz.divergences", 1),
                Err(_) => tta_obs::counter::add("fuzz.rejected_inputs", 1),
            }
        }
        result
    }

    fn check_inner(&self, module: &Module, spec: &IoSpec) -> Result<OracleReport, Divergence> {
        if let Err(es) = tta_ir::verify_module(module) {
            let msg = es
                .iter()
                .take(3)
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(Divergence::Verify(msg));
        }
        let mut golden_io = IoSystem::new(spec);
        let golden = {
            let _s = tta_obs::span("golden_interp");
            Interpreter::new(module)
                .with_fuel(self.interp_fuel)
                .run_with_io(&[], &mut golden_io)
                .map_err(|e| Divergence::Interp(e.to_string()))?
        };
        let Some(golden_ret) = golden.ret else {
            return Err(Divergence::Interp("entry returned no value".into()));
        };
        let golden_tx = golden_io.uart_tx();
        let golden_irqs = golden_io.irqs_delivered;

        // The mis-compiled twin (identical to `module`/`spec` unless a
        // bug is planted): what the compile+simulate path actually sees.
        let compiled_view = match self.planted {
            Some(bug) => bug.apply(module),
            None => module.clone(),
        };
        let spec_view = match self.planted {
            Some(bug) => bug.apply_spec(spec),
            None => spec.clone(),
        };

        let lo = MEM_COMPARE_LO.min(module.mem_size as usize);
        let hi = module.mem_size.saturating_sub(MEM_COMPARE_HEADROOM) as usize;
        let mut runs = Vec::with_capacity(self.machines.len());
        for machine in &self.machines {
            let compiled = compile(&compiled_view, machine).map_err(|e| Divergence::Compile {
                machine: machine.name.clone(),
                error: e.to_string(),
            })?;
            let run = || {
                tta_sim::run_with_io(
                    machine,
                    &compiled.program,
                    module.initial_memory(),
                    self.sim_fuel,
                    &spec_view,
                    compiled.irq_entry,
                )
            };
            let result = run().map_err(|e| Divergence::Sim {
                machine: machine.name.clone(),
                error: e.to_string(),
            })?;
            if result.ret != golden_ret {
                return Err(Divergence::Ret {
                    machine: machine.name.clone(),
                    golden: golden_ret,
                    got: result.ret,
                });
            }
            if let Some(addr) = (lo..hi).find(|&a| golden.memory[a] != result.memory[a]) {
                return Err(Divergence::Mem {
                    machine: machine.name.clone(),
                    addr,
                    golden: golden.memory[addr],
                    got: result.memory[addr],
                });
            }
            if result.uart_tx != golden_tx {
                return Err(Divergence::Uart {
                    machine: machine.name.clone(),
                    golden: golden_tx,
                    got: result.uart_tx.clone(),
                });
            }
            if result.stats.irqs != golden_irqs {
                return Err(Divergence::Irqs {
                    machine: machine.name.clone(),
                    golden: golden_irqs,
                    got: result.stats.irqs,
                });
            }
            // Determinism: an identical re-run must reproduce the cycle
            // count exactly.
            let again = run().map_err(|e| Divergence::Sim {
                machine: machine.name.clone(),
                error: e.to_string(),
            })?;
            if again.cycles != result.cycles {
                return Err(Divergence::Cycles {
                    machine: machine.name.clone(),
                    first: result.cycles,
                    second: again.cycles,
                });
            }
            runs.push(MachineRun {
                machine: machine.name.clone(),
                cycles: result.cycles,
            });
        }
        Ok(OracleReport {
            ret: golden_ret,
            golden_insts: golden.stats.insts,
            runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
    use tta_ir::Operand;

    fn shr_module() -> Module {
        // -64 >> 3 differs between arithmetic and logical shift.
        let mut mb = ModuleBuilder::new("shr");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let a = fb.copy(-64);
        let r = fb.shr(a, 3);
        fb.ret(r);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        mb.finish()
    }

    #[test]
    fn clean_module_passes_all_machines() {
        let oracle = Oracle::all_presets();
        let report = oracle.check(&shr_module()).unwrap();
        assert_eq!(report.ret, -8);
        assert_eq!(report.runs.len(), 13);
        assert!(report.runs.iter().all(|r| r.cycles > 0));
    }

    #[test]
    fn planted_shr_bug_is_detected() {
        let oracle = Oracle {
            planted: Some(PlantedBug::ShrAsShru),
            ..Oracle::all_presets()
        };
        let d = oracle.check(&shr_module()).unwrap_err();
        assert!(d.is_semantic(), "{d}");
        assert!(matches!(d, Divergence::Ret { .. }), "{d}");
    }

    #[test]
    fn unverified_module_is_not_a_semantic_divergence() {
        let mut m = shr_module();
        // Break definite assignment: read a register that is never written.
        m.funcs[0].next_vreg += 1;
        let ghost = tta_ir::VReg(m.funcs[0].next_vreg - 1);
        m.funcs[0].blocks[0].insts.push(tta_ir::Inst::Bin {
            op: Opcode::Add,
            dst: ghost,
            a: Operand::Reg(ghost),
            b: Operand::Imm(1),
        });
        let d = Oracle::all_presets().check(&m).unwrap_err();
        assert!(!d.is_semantic(), "{d}");
    }

    #[test]
    fn planted_bug_names_round_trip() {
        for b in PlantedBug::ALL {
            assert_eq!(PlantedBug::from_name(b.name()), Some(b));
        }
        assert_eq!(PlantedBug::from_name("nope"), None);
    }

    #[test]
    fn reactive_case_passes_clean_and_every_spec_bug_is_detected() {
        let (m, spec) = crate::gen::generate_reactive(1, &crate::gen::GenConfig::default());
        let clean = Oracle::all_presets();
        let report = clean
            .check_reactive(&m, &spec)
            .unwrap_or_else(|d| panic!("clean reactive check diverged: {d}"));
        assert_eq!(report.runs.len(), 13);
        for bug in PlantedBug::ALL {
            if !bug.is_spec_bug() {
                continue;
            }
            assert_eq!(bug.apply(&m), m, "spec bugs must not touch the module");
            // A spec bug may be a no-op on a given spec (e.g. nothing to
            // drop); find a seed where each one bites below.
        }
    }

    #[test]
    fn each_spec_bug_diverges_on_some_seed() {
        for bug in [
            PlantedBug::IrqShiftKey,
            PlantedBug::IrqDropLine,
            PlantedBug::UartDropByte,
        ] {
            let oracle = Oracle {
                planted: Some(bug),
                ..Oracle::all_presets()
            };
            let caught = (0..24).any(|seed| {
                let (m, spec) =
                    crate::gen::generate_reactive(seed, &crate::gen::GenConfig::default());
                matches!(oracle.check_reactive(&m, &spec), Err(d) if d.is_semantic())
            });
            assert!(caught, "planted {} never diverged in 24 seeds", bug.name());
        }
    }

    #[test]
    fn module_bugs_leave_the_spec_untouched() {
        let spec = IoSpec {
            schedule: vec![(IrqAt::MmioStore(2), SOFT_LINE)],
            uart_rx: vec![(0, 97)],
            uart_irq_on_rx: false,
        };
        for bug in [
            PlantedBug::ShrAsShru,
            PlantedBug::SubSwapped,
            PlantedBug::SxqwAsSxhw,
        ] {
            assert_eq!(bug.apply_spec(&spec), spec, "{}", bug.name());
        }
        assert_eq!(
            PlantedBug::IrqShiftKey.apply_spec(&spec).schedule,
            vec![(IrqAt::MmioStore(3), SOFT_LINE)]
        );
        assert!(PlantedBug::IrqDropLine
            .apply_spec(&spec)
            .schedule
            .is_empty());
        assert!(PlantedBug::UartDropByte
            .apply_spec(&spec)
            .uart_rx
            .is_empty());
    }
}
