//! Greedy automatic test-case reduction.
//!
//! Given a module and a `reproduces` predicate (normally "the oracle still
//! reports a semantic divergence"), the shrinker repeatedly tries
//! structure-preserving simplifications and keeps each one that still
//! reproduces, until a full pass makes no progress:
//!
//! 1. delete a whole instruction,
//! 2. replace an instruction with `copy dst, #0` (keeps the def so later
//!    uses stay verified, removes the computation),
//! 3. replace a register operand with `#0`,
//! 4. turn a conditional branch into an unconditional jump,
//! 5. drop trailing functions that are no longer called.
//!
//! Candidates that fail IR verification are rejected before the predicate
//! runs, so the result is always a well-formed module. The process is a
//! fixpoint of local moves — greedy, not optimal, but in practice it cuts
//! generated ~50-instruction programs down to a handful.

use tta_ir::{BlockId, FuncId, Function, Inst, Module, Operand, Terminator};
use tta_model::io::IoSpec;

/// Count every instruction in the module (terminators excluded).
pub fn inst_count(m: &Module) -> usize {
    m.funcs
        .iter()
        .flat_map(|f| &f.blocks)
        .map(|b| b.insts.len())
        .sum()
}

fn well_formed(m: &Module) -> bool {
    tta_ir::verify_module(m).is_ok()
}

/// One shrink attempt: mutate a clone, keep it if it verifies and still
/// reproduces.
fn try_candidate(
    best: &mut Module,
    mutate: impl FnOnce(&mut Module),
    reproduces: &dyn Fn(&Module) -> bool,
) -> bool {
    let mut cand = best.clone();
    mutate(&mut cand);
    if well_formed(&cand) && reproduces(&cand) {
        *best = cand;
        true
    } else {
        false
    }
}

/// Mutable slots of all register operands read by an instruction.
fn reg_operands(i: &mut Inst) -> Vec<&mut Operand> {
    let mut out: Vec<&mut Operand> = Vec::new();
    match i {
        Inst::Bin { a, b, .. } => out.extend([a, b]),
        Inst::Un { a, .. } | Inst::Copy { src: a, .. } => out.push(a),
        Inst::Load { addr, .. } => out.push(addr),
        Inst::Store { value, addr, .. } => out.extend([value, addr]),
        Inst::Call { args, .. } => out.extend(args.iter_mut()),
    }
    out.retain(|o| matches!(o, Operand::Reg(_)));
    out
}

/// Resolve a jump target through chains of empty jump-only blocks.
fn thread_target(f: &Function, mut b: BlockId) -> BlockId {
    let mut hops = 0;
    while hops <= f.blocks.len() {
        let blk = &f.blocks[b.0 as usize];
        match blk.term {
            Some(Terminator::Jump(t)) if blk.insts.is_empty() && t != b => {
                b = t;
                hops += 1;
            }
            _ => break,
        }
    }
    b
}

/// Semantics-preserving control-flow cleanup: thread jumps through empty
/// blocks, collapse branches whose arms coincide, and drop blocks that
/// become unreachable (renumbering the survivors).
fn cleanup_blocks(m: &mut Module) {
    for f in &mut m.funcs {
        for bi in 0..f.blocks.len() {
            let new_term = match f.blocks[bi].term.clone() {
                Some(Terminator::Jump(t)) => Some(Terminator::Jump(thread_target(f, t))),
                Some(Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                }) => {
                    let (t, e) = (thread_target(f, if_true), thread_target(f, if_false));
                    if t == e {
                        Some(Terminator::Jump(t))
                    } else {
                        Some(Terminator::Branch {
                            cond,
                            if_true: t,
                            if_false: e,
                        })
                    }
                }
                other => other,
            };
            f.blocks[bi].term = new_term;
        }
        // Reachability from the entry block.
        let mut reach = vec![false; f.blocks.len()];
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reach[b.0 as usize], true) {
                continue;
            }
            if let Some(t) = &f.blocks[b.0 as usize].term {
                stack.extend(t.successors());
            }
        }
        let mut remap = vec![BlockId(0); f.blocks.len()];
        let mut next = 0u32;
        for (i, r) in reach.iter().enumerate() {
            if *r {
                remap[i] = BlockId(next);
                next += 1;
            }
        }
        let mut i = 0;
        f.blocks.retain(|_| {
            i += 1;
            reach[i - 1]
        });
        for b in &mut f.blocks {
            b.term = match b.term.take() {
                Some(Terminator::Jump(t)) => Some(Terminator::Jump(remap[t.0 as usize])),
                Some(Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                }) => Some(Terminator::Branch {
                    cond,
                    if_true: remap[if_true.0 as usize],
                    if_false: remap[if_false.0 as usize],
                }),
                other => other,
            };
        }
    }
}

/// Drop functions unreachable from the entry via calls, renumbering
/// `FuncId`s in call sites and the entry. The reserved `__irq` handler
/// is a root too: it is entered by interrupt delivery, never by a call.
fn cleanup_funcs(m: &mut Module) {
    let mut live = vec![false; m.funcs.len()];
    let mut stack = vec![m.entry];
    for (i, f) in m.funcs.iter().enumerate() {
        if f.name == tta_model::io::IRQ_HANDLER_NAME {
            stack.push(FuncId(i as u32));
        }
    }
    while let Some(fid) = stack.pop() {
        if std::mem::replace(&mut live[fid.0 as usize], true) {
            continue;
        }
        for b in &m.funcs[fid.0 as usize].blocks {
            for i in &b.insts {
                if let Inst::Call { func, .. } = i {
                    stack.push(*func);
                }
            }
        }
    }
    let mut remap = vec![FuncId(0); m.funcs.len()];
    let mut next = 0u32;
    for (i, l) in live.iter().enumerate() {
        if *l {
            remap[i] = FuncId(next);
            next += 1;
        }
    }
    let mut i = 0;
    m.funcs.retain(|_| {
        i += 1;
        live[i - 1]
    });
    m.entry = remap[m.entry.0 as usize];
    for f in &mut m.funcs {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                if let Inst::Call { func, .. } = inst {
                    *func = remap[func.0 as usize];
                }
            }
        }
    }
}

/// Greedily minimise `module` while `reproduces` holds. `reproduces` is
/// assumed true for the input; if it is not, the input is returned
/// unchanged.
pub fn shrink(module: &Module, reproduces: &dyn Fn(&Module) -> bool) -> Module {
    let mut best = module.clone();
    if !reproduces(&best) {
        return best;
    }
    loop {
        let mut progress = false;

        // Passes 1-3 walk instructions by index; indices are re-read every
        // step because accepted candidates change the shape.
        let mut fi = 0;
        while fi < best.funcs.len() {
            let mut bi = 0;
            while bi < best.funcs[fi].blocks.len() {
                let mut ii = 0;
                while ii < best.funcs[fi].blocks[bi].insts.len() {
                    // Pass 1: delete the instruction outright.
                    if try_candidate(
                        &mut best,
                        |m| {
                            m.funcs[fi].blocks[bi].insts.remove(ii);
                        },
                        reproduces,
                    ) {
                        progress = true;
                        continue; // same index now holds the next inst
                    }
                    // Pass 2: neutralise to `copy dst, #0`.
                    let def = best.funcs[fi].blocks[bi].insts[ii].def();
                    let is_copy_zero = matches!(
                        &best.funcs[fi].blocks[bi].insts[ii],
                        Inst::Copy {
                            src: Operand::Imm(0),
                            ..
                        }
                    );
                    if let (Some(dst), false) = (def, is_copy_zero) {
                        if try_candidate(
                            &mut best,
                            |m| {
                                m.funcs[fi].blocks[bi].insts[ii] = Inst::Copy {
                                    dst,
                                    src: Operand::Imm(0),
                                };
                            },
                            reproduces,
                        ) {
                            progress = true;
                            ii += 1;
                            continue;
                        }
                    }
                    // Pass 3: zero out register operands one at a time.
                    // Accepting a candidate removes the slot from the
                    // reg-operand list, so only advance on rejection.
                    let mut oi = 0;
                    while oi < reg_operands(&mut best.funcs[fi].blocks[bi].insts[ii]).len() {
                        if try_candidate(
                            &mut best,
                            |m| {
                                let mut slots = reg_operands(&mut m.funcs[fi].blocks[bi].insts[ii]);
                                *slots[oi] = Operand::Imm(0);
                            },
                            reproduces,
                        ) {
                            progress = true;
                        } else {
                            oi += 1;
                        }
                    }
                    ii += 1;
                }
                // Pass 4: collapse a conditional branch to a jump.
                if let Some(Terminator::Branch {
                    if_true, if_false, ..
                }) = best.funcs[fi].blocks[bi].term.clone()
                {
                    for tgt in [if_true, if_false] {
                        if try_candidate(
                            &mut best,
                            |m| m.funcs[fi].blocks[bi].term = Some(Terminator::Jump(tgt)),
                            reproduces,
                        ) {
                            progress = true;
                            break;
                        }
                    }
                }
                bi += 1;
            }
            fi += 1;
        }

        // Pass 5: drop data initialisers the divergence does not need.
        let mut di = 0;
        while di < best.data.len() {
            if try_candidate(
                &mut best,
                |m| {
                    m.data.remove(di);
                },
                reproduces,
            ) {
                progress = true;
            } else {
                di += 1;
            }
        }

        // Pass 6: semantics-preserving structural cleanup — drop dead
        // functions, thread jump chains, drop unreachable blocks. Only
        // counts as progress when it actually changes the module.
        let mut cleaned = best.clone();
        cleanup_funcs(&mut cleaned);
        cleanup_blocks(&mut cleaned);
        if cleaned != best && well_formed(&cleaned) && reproduces(&cleaned) {
            best = cleaned;
            progress = true;
        }

        if !progress {
            return best;
        }
    }
}

/// Greedily minimise a reactive case — the module *and* its I/O spec —
/// while `reproduces` holds for the pair. Alternates spec reduction
/// (drop one schedule entry or rx byte at a time, clear the rx-interrupt
/// flag) with module shrinking under the fixed spec, to a joint
/// fixpoint. Like [`shrink`], the input is returned unchanged if it does
/// not reproduce.
pub fn shrink_reactive(
    module: &Module,
    spec: &IoSpec,
    reproduces: &dyn Fn(&Module, &IoSpec) -> bool,
) -> (Module, IoSpec) {
    let mut best_m = module.clone();
    let mut best_s = spec.clone();
    if !reproduces(&best_m, &best_s) {
        return (best_m, best_s);
    }
    loop {
        let mut progress = false;
        let mut i = 0;
        while i < best_s.schedule.len() {
            let mut cand = best_s.clone();
            cand.schedule.remove(i);
            if reproduces(&best_m, &cand) {
                best_s = cand;
                progress = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < best_s.uart_rx.len() {
            let mut cand = best_s.clone();
            cand.uart_rx.remove(i);
            if reproduces(&best_m, &cand) {
                best_s = cand;
                progress = true;
            } else {
                i += 1;
            }
        }
        if best_s.uart_irq_on_rx {
            let mut cand = best_s.clone();
            cand.uart_irq_on_rx = false;
            if reproduces(&best_m, &cand) {
                best_s = cand;
                progress = true;
            }
        }
        // Module passes under the (possibly reduced) spec; `shrink` runs
        // to its own fixpoint, so any change it makes is final for this
        // spec.
        let s = best_s.clone();
        let small = shrink(&best_m, &|m| reproduces(m, &s));
        if small != best_m {
            best_m = small;
            progress = true;
        }
        if !progress {
            return (best_m, best_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::PlantedBug;
    use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
    use tta_ir::Interpreter;

    /// A module whose return value depends on one `shr` of a negative
    /// number, padded with computation the shrinker should strip.
    fn bloated_shr_module() -> Module {
        let mut mb = ModuleBuilder::new("bloat");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let mut junk = fb.copy(7);
        for k in 0..8 {
            junk = fb.add(junk, k);
            junk = fb.xor(junk, 0x55);
        }
        let a = fb.copy(-64);
        let r = fb.shr(a, 3);
        // Mix junk in via ops the shrinker can strip: (r + junk) - junk == r.
        let mixed = fb.add(r, junk);
        let out = fb.sub(mixed, junk);
        fb.ret(out);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        mb.finish()
    }

    fn interp_ret(m: &Module) -> Option<i32> {
        Interpreter::new(m).run(&[]).ok().and_then(|r| r.ret)
    }

    /// Reproduces iff the planted bug changes the interpreted result.
    fn diverges_under(bug: PlantedBug) -> impl Fn(&Module) -> bool {
        move |m: &Module| {
            let golden = interp_ret(m);
            let buggy = interp_ret(&bug.apply(m));
            golden.is_some() && golden != buggy
        }
    }

    #[test]
    fn shrink_is_identity_when_not_reproducing() {
        let m = bloated_shr_module();
        let out = shrink(&m, &|_| false);
        assert_eq!(inst_count(&out), inst_count(&m));
    }

    #[test]
    fn shrinks_planted_bug_below_ten_insts() {
        let m = bloated_shr_module();
        let pred = diverges_under(PlantedBug::ShrAsShru);
        assert!(pred(&m), "planted bug must reproduce on the seed module");
        let small = shrink(&m, &pred);
        assert!(pred(&small), "shrunk module must still reproduce");
        assert!(
            inst_count(&small) <= 10,
            "expected <= 10 insts, got {} in:\n{}",
            inst_count(&small),
            tta_ir::module_to_text(&small)
        );
        assert!(inst_count(&small) < inst_count(&m));
    }

    #[test]
    fn shrunk_module_still_verifies() {
        let m = bloated_shr_module();
        let small = shrink(&m, &diverges_under(PlantedBug::ShrAsShru));
        assert!(tta_ir::verify_module(&small).is_ok());
    }
}
