//! Differential fuzzing subsystem for the TTA soft-core toolchain.
//!
//! Three pieces, composed by the `fuzz` binary and the regression tests:
//!
//! * [`gen`] — a seeded random generator of verified, terminating
//!   [`tta_ir::Module`]s covering the full instruction surface, plus a
//!   reactive variant pairing each module with a seeded interrupt
//!   schedule and UART script ([`gen::generate_reactive`]);
//! * [`oracle`] — a differential oracle running each case through the
//!   golden interpreter and compile+simulate on every preset design
//!   point, comparing return value, memory image, UART transmit stream,
//!   interrupt delivery count, and cycle-count determinism;
//! * [`shrink`] — a greedy reducer that minimises any diverging module
//!   (and, for reactive cases, its I/O spec) while the divergence still
//!   reproduces.
//!
//! Every failure the fuzzer ever finds is shrunk and committed to
//! `crates/fuzz/corpus/` as a textual IR file (see [`tta_ir::text`]),
//! which the `corpus_replay` integration test replays forever.
#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use corpus::{corpus_dir, load_corpus, CorpusCase};
pub use gen::{generate, generate_reactive, GenConfig};
pub use oracle::{Divergence, Oracle, OracleReport, PlantedBug};
pub use shrink::{inst_count, shrink, shrink_reactive};
