//! Ergonomic construction of IR modules and functions.
//!
//! The benchmark kernels in `tta-chstone` are written against this API. It
//! provides named static buffers with automatic address assignment and alias
//! regions, convenience emitters for every Table-I operation, and the
//! derived comparisons (`lt`, `le`, `ne`, …) that desugar to the primitive
//! `eq`/`gt`/`gtu` ops exactly like a C compiler would emit them.

use crate::func::{Block, DataInit, Function, Module};
use crate::inst::{BlockId, FuncId, Inst, MemRegion, Operand, Terminator, VReg};
use tta_model::Opcode;

/// A static buffer allocated by the [`ModuleBuilder`]: an absolute base
/// address plus the alias region covering it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// Absolute base byte address.
    pub addr: u32,
    /// Alias region tag for accesses to this buffer.
    pub region: MemRegion,
    /// Size in bytes.
    pub size: u32,
}

impl Buffer {
    /// Operand for the base address.
    pub fn base(&self) -> Operand {
        Operand::Imm(self.addr as i32)
    }

    /// Operand for the address of byte offset `off`.
    pub fn at(&self, off: u32) -> Operand {
        debug_assert!(
            off < self.size,
            "offset {off} outside buffer of {} bytes",
            self.size
        );
        Operand::Imm((self.addr + off) as i32)
    }

    /// Operand for the address of 32-bit word index `idx`.
    pub fn word(&self, idx: u32) -> Operand {
        self.at(idx * 4)
    }
}

/// Builds a [`Module`]: functions plus statically allocated data buffers.
pub struct ModuleBuilder {
    name: String,
    funcs: Vec<Option<Function>>,
    names: Vec<String>,
    data: Vec<DataInit>,
    next_addr: u32,
    next_region: u16,
    entry: Option<FuncId>,
}

impl ModuleBuilder {
    /// Start a module. Address 0 is kept unallocated so a zero address can
    /// serve as a null-like sentinel in kernels.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            funcs: Vec::new(),
            names: Vec::new(),
            data: Vec::new(),
            next_addr: 16,
            next_region: 1,
            entry: None,
        }
    }

    /// Reserve a zero-initialised buffer of `size` bytes (4-byte aligned).
    pub fn buffer(&mut self, size: u32) -> Buffer {
        let addr = self.next_addr;
        self.next_addr = (self.next_addr + size + 3) & !3;
        let region = MemRegion(self.next_region);
        self.next_region += 1;
        Buffer { addr, region, size }
    }

    /// Reserve a buffer initialised with `bytes`.
    pub fn data(&mut self, bytes: &[u8]) -> Buffer {
        let buf = self.buffer(bytes.len() as u32);
        self.data.push(DataInit {
            addr: buf.addr,
            bytes: bytes.to_vec(),
        });
        buf
    }

    /// Reserve a buffer initialised with little-endian 32-bit words.
    pub fn data_words(&mut self, words: &[i32]) -> Buffer {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data(&bytes)
    }

    /// Declare a function signature, reserving its id for forward calls.
    pub fn declare(&mut self, name: impl Into<String>) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        self.names.push(name.into());
        id
    }

    /// Provide the body for a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the id was already defined or the name differs from the
    /// declaration.
    pub fn define(&mut self, id: FuncId, f: Function) {
        assert_eq!(
            self.names[id.0 as usize], f.name,
            "definition name mismatch"
        );
        let slot = &mut self.funcs[id.0 as usize];
        assert!(slot.is_none(), "function {} defined twice", f.name);
        *slot = Some(f);
    }

    /// Declare and define in one step.
    pub fn add(&mut self, f: Function) -> FuncId {
        let id = self.declare(f.name.clone());
        self.define(id, f);
        id
    }

    /// Mark the entry function.
    pub fn set_entry(&mut self, id: FuncId) {
        self.entry = Some(id);
    }

    /// Finish the module.
    ///
    /// # Panics
    ///
    /// Panics if any declared function lacks a definition or no entry was
    /// set.
    pub fn finish(self) -> Module {
        let funcs: Vec<Function> = self
            .funcs
            .into_iter()
            .zip(&self.names)
            .map(|(f, n)| f.unwrap_or_else(|| panic!("function {n} declared but never defined")))
            .collect();
        Module {
            name: self.name,
            funcs,
            entry: self.entry.expect("module entry not set"),
            data: self.data,
            // Round the data segment up and leave headroom for the compiler's
            // spill slots.
            mem_size: (self.next_addr + 4096).next_power_of_two(),
        }
    }
}

/// Builds one [`Function`] block by block.
pub struct FunctionBuilder {
    f: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start a function with `nparams` parameters (`v0..v(nparams-1)`).
    pub fn new(name: impl Into<String>, nparams: u32, returns_value: bool) -> Self {
        FunctionBuilder {
            f: Function {
                name: name.into(),
                params: (0..nparams).map(VReg).collect(),
                returns_value,
                blocks: vec![Block::new()],
                next_vreg: nparams,
            },
            cur: Function::ENTRY,
        }
    }

    /// The `i`-th parameter register.
    pub fn param(&self, i: usize) -> VReg {
        self.f.params[i]
    }

    /// Allocate a fresh virtual register (not yet defined).
    pub fn vreg(&mut self) -> VReg {
        self.f.new_vreg()
    }

    /// Create a new (unterminated) block without switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.f.blocks.len() as u32);
        self.f.blocks.push(Block::new());
        id
    }

    /// Continue emitting into the given block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The block currently being emitted into.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    fn emit(&mut self, i: Inst) {
        let cur = self.cur;
        assert!(
            self.f.block(cur).term.is_none(),
            "emitting into terminated block {cur} of {}",
            self.f.name
        );
        self.f.block_mut(cur).insts.push(i);
    }

    /// Emit a two-input ALU op into a fresh register.
    pub fn bin(&mut self, op: Opcode, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.bin_to(dst, op, a, b);
        dst
    }

    /// Emit a two-input ALU op into an existing register (loop updates).
    pub fn bin_to(&mut self, dst: VReg, op: Opcode, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit(Inst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Emit a one-input ALU op into a fresh register.
    pub fn un(&mut self, op: Opcode, a: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.emit(Inst::Un {
            op,
            dst,
            a: a.into(),
        });
        dst
    }

    /// Copy into a fresh register.
    pub fn copy(&mut self, src: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.copy_to(dst, src);
        dst
    }

    /// Copy into an existing register (loop-carried variables, merges).
    pub fn copy_to(&mut self, dst: VReg, src: impl Into<Operand>) {
        self.emit(Inst::Copy {
            dst,
            src: src.into(),
        });
    }

    /// Emit a load into a fresh register.
    pub fn load(&mut self, op: Opcode, addr: impl Into<Operand>, region: MemRegion) -> VReg {
        assert!(op.is_load(), "{op} is not a load");
        let dst = self.vreg();
        self.load_to(dst, op, addr, region);
        dst
    }

    /// Emit a load into an existing register.
    pub fn load_to(&mut self, dst: VReg, op: Opcode, addr: impl Into<Operand>, region: MemRegion) {
        assert!(op.is_load(), "{op} is not a load");
        self.emit(Inst::Load {
            op,
            dst,
            addr: addr.into(),
            region,
        });
    }

    /// Emit a store.
    pub fn store(
        &mut self,
        op: Opcode,
        value: impl Into<Operand>,
        addr: impl Into<Operand>,
        region: MemRegion,
    ) {
        assert!(op.is_store(), "{op} is not a store");
        self.emit(Inst::Store {
            op,
            value: value.into(),
            addr: addr.into(),
            region,
        });
    }

    /// Emit a call with a result.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> VReg {
        let dst = self.vreg();
        self.emit(Inst::Call {
            func,
            args: args.to_vec(),
            dst: Some(dst),
        });
        dst
    }

    /// Emit a call without a result.
    pub fn call_void(&mut self, func: FuncId, args: &[Operand]) {
        self.emit(Inst::Call {
            func,
            args: args.to_vec(),
            dst: None,
        });
    }

    fn terminate(&mut self, t: Terminator) {
        let cur = self.cur;
        assert!(
            self.f.block(cur).term.is_none(),
            "block {cur} of {} terminated twice",
            self.f.name
        );
        self.f.block_mut(cur).term = Some(t);
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, b: BlockId) {
        self.terminate(Terminator::Jump(b));
    }

    /// Terminate the current block with a two-way branch on `cond != 0`.
    pub fn branch(&mut self, cond: impl Into<Operand>, if_true: BlockId, if_false: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            if_true,
            if_false,
        });
    }

    /// Terminate with `ret value`.
    pub fn ret(&mut self, value: impl Into<Operand>) {
        self.terminate(Terminator::Ret(Some(value.into())));
    }

    /// Terminate with a bare `ret`.
    pub fn ret_void(&mut self) {
        self.terminate(Terminator::Ret(None));
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.f
    }

    // ---- Table-I convenience emitters ----

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Add, a, b)
    }
    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Sub, a, b)
    }
    /// `a & b`.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::And, a, b)
    }
    /// `a | b`.
    pub fn ior(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Ior, a, b)
    }
    /// `a ^ b`.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Xor, a, b)
    }
    /// `a * b` (low 32 bits).
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Mul, a, b)
    }
    /// `a << b`.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Shl, a, b)
    }
    /// arithmetic `a >> b`.
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Shr, a, b)
    }
    /// logical `a >> b`.
    pub fn shru(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Shru, a, b)
    }
    /// `a == b` (0/1).
    pub fn eq(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Eq, a, b)
    }
    /// signed `a > b` (0/1).
    pub fn gt(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Gt, a, b)
    }
    /// unsigned `a > b` (0/1).
    pub fn gtu(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Gtu, a, b)
    }
    /// sign-extend low 16 bits.
    pub fn sxhw(&mut self, a: impl Into<Operand>) -> VReg {
        self.un(Opcode::Sxhw, a)
    }
    /// sign-extend low 8 bits.
    pub fn sxqw(&mut self, a: impl Into<Operand>) -> VReg {
        self.un(Opcode::Sxqw, a)
    }

    // ---- Derived comparisons (desugared like a C front end) ----

    /// signed `a < b` = `b > a`.
    pub fn lt(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Gt, b, a)
    }
    /// unsigned `a < b` = `b >u a`.
    pub fn ltu(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Gtu, b, a)
    }
    /// signed `a >= b` = `!(b > a)`.
    pub fn ge(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let t = self.bin(Opcode::Gt, b, a);
        self.bin(Opcode::Eq, t, 0)
    }
    /// signed `a <= b` = `!(a > b)`.
    pub fn le(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let t = self.bin(Opcode::Gt, a, b);
        self.bin(Opcode::Eq, t, 0)
    }
    /// `a != b` = `!(a == b)`.
    pub fn ne(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let t = self.bin(Opcode::Eq, a, b);
        self.bin(Opcode::Eq, t, 0)
    }
    /// logical not: `x == 0`.
    pub fn not(&mut self, a: impl Into<Operand>) -> VReg {
        self.bin(Opcode::Eq, a, 0)
    }

    // ---- Memory convenience emitters ----

    /// 32-bit load.
    pub fn ldw(&mut self, addr: impl Into<Operand>, region: MemRegion) -> VReg {
        self.load(Opcode::Ldw, addr, region)
    }
    /// 16-bit sign-extending load.
    pub fn ldh(&mut self, addr: impl Into<Operand>, region: MemRegion) -> VReg {
        self.load(Opcode::Ldh, addr, region)
    }
    /// 16-bit zero-extending load.
    pub fn ldhu(&mut self, addr: impl Into<Operand>, region: MemRegion) -> VReg {
        self.load(Opcode::Ldhu, addr, region)
    }
    /// 8-bit sign-extending load.
    pub fn ldq(&mut self, addr: impl Into<Operand>, region: MemRegion) -> VReg {
        self.load(Opcode::Ldq, addr, region)
    }
    /// 8-bit zero-extending load.
    pub fn ldqu(&mut self, addr: impl Into<Operand>, region: MemRegion) -> VReg {
        self.load(Opcode::Ldqu, addr, region)
    }
    /// 32-bit store.
    pub fn stw(&mut self, value: impl Into<Operand>, addr: impl Into<Operand>, region: MemRegion) {
        self.store(Opcode::Stw, value, addr, region);
    }
    /// 16-bit store.
    pub fn sth(&mut self, value: impl Into<Operand>, addr: impl Into<Operand>, region: MemRegion) {
        self.store(Opcode::Sth, value, addr, region);
    }
    /// 8-bit store.
    pub fn stq(&mut self, value: impl Into<Operand>, addr: impl Into<Operand>, region: MemRegion) {
        self.store(Opcode::Stq, value, addr, region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    #[test]
    fn buffers_are_disjoint_and_aligned() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.buffer(10);
        let b = mb.buffer(4);
        assert_eq!(a.addr % 4, 0);
        assert!(b.addr >= a.addr + 10);
        assert_ne!(a.region, b.region);
        assert_ne!(a.region, MemRegion::ANY);
    }

    #[test]
    fn data_words_little_endian() {
        let mut mb = ModuleBuilder::new("m");
        let w = mb.data_words(&[0x0102_0304]);
        let mut fb = FunctionBuilder::new("main", 0, true);
        let v = fb.ldw(w.base(), w.region);
        fb.ret(v);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        let r = Interpreter::new(&m).run(&[]).unwrap();
        assert_eq!(r.ret, Some(0x0102_0304));
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut fb = FunctionBuilder::new("f", 0, false);
        fb.ret_void();
        fb.ret_void();
    }

    #[test]
    #[should_panic(expected = "emitting into terminated block")]
    fn emit_after_terminate_panics() {
        let mut fb = FunctionBuilder::new("f", 0, false);
        fb.ret_void();
        fb.add(1, 2);
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn undefined_function_panics() {
        let mut mb = ModuleBuilder::new("m");
        let id = mb.declare("ghost");
        mb.set_entry(id);
        mb.finish();
    }

    #[test]
    fn derived_comparisons() {
        // lt/le/ge/ne/not all reduce to Table-I primitives; check semantics
        // through the interpreter.
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let a = fb.copy(-5);
        let b = fb.copy(3);
        let lt = fb.lt(a, b); // 1
        let le = fb.le(b, b); // 1
        let ge = fb.ge(a, b); // 0
        let ne = fb.ne(a, b); // 1
        let ltu = fb.ltu(a, b); // -5 as unsigned is huge -> 0
        let t1 = fb.shl(lt, 4);
        let t2 = fb.shl(le, 3);
        let t3 = fb.shl(ge, 2);
        let t4 = fb.shl(ne, 1);
        let s1 = fb.ior(t1, t2);
        let s2 = fb.ior(t3, t4);
        let s3 = fb.ior(s1, s2);
        let packed = fb.ior(s3, ltu);
        fb.ret(packed);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        let r = Interpreter::new(&m).run(&[]).unwrap();
        assert_eq!(r.ret, Some(0b11010));
    }
}
