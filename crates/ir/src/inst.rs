//! IR instructions.
//!
//! The IR is a conventional virtual-register three-address code over the
//! Table-I operation set: the form a C compiler front end (the paper uses
//! TCE's LLVM-based `tcecc`) would hand to the target-specific scheduler.
//! Programs at this level are *operation triggered*; it is the compiler
//! back end (`tta-compiler`) that lowers them into data transports for TTA
//! targets, into operation bundles for VLIW targets, or into a sequential
//! stream for scalar targets.

use tta_model::Opcode;

/// A virtual register (SSA-like but reassignable; the IR allows multiple
/// definitions of the same vreg, e.g. loop induction variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An instruction operand: a virtual register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a virtual register.
    Reg(VReg),
    /// A 32-bit constant.
    Imm(i32),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate value of this operand, if any.
    pub fn imm(self) -> Option<i32> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a function within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A memory alias region.
///
/// The builder tags each memory access with the static buffer it touches;
/// accesses to *different* non-zero regions are guaranteed disjoint, which
/// the scheduler's dependence analysis exploits (standing in for the alias
/// analysis a production compiler performs). Region 0 ([`MemRegion::ANY`])
/// may alias everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRegion(pub u16);

impl MemRegion {
    /// The conservative "may alias anything" region.
    pub const ANY: MemRegion = MemRegion(0);

    /// Whether two accesses may touch the same memory.
    pub fn may_alias(self, other: MemRegion) -> bool {
        self == MemRegion::ANY || other == MemRegion::ANY || self == other
    }
}

/// A non-terminator IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Two-input ALU operation: `dst = a <op> b`.
    Bin {
        /// An ALU opcode with two inputs.
        op: Opcode,
        /// Destination register.
        dst: VReg,
        /// First input (operand port on a TTA).
        a: Operand,
        /// Second input (trigger port on a TTA).
        b: Operand,
    },
    /// One-input ALU operation (`sxhw`, `sxqw`): `dst = <op> a`.
    Un {
        /// An ALU opcode with one input.
        op: Opcode,
        /// Destination register.
        dst: VReg,
        /// The input.
        a: Operand,
    },
    /// Register/constant copy: `dst = src`.
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// Memory load: `dst = <op> [addr]` (absolute address).
    Load {
        /// A load opcode.
        op: Opcode,
        /// Destination register.
        dst: VReg,
        /// Absolute byte address.
        addr: Operand,
        /// Alias region of the access.
        region: MemRegion,
    },
    /// Memory store: `<op> [addr] = value` (absolute address).
    Store {
        /// A store opcode.
        op: Opcode,
        /// The value to store.
        value: Operand,
        /// Absolute byte address.
        addr: Operand,
        /// Alias region of the access.
        region: MemRegion,
    },
    /// Direct call: `dst = func(args...)`. Calls are eliminated by the
    /// compiler's exhaustive inlining pass before scheduling (mirroring the
    /// whole-program optimisation of the paper's LLVM-based toolchain).
    Call {
        /// Callee.
        func: FuncId,
        /// Argument operands, one per callee parameter.
        args: Vec<Operand>,
        /// Where the return value goes (if the callee returns one).
        dst: Option<VReg>,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Bin { dst, .. } | Inst::Un { dst, .. } | Inst::Copy { dst, .. } => Some(*dst),
            Inst::Load { dst, .. } => Some(*dst),
            Inst::Store { .. } => None,
            Inst::Call { dst, .. } => *dst,
        }
    }

    /// The registers read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::Reg(r) = o {
                v.push(*r);
            }
        };
        match self {
            Inst::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            Inst::Un { a, .. } => push(a),
            Inst::Copy { src, .. } => push(src),
            Inst::Load { addr, .. } => push(addr),
            Inst::Store { value, addr, .. } => {
                push(value);
                push(addr);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
        }
        v
    }

    /// Whether this instruction touches memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inst::Bin { op, dst, a, b } => write!(f, "{dst} = {op} {a}, {b}"),
            Inst::Un { op, dst, a } => write!(f, "{dst} = {op} {a}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Load {
                op,
                dst,
                addr,
                region,
            } => {
                write!(f, "{dst} = {op} [{addr}] @r{}", region.0)
            }
            Inst::Store {
                op,
                value,
                addr,
                region,
            } => {
                write!(f, "{op} [{addr}] = {value} @r{}", region.0)
            }
            Inst::Call { func, args, dst } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call f{}(", func.0)?;
                } else {
                    write!(f, "call f{}(", func.0)?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// The condition operand.
        cond: Operand,
        /// Successor when `cond != 0`.
        if_true: BlockId,
        /// Successor when `cond == 0`.
        if_false: BlockId,
    },
    /// Return from the function (with an optional value).
    Ret(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Terminator::Branch {
                cond: Operand::Reg(r),
                ..
            } => vec![*r],
            Terminator::Ret(Some(Operand::Reg(r))) => vec![*r],
            _ => vec![],
        }
    }
}

impl std::fmt::Display for Terminator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                write!(f, "branch {cond} ? {if_true} : {if_false}")
            }
            Terminator::Ret(Some(v)) => write!(f, "ret {v}"),
            Terminator::Ret(None) => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::Opcode;

    #[test]
    fn defs_and_uses() {
        let i = Inst::Bin {
            op: Opcode::Add,
            dst: VReg(3),
            a: Operand::Reg(VReg(1)),
            b: Operand::Imm(7),
        };
        assert_eq!(i.def(), Some(VReg(3)));
        assert_eq!(i.uses(), vec![VReg(1)]);

        let s = Inst::Store {
            op: Opcode::Stw,
            value: Operand::Reg(VReg(2)),
            addr: Operand::Reg(VReg(4)),
            region: MemRegion(1),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VReg(2), VReg(4)]);
        assert!(s.is_mem());
    }

    #[test]
    fn region_aliasing() {
        assert!(MemRegion::ANY.may_alias(MemRegion(5)));
        assert!(MemRegion(5).may_alias(MemRegion::ANY));
        assert!(MemRegion(5).may_alias(MemRegion(5)));
        assert!(!MemRegion(5).may_alias(MemRegion(6)));
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(2)).successors(), vec![BlockId(2)]);
        let b = Terminator::Branch {
            cond: Operand::Reg(VReg(0)),
            if_true: BlockId(1),
            if_false: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(b.uses(), vec![VReg(0)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn display_forms() {
        let i = Inst::Bin {
            op: Opcode::Add,
            dst: VReg(3),
            a: Operand::Reg(VReg(1)),
            b: Operand::Imm(7),
        };
        assert_eq!(i.to_string(), "v3 = add v1, #7");
        assert_eq!(Terminator::Jump(BlockId(4)).to_string(), "jump bb4");
    }
}
