//! # tta-ir — the compiler's intermediate representation
//!
//! A target-independent virtual-register IR over the paper's Table-I
//! operation set, together with:
//!
//! * a [`builder`] API used to author programs (the CHStone-style kernels in
//!   `tta-chstone` are written against it),
//! * a [`verify`] pass (structure, opcode classes, definite assignment,
//!   recursion detection), and
//! * the reference [`interp`]reter that serves as the golden model for the
//!   differential tests of the compiler and the cycle-accurate simulator.
//!
//! ```
//! use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
//! use tta_ir::interp::Interpreter;
//!
//! let mut mb = ModuleBuilder::new("example");
//! let mut fb = FunctionBuilder::new("main", 2, true);
//! let sum = fb.add(fb.param(0), fb.param(1));
//! fb.ret(sum);
//! let main = mb.add(fb.finish());
//! mb.set_entry(main);
//! let module = mb.finish();
//!
//! tta_ir::verify::verify_module(&module).unwrap();
//! let result = Interpreter::new(&module).run(&[2, 40]).unwrap();
//! assert_eq!(result.ret, Some(42));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod func;
pub mod inst;
pub mod interp;
pub mod text;
pub mod verify;

pub use builder::{Buffer, FunctionBuilder, ModuleBuilder};
pub use func::{Block, DataInit, Function, Module};
pub use inst::{BlockId, FuncId, Inst, MemRegion, Operand, Terminator, VReg};
pub use interp::{ExecResult, ExecStats, Interpreter, IrError};
pub use text::{module_to_text, parse_module, ParseError};
pub use verify::{verify_function, verify_module, VerifyError};
