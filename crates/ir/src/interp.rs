//! The reference interpreter — the golden model of the whole reproduction.
//!
//! Every compiled-and-simulated execution in the test suite is checked
//! against this interpreter: the compiled program must produce the same
//! return value and the same final memory image. The interpreter shares its
//! ALU and memory semantics with the cycle-accurate simulator through
//! `tta_model::{op, mem}`, so the comparison genuinely exercises the
//! compiler and simulator rather than two copies of the same arithmetic.

use crate::func::{Function, Module};
use crate::inst::{Inst, Operand, Terminator, VReg};
use tta_model::io::{IoSystem, MMIO_BASE};
use tta_model::mem::MemError;

/// Dynamic execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Executed non-terminator instructions.
    pub insts: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Executed terminators (jumps, branches, returns).
    pub terminators: u64,
    /// Executed calls.
    pub calls: u64,
}

/// Result of an interpreted run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Return value of the entry function.
    pub ret: Option<i32>,
    /// Dynamic counts.
    pub stats: ExecStats,
    /// Final memory image (compared against the simulator's).
    pub memory: Vec<u8>,
}

/// An execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A register was read before any assignment.
    UndefinedRead(VReg, String),
    /// A memory access faulted.
    Mem(MemError),
    /// The fuel limit was reached (probable infinite loop).
    FuelExhausted,
    /// Call argument count mismatch.
    BadCall(String),
    /// Call recursion exceeded the depth limit.
    DepthExceeded,
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UndefinedRead(r, func) => write!(f, "read of undefined {r} in {func}"),
            IrError::Mem(e) => write!(f, "{e}"),
            IrError::FuelExhausted => write!(f, "fuel exhausted (infinite loop?)"),
            IrError::BadCall(m) => write!(f, "bad call: {m}"),
            IrError::DepthExceeded => write!(f, "call depth exceeded"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<MemError> for IrError {
    fn from(e: MemError) -> Self {
        IrError::Mem(e)
    }
}

/// Interprets a [`Module`].
pub struct Interpreter<'m> {
    module: &'m Module,
    fuel: u64,
    max_depth: u32,
}

impl<'m> Interpreter<'m> {
    /// Interpreter with the default fuel (500 M instructions) and call depth
    /// (128).
    pub fn new(module: &'m Module) -> Self {
        Interpreter {
            module,
            fuel: 500_000_000,
            max_depth: 128,
        }
    }

    /// Override the fuel limit.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Run the module's entry function with the given arguments.
    pub fn run(&self, args: &[i32]) -> Result<ExecResult, IrError> {
        let mut mem = self.module.initial_memory();
        let mut stats = ExecStats::default();
        let mut fuel = self.fuel;
        let entry = self.module.entry_func();
        let ret = self.call(entry, args, &mut mem, &mut stats, &mut fuel, 0, None)?;
        Ok(ExecResult {
            ret,
            stats,
            memory: mem,
        })
    }

    /// [`Interpreter::run`] against a memory-mapped I/O system: accesses
    /// at or above [`MMIO_BASE`] route to `io`'s devices, and pending
    /// interrupts are delivered at instruction boundaries as a nested
    /// call of the module's `__irq` handler. The interpreter's clock (for
    /// cycle-keyed schedule entries) is its executed-instruction count —
    /// an approximation by design; the style-invariant
    /// [`tta_model::io::IrqAt::MmioStore`] keys are exact here.
    pub fn run_with_io(&self, args: &[i32], io: &mut IoSystem) -> Result<ExecResult, IrError> {
        let mut mem = self.module.initial_memory();
        let mut stats = ExecStats::default();
        let mut fuel = self.fuel;
        let entry = self.module.entry_func();
        let ret = self.call(entry, args, &mut mem, &mut stats, &mut fuel, 0, Some(io))?;
        Ok(ExecResult {
            ret,
            stats,
            memory: mem,
        })
    }

    /// Drain pending interrupts by calling `__irq` as a nested function.
    /// Runs at every instruction boundary (before each instruction and
    /// each terminator), mirroring the simulators' block-boundary
    /// delivery points. Draining loops: a line raised *while the handler
    /// runs* (e.g. an [`tta_model::io::IrqAt::MmioStore`] key landing on
    /// one of the handler's own stores) redelivers at this same boundary,
    /// exactly as the simulators re-poll at the loop top after an
    /// interrupt return. Each delivery burns fuel inside the handler, so
    /// a self-sustaining storm terminates as `FuelExhausted`.
    #[allow(clippy::too_many_arguments)]
    fn maybe_deliver(
        &self,
        io: Option<&mut IoSystem>,
        mem: &mut Vec<u8>,
        stats: &mut ExecStats,
        fuel: &mut u64,
        depth: u32,
    ) -> Result<(), IrError> {
        let Some(io) = io else { return Ok(()) };
        loop {
            io.poll(stats.insts);
            let Some(line) = io.deliverable() else {
                return Ok(());
            };
            let Some(handler) = self.module.irq_handler() else {
                return Ok(());
            };
            io.begin_delivery(line);
            self.call(handler, &[], mem, stats, fuel, depth + 1, Some(&mut *io))?;
            io.finish_handler();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn call(
        &self,
        f: &Function,
        args: &[i32],
        mem: &mut Vec<u8>,
        stats: &mut ExecStats,
        fuel: &mut u64,
        depth: u32,
        mut io: Option<&mut IoSystem>,
    ) -> Result<Option<i32>, IrError> {
        if depth > self.max_depth {
            return Err(IrError::DepthExceeded);
        }
        if args.len() != f.params.len() {
            return Err(IrError::BadCall(format!(
                "{} expects {} args, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        let mut regs: Vec<Option<i32>> = vec![None; f.next_vreg as usize];
        for (p, &v) in f.params.iter().zip(args) {
            regs[p.0 as usize] = Some(v);
        }

        let read = |regs: &[Option<i32>], r: VReg| -> Result<i32, IrError> {
            regs.get(r.0 as usize)
                .copied()
                .flatten()
                .ok_or_else(|| IrError::UndefinedRead(r, f.name.clone()))
        };
        let eval = |regs: &[Option<i32>], o: Operand| -> Result<i32, IrError> {
            match o {
                Operand::Reg(r) => read(regs, r),
                Operand::Imm(v) => Ok(v),
            }
        };

        let mut block = Function::ENTRY;
        loop {
            let b = f.block(block);
            for inst in &b.insts {
                self.maybe_deliver(io.as_deref_mut(), mem, stats, fuel, depth)?;
                if *fuel == 0 {
                    return Err(IrError::FuelExhausted);
                }
                *fuel -= 1;
                stats.insts += 1;
                match inst {
                    Inst::Bin { op, dst, a, b } => {
                        let va = eval(&regs, *a)?;
                        let vb = eval(&regs, *b)?;
                        regs[dst.0 as usize] = Some(op.eval_alu(va, vb));
                    }
                    Inst::Un { op, dst, a } => {
                        let va = eval(&regs, *a)?;
                        regs[dst.0 as usize] = Some(op.eval_alu(va, 0));
                    }
                    Inst::Copy { dst, src } => {
                        let v = eval(&regs, *src)?;
                        regs[dst.0 as usize] = Some(v);
                    }
                    Inst::Load { op, dst, addr, .. } => {
                        stats.loads += 1;
                        let a = eval(&regs, *addr)? as u32;
                        let v = match io.as_deref_mut() {
                            Some(sys) if a >= MMIO_BASE => sys.load(*op, a, stats.insts)?,
                            _ => tta_model::mem::load(mem, *op, a)?,
                        };
                        regs[dst.0 as usize] = Some(v);
                    }
                    Inst::Store {
                        op, value, addr, ..
                    } => {
                        stats.stores += 1;
                        let v = eval(&regs, *value)?;
                        let a = eval(&regs, *addr)? as u32;
                        match io.as_deref_mut() {
                            Some(sys) if a >= MMIO_BASE => sys.store(*op, a, v, stats.insts)?,
                            _ => tta_model::mem::store(mem, *op, a, v)?,
                        }
                    }
                    Inst::Call {
                        func,
                        args: call_args,
                        dst,
                    } => {
                        stats.calls += 1;
                        let callee = self.module.func(*func);
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            vals.push(eval(&regs, *a)?);
                        }
                        let r = self.call(
                            callee,
                            &vals,
                            mem,
                            stats,
                            fuel,
                            depth + 1,
                            io.as_deref_mut(),
                        )?;
                        if let Some(d) = dst {
                            let v = r.ok_or_else(|| {
                                IrError::BadCall(format!(
                                    "{} returns no value but caller expects one",
                                    callee.name
                                ))
                            })?;
                            regs[d.0 as usize] = Some(v);
                        }
                    }
                }
            }
            self.maybe_deliver(io.as_deref_mut(), mem, stats, fuel, depth)?;
            if *fuel == 0 {
                return Err(IrError::FuelExhausted);
            }
            *fuel -= 1;
            stats.terminators += 1;
            match b.term.as_ref().expect("verified function has terminators") {
                Terminator::Jump(t) => block = *t,
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    block = if eval(&regs, *cond)? != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                }
                Terminator::Ret(v) => {
                    return match v {
                        Some(o) => Ok(Some(eval(&regs, *o)?)),
                        None => Ok(None),
                    };
                }
            }
        }
    }
}

/// Convenience: run a module and return just the return value, panicking on
/// error. Used heavily in tests.
pub fn run_ret(module: &Module, args: &[i32]) -> i32 {
    Interpreter::new(module)
        .run(args)
        .unwrap_or_else(|e| panic!("{}: {e}", module.name))
        .ret
        .expect("entry returns a value")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};

    fn loop_sum_module(n: i32) -> Module {
        // sum of 0..n via a loop
        let mut mb = ModuleBuilder::new("loop_sum");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let i = fb.copy(0);
        let sum = fb.copy(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        let c = fb.lt(i, n);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let s2 = fb.add(sum, i);
        fb.copy_to(sum, s2);
        let i2 = fb.add(i, 1);
        fb.copy_to(i, i2);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(sum);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        mb.finish()
    }

    #[test]
    fn loop_sum() {
        assert_eq!(run_ret(&loop_sum_module(10), &[]), 45);
        assert_eq!(run_ret(&loop_sum_module(0), &[]), 0);
        assert_eq!(run_ret(&loop_sum_module(1000), &[]), 499_500);
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let mut mb = ModuleBuilder::new("inf");
        let mut fb = FunctionBuilder::new("main", 0, false);
        let head = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        fb.jump(head);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        let e = Interpreter::new(&m).with_fuel(1000).run(&[]).unwrap_err();
        assert_eq!(e, IrError::FuelExhausted);
    }

    #[test]
    fn undefined_read_detected() {
        let mut mb = ModuleBuilder::new("undef");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let ghost = fb.vreg(); // never assigned
        let v = fb.add(ghost, 1);
        fb.ret(v);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        match Interpreter::new(&m).run(&[]) {
            Err(IrError::UndefinedRead(..)) => {}
            other => panic!("expected UndefinedRead, got {other:?}"),
        }
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut mb = ModuleBuilder::new("call");
        // callee: f(a, b) = a * 2 + b
        let mut cb = FunctionBuilder::new("f", 2, true);
        let d = cb.mul(cb.param(0), 2);
        let r = cb.add(d, cb.param(1));
        cb.ret(r);
        let callee = mb.add(cb.finish());
        let mut fb = FunctionBuilder::new("main", 1, true);
        let x = fb.call(callee, &[Operand::Reg(fb.param(0)), Operand::Imm(5)]);
        fb.ret(x);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        let r = Interpreter::new(&m).run(&[20]).unwrap();
        assert_eq!(r.ret, Some(45));
        assert_eq!(r.stats.calls, 1);
    }

    #[test]
    fn memory_survives_across_calls_and_is_returned() {
        let mut mb = ModuleBuilder::new("mem");
        let buf = mb.buffer(8);
        let mut cb = FunctionBuilder::new("poke", 0, false);
        cb.stw(0x55aa, buf.base(), buf.region);
        cb.ret_void();
        let poke = mb.add(cb.finish());
        let mut fb = FunctionBuilder::new("main", 0, true);
        fb.call_void(poke, &[]);
        let v = fb.ldw(buf.base(), buf.region);
        fb.ret(v);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        let r = Interpreter::new(&m).run(&[]).unwrap();
        assert_eq!(r.ret, Some(0x55aa));
        assert_eq!(r.memory[buf.addr as usize], 0xaa);
    }

    #[test]
    fn mmio_interrupt_delivery_runs_handler_between_stores() {
        use crate::inst::MemRegion;
        use tta_model::io::{IoSpec, IoSystem, IrqAt, SOFT_LINE};
        use tta_model::io::{IRQ_CTRL_ADDR, UART_RX_ADDR, UART_TX_ADDR};

        let mut mb = ModuleBuilder::new("reactive");
        let buf = mb.buffer(8);
        // Handler: pop an rx byte, accumulate it into buf, echo it.
        let mut hb = FunctionBuilder::new("__irq", 0, false);
        let rx = hb.ldw(UART_RX_ADDR as i32, MemRegion::ANY);
        let old = hb.ldw(buf.base(), buf.region);
        let sum = hb.add(old, rx);
        hb.stw(sum, buf.base(), buf.region);
        hb.stw(rx, UART_TX_ADDR as i32, MemRegion::ANY);
        hb.ret_void();
        mb.add(hb.finish());
        // Main: enable IE (mmio store #1), send two markers (#2, #3).
        let mut fb = FunctionBuilder::new("main", 0, true);
        fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
        fb.stw(0x10, UART_TX_ADDR as i32, MemRegion::ANY);
        fb.stw(0x20, UART_TX_ADDR as i32, MemRegion::ANY);
        let v = fb.ldw(buf.base(), buf.region);
        fb.ret(v);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        crate::verify::verify_module(&m).unwrap();

        // One interrupt after the 2nd MMIO store, one rx byte ready.
        let spec = IoSpec {
            schedule: vec![(IrqAt::MmioStore(2), SOFT_LINE)],
            uart_rx: vec![(0, 7)],
            ..IoSpec::default()
        };
        let mut io = IoSystem::new(&spec);
        let r = Interpreter::new(&m).run_with_io(&[], &mut io).unwrap();
        // The handler ran between the two marker stores: tx order pins it.
        assert_eq!(io.uart_tx(), vec![0x10, 7, 0x20]);
        assert_eq!(r.ret, Some(7));
        assert_eq!(io.irqs_delivered, 1);
        // With a handler-echo store in between, the main markers still
        // count: 1 (IE) + 2 markers + 1 handler echo.
        assert_eq!(io.mmio_stores(), 4);
    }

    #[test]
    fn irq_handler_signature_is_verified() {
        let mut mb = ModuleBuilder::new("badirq");
        let mut hb = FunctionBuilder::new("__irq", 1, false);
        hb.ret_void();
        mb.add(hb.finish());
        let mut fb = FunctionBuilder::new("main", 0, false);
        fb.ret_void();
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        assert!(crate::verify::verify_module(&m).is_err());
    }

    #[test]
    fn stats_count_classes() {
        let m = loop_sum_module(3);
        let r = Interpreter::new(&m).run(&[]).unwrap();
        assert!(r.stats.insts > 0);
        assert!(r.stats.terminators >= 4);
        assert_eq!(r.stats.loads, 0);
        assert_eq!(r.stats.stores, 0);
    }
}
