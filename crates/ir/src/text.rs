//! Textual serialisation of IR modules.
//!
//! A line-oriented, whitespace-tokenised format that round-trips every
//! [`Module`] the builder can produce. Its purpose is the differential
//! fuzzer's regression corpus (`crates/fuzz/corpus/*.ir`): when the fuzzer
//! shrinks a diverging program to a minimal repro, the repro is written in
//! this format, committed, and replayed by an integration test forever
//! after. The format is also handy for dumping modules while debugging.
//!
//! Grammar (one construct per line; `;` starts a comment — `#` is taken
//! by immediate operands):
//!
//! ```text
//! module <name>
//! memsize <bytes>
//! entry <func-index>
//! data <addr> <hex-bytes>            # zero or more
//! func <name> <nparams> <ret|void> <next-vreg>
//! block                              # starts block 0, 1, ... of the func
//!   copy  v1 #42
//!   bin   add v2 v1 #-1
//!   un    sxhw v3 v2
//!   load  ldw v4 v2 r1               # dst addr region
//!   store stw v4 #16 r1              # value addr region
//!   call  1 v5 v1 #3                 # callee dst|_ args...
//!   jump 1                           # terminators end the block
//!   branch v2 1 2
//!   ret v2                           # or: ret _
//! ```

use crate::func::{Block, DataInit, Function, Module};
use crate::inst::{BlockId, FuncId, Inst, MemRegion, Operand, Terminator, VReg};
use tta_model::Opcode;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Serialise a module to its textual form.
pub fn module_to_text(m: &Module) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "module {}", m.name);
    let _ = writeln!(s, "memsize {}", m.mem_size);
    let _ = writeln!(s, "entry {}", m.entry.0);
    for d in &m.data {
        let hex: String = d.bytes.iter().map(|b| format!("{b:02x}")).collect();
        let _ = writeln!(s, "data {} {hex}", d.addr);
    }
    for f in &m.funcs {
        let _ = writeln!(
            s,
            "func {} {} {} {}",
            f.name,
            f.params.len(),
            if f.returns_value { "ret" } else { "void" },
            f.next_vreg
        );
        for b in &f.blocks {
            let _ = writeln!(s, "block");
            for i in &b.insts {
                let _ = writeln!(s, "  {}", inst_to_text(i));
            }
            match &b.term {
                Some(Terminator::Jump(t)) => {
                    let _ = writeln!(s, "  jump {}", t.0);
                }
                Some(Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                }) => {
                    let _ = writeln!(
                        s,
                        "  branch {} {} {}",
                        operand(*cond),
                        if_true.0,
                        if_false.0
                    );
                }
                Some(Terminator::Ret(Some(o))) => {
                    let _ = writeln!(s, "  ret {}", operand(*o));
                }
                Some(Terminator::Ret(None)) => {
                    let _ = writeln!(s, "  ret _");
                }
                None => {
                    let _ = writeln!(s, "  unterminated");
                }
            }
        }
    }
    s
}

fn operand(o: Operand) -> String {
    match o {
        Operand::Reg(r) => format!("v{}", r.0),
        Operand::Imm(v) => format!("#{v}"),
    }
}

fn inst_to_text(i: &Inst) -> String {
    match i {
        Inst::Bin { op, dst, a, b } => {
            format!("bin {op} v{} {} {}", dst.0, operand(*a), operand(*b))
        }
        Inst::Un { op, dst, a } => format!("un {op} v{} {}", dst.0, operand(*a)),
        Inst::Copy { dst, src } => format!("copy v{} {}", dst.0, operand(*src)),
        Inst::Load {
            op,
            dst,
            addr,
            region,
        } => format!("load {op} v{} {} r{}", dst.0, operand(*addr), region.0),
        Inst::Store {
            op,
            value,
            addr,
            region,
        } => format!(
            "store {op} {} {} r{}",
            operand(*value),
            operand(*addr),
            region.0
        ),
        Inst::Call { func, args, dst } => {
            let mut s = format!(
                "call {} {}",
                func.0,
                match dst {
                    Some(d) => format!("v{}", d.0),
                    None => "_".into(),
                }
            );
            for a in args {
                s.push(' ');
                s.push_str(&operand(*a));
            }
            s
        }
    }
}

/// Look an opcode up by its Table-I mnemonic.
pub fn opcode_from_mnemonic(m: &str) -> Option<Opcode> {
    Opcode::ALL.into_iter().find(|o| o.mnemonic() == m)
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

/// One meaningful line: its 1-based number plus its tokens.
type TokLine<'a> = (usize, Vec<&'a str>);

impl<'a> Parser<'a> {
    fn next_line(&mut self) -> Option<TokLine<'a>> {
        for (i, raw) in self.lines.by_ref() {
            let line = match raw.split_once(';') {
                Some((before, _)) => before,
                None => raw,
            };
            let toks: Vec<&str> = line.split_whitespace().collect();
            if !toks.is_empty() {
                return Some((i + 1, toks));
            }
        }
        None
    }
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

fn parse_u32(line: usize, tok: &str, what: &str) -> Result<u32, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("bad {what} `{tok}`")))
}

fn parse_vreg(line: usize, tok: &str) -> Result<VReg, ParseError> {
    let rest = tok
        .strip_prefix('v')
        .ok_or_else(|| err(line, format!("expected vreg, got `{tok}`")))?;
    Ok(VReg(parse_u32(line, rest, "vreg")?))
}

fn parse_operand(line: usize, tok: &str) -> Result<Operand, ParseError> {
    if let Some(rest) = tok.strip_prefix('#') {
        let v: i32 = rest
            .parse()
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
        Ok(Operand::Imm(v))
    } else {
        Ok(Operand::Reg(parse_vreg(line, tok)?))
    }
}

fn parse_region(line: usize, tok: &str) -> Result<MemRegion, ParseError> {
    let rest = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected region, got `{tok}`")))?;
    let v = parse_u32(line, rest, "region")?;
    Ok(MemRegion(v as u16))
}

fn parse_opcode(line: usize, tok: &str) -> Result<Opcode, ParseError> {
    opcode_from_mnemonic(tok).ok_or_else(|| err(line, format!("unknown opcode `{tok}`")))
}

/// Expect exactly `n` tokens after the keyword.
fn arity(line: usize, toks: &[&str], n: usize) -> Result<(), ParseError> {
    if toks.len() != n + 1 {
        return Err(err(
            line,
            format!("`{}` expects {n} operands, got {}", toks[0], toks.len() - 1),
        ));
    }
    Ok(())
}

/// Parse the textual form back into a [`Module`]. The result is *not*
/// verified; callers that execute it should run
/// [`verify_module`](crate::verify::verify_module) first.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut p = Parser {
        lines: text.lines().enumerate(),
    };

    let (ln, toks) = p.next_line().ok_or_else(|| err(0, "empty input"))?;
    if toks[0] != "module" || toks.len() != 2 {
        return Err(err(ln, "expected `module <name>`"));
    }
    let name = toks[1].to_string();

    let (ln, toks) = p.next_line().ok_or_else(|| err(ln, "missing `memsize`"))?;
    if toks[0] != "memsize" || toks.len() != 2 {
        return Err(err(ln, "expected `memsize <bytes>`"));
    }
    let mem_size = parse_u32(ln, toks[1], "memsize")?;

    let (ln, toks) = p.next_line().ok_or_else(|| err(ln, "missing `entry`"))?;
    if toks[0] != "entry" || toks.len() != 2 {
        return Err(err(ln, "expected `entry <func-index>`"));
    }
    let entry = FuncId(parse_u32(ln, toks[1], "entry index")?);

    let mut data = Vec::new();
    let mut funcs = Vec::new();

    let mut pending = p.next_line();
    // data lines (all before the first func)
    while let Some((ln, toks)) = &pending {
        if toks[0] != "data" {
            break;
        }
        if toks.len() != 3 {
            return Err(err(*ln, "expected `data <addr> <hex>`"));
        }
        let addr = parse_u32(*ln, toks[1], "data address")?;
        let hex = toks[2];
        if hex.len() % 2 != 0 {
            return Err(err(*ln, "odd-length hex data"));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let b = u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| err(*ln, format!("bad hex byte `{}`", &hex[i..i + 2])))?;
            bytes.push(b);
        }
        data.push(DataInit { addr, bytes });
        pending = p.next_line();
    }

    // functions
    while let Some((ln, toks)) = pending {
        if toks[0] != "func" {
            return Err(err(ln, format!("expected `func`, got `{}`", toks[0])));
        }
        if toks.len() != 5 {
            return Err(err(
                ln,
                "expected `func <name> <nparams> <ret|void> <next-vreg>`",
            ));
        }
        let fname = toks[1].to_string();
        let nparams = parse_u32(ln, toks[2], "param count")?;
        let returns_value = match toks[3] {
            "ret" => true,
            "void" => false,
            other => return Err(err(ln, format!("expected `ret`/`void`, got `{other}`"))),
        };
        let next_vreg = parse_u32(ln, toks[4], "next-vreg")?;
        let mut f = Function {
            name: fname,
            params: (0..nparams).map(VReg).collect(),
            returns_value,
            blocks: Vec::new(),
            next_vreg,
        };

        pending = p.next_line();
        while let Some((ln, toks)) = pending.clone() {
            if toks[0] != "block" {
                break;
            }
            let mut block = Block::new();
            pending = p.next_line();
            while let Some((ln2, toks2)) = pending.clone() {
                let toks2s: Vec<&str> = toks2.clone();
                match toks2s[0] {
                    // -- terminators close the block --
                    "jump" => {
                        arity(ln2, &toks2s, 1)?;
                        block.term = Some(Terminator::Jump(BlockId(parse_u32(
                            ln2, toks2s[1], "block",
                        )?)));
                        pending = p.next_line();
                        break;
                    }
                    "branch" => {
                        arity(ln2, &toks2s, 3)?;
                        block.term = Some(Terminator::Branch {
                            cond: parse_operand(ln2, toks2s[1])?,
                            if_true: BlockId(parse_u32(ln2, toks2s[2], "block")?),
                            if_false: BlockId(parse_u32(ln2, toks2s[3], "block")?),
                        });
                        pending = p.next_line();
                        break;
                    }
                    "ret" => {
                        arity(ln2, &toks2s, 1)?;
                        let v = if toks2s[1] == "_" {
                            None
                        } else {
                            Some(parse_operand(ln2, toks2s[1])?)
                        };
                        block.term = Some(Terminator::Ret(v));
                        pending = p.next_line();
                        break;
                    }
                    "unterminated" => {
                        block.term = None;
                        pending = p.next_line();
                        break;
                    }
                    // -- instructions --
                    "bin" => {
                        arity(ln2, &toks2s, 4)?;
                        block.insts.push(Inst::Bin {
                            op: parse_opcode(ln2, toks2s[1])?,
                            dst: parse_vreg(ln2, toks2s[2])?,
                            a: parse_operand(ln2, toks2s[3])?,
                            b: parse_operand(ln2, toks2s[4])?,
                        });
                    }
                    "un" => {
                        arity(ln2, &toks2s, 3)?;
                        block.insts.push(Inst::Un {
                            op: parse_opcode(ln2, toks2s[1])?,
                            dst: parse_vreg(ln2, toks2s[2])?,
                            a: parse_operand(ln2, toks2s[3])?,
                        });
                    }
                    "copy" => {
                        arity(ln2, &toks2s, 2)?;
                        block.insts.push(Inst::Copy {
                            dst: parse_vreg(ln2, toks2s[1])?,
                            src: parse_operand(ln2, toks2s[2])?,
                        });
                    }
                    "load" => {
                        arity(ln2, &toks2s, 4)?;
                        block.insts.push(Inst::Load {
                            op: parse_opcode(ln2, toks2s[1])?,
                            dst: parse_vreg(ln2, toks2s[2])?,
                            addr: parse_operand(ln2, toks2s[3])?,
                            region: parse_region(ln2, toks2s[4])?,
                        });
                    }
                    "store" => {
                        arity(ln2, &toks2s, 4)?;
                        block.insts.push(Inst::Store {
                            op: parse_opcode(ln2, toks2s[1])?,
                            value: parse_operand(ln2, toks2s[2])?,
                            addr: parse_operand(ln2, toks2s[3])?,
                            region: parse_region(ln2, toks2s[4])?,
                        });
                    }
                    "call" => {
                        if toks2s.len() < 3 {
                            return Err(err(ln2, "expected `call <callee> <dst|_> args...`"));
                        }
                        let func = FuncId(parse_u32(ln2, toks2s[1], "callee")?);
                        let dst = if toks2s[2] == "_" {
                            None
                        } else {
                            Some(parse_vreg(ln2, toks2s[2])?)
                        };
                        let args = toks2s[3..]
                            .iter()
                            .map(|t| parse_operand(ln2, t))
                            .collect::<Result<Vec<_>, _>>()?;
                        block.insts.push(Inst::Call { func, args, dst });
                    }
                    other => {
                        return Err(err(ln2, format!("unknown construct `{other}`")));
                    }
                }
                pending = p.next_line();
                if pending.is_none() {
                    return Err(err(ln, "block not terminated before end of input"));
                }
            }
            f.blocks.push(block);
        }
        funcs.push(f);
    }

    Ok(Module {
        name,
        funcs,
        entry,
        data,
        mem_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::interp::Interpreter;

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("sample");
        let buf = mb.data_words(&[11, 22, 33]);
        let mut cb = FunctionBuilder::new("leaf", 2, true);
        let s = cb.add(cb.param(0), cb.param(1));
        cb.ret(s);
        let leaf = mb.add(cb.finish());
        let mut fb = FunctionBuilder::new("main", 0, true);
        let a = fb.ldw(buf.word(1), buf.region);
        let b = fb.sxhw(a);
        let c = fb.call(leaf, &[Operand::Reg(b), Operand::Imm(-7)]);
        fb.stw(c, buf.word(0), buf.region);
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.sth(c, buf.at(4), buf.region);
        fb.jump(exit);
        fb.switch_to(exit);
        fb.ret(c);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        mb.finish()
    }

    #[test]
    fn round_trip_preserves_module_exactly() {
        let m = sample_module();
        let text = module_to_text(&m);
        let back = parse_module(&text).unwrap();
        assert_eq!(m, back);
        // And again, for stability.
        assert_eq!(module_to_text(&back), text);
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let m = sample_module();
        let back = parse_module(&module_to_text(&m)).unwrap();
        crate::verify::verify_module(&back).unwrap();
        let a = Interpreter::new(&m).run(&[]).unwrap();
        let b = Interpreter::new(&back).run(&[]).unwrap();
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.memory, b.memory);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\
; a corpus header comment
module tiny

memsize 64
entry 0          ; trailing comment
func main 0 ret 1
block
  copy v0 #5
  ret v0
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.name, "tiny");
        assert_eq!(crate::interp::run_ret(&m, &[]), 5);
    }

    #[test]
    fn data_bytes_round_trip() {
        let mut mb = ModuleBuilder::new("d");
        let _ = mb.data(&[0x00, 0xff, 0x7f, 0x80]);
        let mut fb = FunctionBuilder::new("main", 0, false);
        fb.ret_void();
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let m = mb.finish();
        let back = parse_module(&module_to_text(&m)).unwrap();
        assert_eq!(m.data, back.data);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text =
            "module m\nmemsize 64\nentry 0\nfunc main 0 ret 1\nblock\n  bogus v0 #1\n  ret v0\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.msg.contains("bogus"), "{e}");
    }

    #[test]
    fn mnemonic_lookup_total() {
        for op in Opcode::ALL {
            assert_eq!(opcode_from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(opcode_from_mnemonic("nope"), None);
    }
}
