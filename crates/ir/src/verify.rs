//! Static verification of IR modules.
//!
//! Checks structural well-formedness (terminated blocks, in-range block and
//! function references, opcode classes) and performs a definite-assignment
//! dataflow analysis to reject any register that could be read before being
//! written on some path. The compiler requires verified input; the kernels
//! in `tta-chstone` are all verified in their tests.

use crate::func::{Function, Module};
use crate::inst::{FuncId, Inst, Operand, Terminator, VReg};
use tta_model::OpClass;

/// A verification problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module. Returns all problems found.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    if (m.entry.0 as usize) >= m.funcs.len() {
        errs.push(VerifyError(format!(
            "entry function f{} out of range",
            m.entry.0
        )));
    }
    for d in &m.data {
        let end = d.addr as u64 + d.bytes.len() as u64;
        if end > m.mem_size as u64 {
            errs.push(VerifyError(format!(
                "data initialiser at {:#x}..{:#x} exceeds memory size {:#x}",
                d.addr, end, m.mem_size
            )));
        }
    }
    for f in &m.funcs {
        if let Err(mut es) = verify_function(f, Some(m)) {
            errs.append(&mut es);
        }
    }
    // The reserved interrupt handler has a fixed signature: no
    // parameters (there is nothing to pass at delivery) and no return
    // value (it resumes the interrupted context instead).
    if let Some(h) = m.irq_handler() {
        if !h.params.is_empty() || h.returns_value {
            errs.push(VerifyError(format!(
                "{}: interrupt handler must take no parameters and return no value",
                h.name
            )));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verify one function. When `module` is given, call targets and signatures
/// are checked as well.
pub fn verify_function(f: &Function, module: Option<&Module>) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    let mut err = |m: String| errs.push(VerifyError(format!("{}: {m}", f.name)));

    if f.blocks.is_empty() {
        err("function has no blocks".into());
        return Err(errs);
    }

    // Structure and opcode classes.
    for id in f.block_ids() {
        let b = f.block(id);
        for (i, inst) in b.insts.iter().enumerate() {
            match inst {
                Inst::Bin { op, .. } => {
                    if op.class() != OpClass::Alu || op.num_inputs() != 2 {
                        err(format!("{id}[{i}]: {op} is not a two-input ALU op"));
                    }
                }
                Inst::Un { op, .. } => {
                    if op.class() != OpClass::Alu || op.num_inputs() != 1 {
                        err(format!("{id}[{i}]: {op} is not a one-input ALU op"));
                    }
                }
                Inst::Load { op, .. } => {
                    if !op.is_load() {
                        err(format!("{id}[{i}]: {op} is not a load"));
                    }
                }
                Inst::Store { op, .. } => {
                    if !op.is_store() {
                        err(format!("{id}[{i}]: {op} is not a store"));
                    }
                }
                Inst::Copy { .. } => {}
                Inst::Call { func, args, dst } => {
                    if let Some(m) = module {
                        if (func.0 as usize) >= m.funcs.len() {
                            err(format!("{id}[{i}]: call to undefined f{}", func.0));
                        } else {
                            let callee = m.func(*func);
                            if callee.params.len() != args.len() {
                                err(format!(
                                    "{id}[{i}]: call to {} passes {} args, expects {}",
                                    callee.name,
                                    args.len(),
                                    callee.params.len()
                                ));
                            }
                            if dst.is_some() && !callee.returns_value {
                                err(format!(
                                    "{id}[{i}]: call expects a value but {} returns none",
                                    callee.name
                                ));
                            }
                        }
                    }
                }
            }
        }
        match &b.term {
            None => err(format!("{id} is unterminated")),
            Some(t) => {
                for s in t.successors() {
                    if (s.0 as usize) >= f.blocks.len() {
                        err(format!("{id}: terminator targets out-of-range {s}"));
                    }
                }
                if let Terminator::Ret(v) = t {
                    if v.is_some() != f.returns_value {
                        err(format!(
                            "{id}: return {} a value but function {}",
                            if v.is_some() { "carries" } else { "lacks" },
                            if f.returns_value {
                                "returns one"
                            } else {
                                "returns none"
                            }
                        ));
                    }
                }
            }
        }
    }

    // Definite assignment.
    if errs.is_empty() {
        definite_assignment(f, &mut errs);
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Forward "definitely assigned" dataflow: a register may only be read where
/// every path from entry has assigned it.
#[allow(clippy::needless_range_loop)]
fn definite_assignment(f: &Function, errs: &mut Vec<VerifyError>) {
    let n = f.next_vreg as usize;
    let nblocks = f.blocks.len();
    let full: Vec<u64> = vec![!0u64; n.div_ceil(64)];
    let mut entry_set = vec![0u64; n.div_ceil(64)];
    for p in &f.params {
        entry_set[p.0 as usize / 64] |= 1 << (p.0 as usize % 64);
    }

    // in[b] starts at "all assigned" except for entry; iterate to fixpoint.
    let mut ins: Vec<Vec<u64>> = vec![full.clone(); nblocks];
    ins[0] = entry_set;
    let preds = f.predecessors();
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nblocks {
            // Meet over predecessors (entry keeps its params-only set).
            if bi != 0 && !preds[bi].is_empty() {
                let mut new_in = full.clone();
                for p in &preds[bi] {
                    let out = block_out(f, p.0 as usize, &ins[p.0 as usize]);
                    for (a, b) in new_in.iter_mut().zip(&out) {
                        *a &= b;
                    }
                }
                if new_in != ins[bi] {
                    ins[bi] = new_in;
                    changed = true;
                }
            }
        }
    }

    // Check uses against the fixpoint.
    for bi in 0..nblocks {
        let mut set = ins[bi].clone();
        let b = &f.blocks[bi];
        let test = |set: &[u64], r: VReg| set[r.0 as usize / 64] >> (r.0 as usize % 64) & 1 == 1;
        for (i, inst) in b.insts.iter().enumerate() {
            for u in inst.uses() {
                if !test(&set, u) {
                    errs.push(VerifyError(format!(
                        "{}: bb{bi}[{i}]: {u} may be read before assignment",
                        f.name
                    )));
                }
            }
            if let Some(d) = inst.def() {
                set[d.0 as usize / 64] |= 1 << (d.0 as usize % 64);
            }
        }
        if let Some(t) = &b.term {
            for u in t.uses() {
                if !test(&set, u) {
                    errs.push(VerifyError(format!(
                        "{}: bb{bi} terminator: {u} may be read before assignment",
                        f.name
                    )));
                }
            }
        }
    }
}

fn block_out(f: &Function, bi: usize, in_set: &[u64]) -> Vec<u64> {
    let mut set = in_set.to_vec();
    for inst in &f.blocks[bi].insts {
        if let Some(d) = inst.def() {
            set[d.0 as usize / 64] |= 1 << (d.0 as usize % 64);
        }
    }
    set
}

/// Whether the module's call graph is acyclic (required by the compiler's
/// exhaustive inliner). Returns the name of a function on a cycle if not.
pub fn find_recursion(m: &Module) -> Option<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn dfs(m: &Module, f: FuncId, marks: &mut [Mark]) -> Option<String> {
        marks[f.0 as usize] = Mark::Grey;
        for b in &m.func(f).blocks {
            for inst in &b.insts {
                if let Inst::Call { func, .. } = inst {
                    match marks[func.0 as usize] {
                        Mark::Grey => return Some(m.func(*func).name.clone()),
                        Mark::White => {
                            if let Some(n) = dfs(m, *func, marks) {
                                return Some(n);
                            }
                        }
                        Mark::Black => {}
                    }
                }
            }
        }
        marks[f.0 as usize] = Mark::Black;
        None
    }
    let mut marks = vec![Mark::White; m.funcs.len()];
    for i in 0..m.funcs.len() {
        if marks[i] == Mark::White {
            if let Some(n) = dfs(m, FuncId(i as u32), &mut marks) {
                return Some(n);
            }
        }
    }
    None
}

/// Returns all immediate constants in the function (used by the compiler's
/// constant legalisation and by tests).
pub fn collect_immediates(f: &Function) -> Vec<i32> {
    let mut v = Vec::new();
    let mut push = |o: &Operand| {
        if let Operand::Imm(c) = o {
            v.push(*c);
        }
    };
    for b in &f.blocks {
        for inst in &b.insts {
            match inst {
                Inst::Bin { a, b, .. } => {
                    push(a);
                    push(b);
                }
                Inst::Un { a, .. } => push(a),
                Inst::Copy { src, .. } => push(src),
                Inst::Load { addr, .. } => push(addr),
                Inst::Store { value, addr, .. } => {
                    push(value);
                    push(addr);
                }
                Inst::Call { args, .. } => args.iter().for_each(&mut push),
            }
        }
        if let Some(Terminator::Branch { cond, .. }) = &b.term {
            push(cond);
        }
        if let Some(Terminator::Ret(Some(o))) = &b.term {
            push(o);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::inst::Operand;

    fn module_of(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.set_entry(id);
        mb.finish()
    }

    #[test]
    fn accepts_well_formed() {
        let mut fb = FunctionBuilder::new("main", 1, true);
        let v = fb.add(fb.param(0), 1);
        fb.ret(v);
        assert!(verify_module(&module_of(fb.finish())).is_ok());
    }

    #[test]
    fn rejects_unterminated_block() {
        let mut fb = FunctionBuilder::new("main", 0, false);
        let _dangling = fb.new_block();
        fb.ret_void();
        let errs = verify_module(&module_of(fb.finish())).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("unterminated")));
    }

    #[test]
    fn rejects_use_before_def_on_one_path() {
        // v defined only on the true path but used after the merge.
        let mut fb = FunctionBuilder::new("main", 1, true);
        let v = fb.vreg();
        let t = fb.new_block();
        let merge = fb.new_block();
        fb.branch(fb.param(0), t, merge);
        fb.switch_to(t);
        fb.copy_to(v, 7);
        fb.jump(merge);
        fb.switch_to(merge);
        let r = fb.add(v, 1);
        fb.ret(r);
        let errs = verify_module(&module_of(fb.finish())).unwrap_err();
        assert!(
            errs.iter().any(|e| e.0.contains("before assignment")),
            "{errs:?}"
        );
    }

    #[test]
    fn accepts_def_on_all_paths() {
        let mut fb = FunctionBuilder::new("main", 1, true);
        let v = fb.vreg();
        let t = fb.new_block();
        let e = fb.new_block();
        let merge = fb.new_block();
        fb.branch(fb.param(0), t, e);
        fb.switch_to(t);
        fb.copy_to(v, 7);
        fb.jump(merge);
        fb.switch_to(e);
        fb.copy_to(v, 9);
        fb.jump(merge);
        fb.switch_to(merge);
        let r = fb.add(v, 1);
        fb.ret(r);
        assert!(verify_module(&module_of(fb.finish())).is_ok());
    }

    #[test]
    fn accepts_loop_carried_defs() {
        // A value defined before a loop and updated inside it must verify.
        let mut fb = FunctionBuilder::new("main", 0, true);
        let i = fb.copy(0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(head);
        fb.switch_to(head);
        let c = fb.lt(i, 10);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, 1);
        fb.copy_to(i, i2);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(i);
        assert!(verify_module(&module_of(fb.finish())).is_ok());
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut mb = ModuleBuilder::new("m");
        let mut cb = FunctionBuilder::new("f", 2, true);
        let s = cb.add(cb.param(0), cb.param(1));
        cb.ret(s);
        let callee = mb.add(cb.finish());
        let mut fb = FunctionBuilder::new("main", 0, true);
        let v = fb.call(callee, &[Operand::Imm(1)]); // one arg, needs two
        fb.ret(v);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let errs = verify_module(&mb.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("passes 1 args")));
    }

    #[test]
    fn rejects_return_mismatch() {
        let mut fb = FunctionBuilder::new("main", 0, true);
        fb.ret_void(); // function claims to return a value
        let errs = verify_module(&module_of(fb.finish())).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("lacks a value")));
    }

    #[test]
    fn detects_recursion() {
        let mut mb = ModuleBuilder::new("m");
        let f_id = mb.declare("f");
        let mut fb = FunctionBuilder::new("f", 0, false);
        fb.call_void(f_id, &[]);
        fb.ret_void();
        mb.define(f_id, fb.finish());
        mb.set_entry(f_id);
        let m = mb.finish();
        assert_eq!(find_recursion(&m), Some("f".into()));
    }

    #[test]
    fn acyclic_call_graph_passes() {
        let mut mb = ModuleBuilder::new("m");
        let mut leaf = FunctionBuilder::new("leaf", 0, false);
        leaf.ret_void();
        let leaf_id = mb.add(leaf.finish());
        let mut fb = FunctionBuilder::new("main", 0, false);
        fb.call_void(leaf_id, &[]);
        fb.call_void(leaf_id, &[]);
        fb.ret_void();
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        assert_eq!(find_recursion(&mb.finish()), None);
    }

    #[test]
    fn collects_immediates() {
        let mut fb = FunctionBuilder::new("main", 0, true);
        let a = fb.add(100_000, 3);
        let b = fb.mul(a, -7);
        fb.ret(b);
        let f = fb.finish();
        let imms = collect_immediates(&f);
        assert!(imms.contains(&100_000));
        assert!(imms.contains(&3));
        assert!(imms.contains(&-7));
    }

    #[test]
    fn rejects_oversized_data() {
        let mut mb = ModuleBuilder::new("m");
        let _ = mb.buffer(8);
        let mut fb = FunctionBuilder::new("main", 0, false);
        fb.ret_void();
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        let mut m = mb.finish();
        m.data.push(crate::func::DataInit {
            addr: m.mem_size - 2,
            bytes: vec![0; 8],
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("exceeds memory size")));
    }
}
