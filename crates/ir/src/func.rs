//! Functions, basic blocks, modules and static data.

use crate::inst::{BlockId, FuncId, Inst, Operand, Terminator, VReg};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions, in program order.
    pub insts: Vec<Inst>,
    /// The terminator. `None` only while the block is under construction;
    /// a verified function has a terminator in every block.
    pub term: Option<Terminator>,
}

impl Block {
    /// An empty, unterminated block.
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: None,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A function: parameters, blocks, and an entry block (always block 0).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name, unique within the module.
    pub name: String,
    /// Parameter registers, defined on entry.
    pub params: Vec<VReg>,
    /// Whether the function returns a value (all `Ret` terminators must
    /// agree with this).
    pub returns_value: bool,
    /// Basic blocks; [`BlockId`] indexes into this vector. Block 0 is the
    /// entry.
    pub blocks: Vec<Block>,
    /// Next unallocated virtual-register number.
    pub next_vreg: u32,
}

impl Function {
    /// Entry block id.
    pub const ENTRY: BlockId = BlockId(0);

    /// Look up a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Look up a block mutably.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Iterate block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Allocate a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Predecessor map: for each block, the blocks that jump to it.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for id in self.block_ids() {
            if let Some(t) = &self.block(id).term {
                for s in t.successors() {
                    preds[s.0 as usize].push(id);
                }
            }
        }
        preds
    }
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for id in self.block_ids() {
            writeln!(f, "{id}:")?;
            let b = self.block(id);
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
            match &b.term {
                Some(t) => writeln!(f, "  {t}")?,
                None => writeln!(f, "  <unterminated>")?,
            }
        }
        writeln!(f, "}}")
    }
}

/// A static data initialiser: `bytes` copied to absolute address `addr`
/// before execution starts.
#[derive(Debug, Clone, PartialEq)]
pub struct DataInit {
    /// Absolute load address.
    pub addr: u32,
    /// Initial bytes.
    pub bytes: Vec<u8>,
}

/// A whole program: functions, the entry function, static data and the data
/// memory size.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (benchmark name).
    pub name: String,
    /// All functions; [`FuncId`] indexes into this vector.
    pub funcs: Vec<Function>,
    /// The entry function, executed by `run`.
    pub entry: FuncId,
    /// Static data initialisers.
    pub data: Vec<DataInit>,
    /// Data memory size in bytes.
    pub mem_size: u32,
}

impl Module {
    /// Look up a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Look up the entry function.
    pub fn entry_func(&self) -> &Function {
        self.func(self.entry)
    }

    /// Build the initial memory image (zero-filled, then data initialisers
    /// applied).
    ///
    /// # Panics
    ///
    /// Panics if an initialiser falls outside `mem_size` (a verifier check
    /// reports this as an error first in normal use).
    pub fn initial_memory(&self) -> Vec<u8> {
        let mut mem = vec![0u8; self.mem_size as usize];
        for d in &self.data {
            let start = d.addr as usize;
            mem[start..start + d.bytes.len()].copy_from_slice(&d.bytes);
        }
        mem
    }

    /// Total instruction count over all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }

    /// The reserved interrupt handler — the function named `__irq`
    /// (see [`tta_model::io::IRQ_HANDLER_NAME`]) — if the module has
    /// one that is not also the entry. The verifier pins its shape:
    /// no parameters, no return value.
    pub fn irq_handler_id(&self) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == tta_model::io::IRQ_HANDLER_NAME)
            .map(|i| FuncId(i as u32))
            .filter(|&id| id != self.entry)
    }

    /// [`Module::irq_handler_id`], resolved to the function.
    pub fn irq_handler(&self) -> Option<&Function> {
        self.irq_handler_id().map(|id| self.func(id))
    }
}

/// Convenience conversions used pervasively by kernel builders.
pub fn imm(v: i32) -> Operand {
    Operand::Imm(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::Opcode;

    fn tiny() -> Function {
        let mut f = Function {
            name: "t".into(),
            params: vec![VReg(0)],
            returns_value: true,
            blocks: vec![Block::new(), Block::new(), Block::new()],
            next_vreg: 1,
        };
        let v = f.new_vreg();
        f.block_mut(BlockId(0)).insts.push(Inst::Bin {
            op: Opcode::Add,
            dst: v,
            a: Operand::Reg(VReg(0)),
            b: Operand::Imm(1),
        });
        f.block_mut(BlockId(0)).term = Some(Terminator::Branch {
            cond: Operand::Reg(v),
            if_true: BlockId(1),
            if_false: BlockId(2),
        });
        f.block_mut(BlockId(1)).term = Some(Terminator::Jump(BlockId(2)));
        f.block_mut(BlockId(2)).term = Some(Terminator::Ret(Some(Operand::Reg(v))));
        f
    }

    #[test]
    fn predecessors() {
        let f = tiny();
        let preds = f.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn vreg_allocation_is_monotonic() {
        let mut f = tiny();
        let a = f.new_vreg();
        let b = f.new_vreg();
        assert!(b.0 > a.0);
    }

    #[test]
    fn initial_memory_applies_data() {
        let m = Module {
            name: "m".into(),
            funcs: vec![],
            entry: FuncId(0),
            data: vec![DataInit {
                addr: 4,
                bytes: vec![1, 2, 3],
            }],
            mem_size: 16,
        };
        let mem = m.initial_memory();
        assert_eq!(mem.len(), 16);
        assert_eq!(&mem[4..7], &[1, 2, 3]);
        assert_eq!(mem[0], 0);
    }

    #[test]
    fn display_smoke() {
        let s = tiny().to_string();
        assert!(s.contains("bb0:"));
        assert!(s.contains("v1 = add v0, #1"));
        assert!(s.contains("ret v1"));
    }
}
