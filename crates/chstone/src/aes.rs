//! `aes` — AES-128 encryption (CHStone's `aes` workload).
//!
//! Expands a 128-bit key in-kernel and ECB-encrypts four 16-byte blocks,
//! with the S-box and round constants as in-memory tables. All state is
//! byte-addressed (`ldqu`/`stq`), matching the table-lookup-heavy profile
//! of the CHStone original; `xtime` uses a branch-free mask so MixColumns
//! stays straight-line code.

use crate::util::{for_range, if_then, XorShift32};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder, Operand, VReg};

const BLOCKS: usize = 4;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// ShiftRows source index per destination byte (column-major state layout).
const SHIFT: [usize; 16] = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];

fn key_bytes() -> [u8; 16] {
    let mut k = [0u8; 16];
    let mut rng = XorShift32(0x0ae5_cafe);
    for b in &mut k {
        *b = rng.next() as u8;
    }
    k
}

fn plaintext() -> Vec<u8> {
    let mut p = vec![0u8; BLOCKS * 16];
    let mut rng = XorShift32(0x9e37_79b9);
    for b in &mut p {
        *b = rng.next() as u8;
    }
    p
}

// ---- native reference ----

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0 })
}

fn expand_key(key: &[u8; 16]) -> [u8; 176] {
    let mut rk = [0u8; 176];
    rk[..16].copy_from_slice(key);
    for i in 4..44 {
        let mut t = [
            rk[4 * (i - 1)],
            rk[4 * (i - 1) + 1],
            rk[4 * (i - 1) + 2],
            rk[4 * (i - 1) + 3],
        ];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            rk[4 * i + j] = rk[4 * (i - 4) + j] ^ t[j];
        }
    }
    rk
}

fn encrypt_block(state: &mut [u8; 16], rk: &[u8; 176]) {
    let ark = |s: &mut [u8; 16], r: usize| {
        for i in 0..16 {
            s[i] ^= rk[16 * r + i];
        }
    };
    let sub_shift = |s: &mut [u8; 16]| {
        let old = *s;
        for i in 0..16 {
            s[i] = SBOX[old[SHIFT[i]] as usize];
        }
    };
    ark(state, 0);
    for r in 1..=9 {
        sub_shift(state);
        for c in 0..4 {
            let a: [u8; 4] = state[4 * c..4 * c + 4].try_into().unwrap();
            state[4 * c] = xtime(a[0]) ^ xtime(a[1]) ^ a[1] ^ a[2] ^ a[3];
            state[4 * c + 1] = a[0] ^ xtime(a[1]) ^ xtime(a[2]) ^ a[2] ^ a[3];
            state[4 * c + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ xtime(a[3]) ^ a[3];
            state[4 * c + 3] = xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ xtime(a[3]);
        }
        ark(state, r);
    }
    sub_shift(state);
    ark(state, 10);
}

/// Native reference: rotating-XOR checksum over all ciphertext bytes.
pub fn expected() -> i32 {
    let rk = expand_key(&key_bytes());
    let pt = plaintext();
    let mut sum: u32 = 1;
    for blk in 0..BLOCKS {
        let mut st: [u8; 16] = pt[blk * 16..blk * 16 + 16].try_into().unwrap();
        encrypt_block(&mut st, &rk);
        for b in st {
            sum = sum.rotate_left(5) ^ (b as u32);
        }
    }
    sum as i32
}

// ---- IR implementation ----

/// `xtime` as branch-free IR: `((x<<1) ^ ((-(x>>7)) & 0x1b)) & 0xff`.
fn emit_xtime(fb: &mut FunctionBuilder, x: VReg) -> VReg {
    let sh = fb.shl(x, 1);
    let hi = fb.shru(x, 7);
    let mask = fb.sub(0, hi);
    let poly = fb.and(mask, 0x1b);
    let t = fb.xor(sh, poly);
    fb.and(t, 0xff)
}

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("aes");
    let sbox = mb.data(&SBOX);
    let rcon = mb.data(&RCON);
    let key = mb.data(&key_bytes());
    let pt = mb.data(&plaintext());
    let rk = mb.buffer(176);
    let state = mb.buffer(16);
    let tmp = mb.buffer(16);
    let ct = mb.buffer((BLOCKS * 16) as u32);
    let sbox_region = sbox.region;
    let mut fb = FunctionBuilder::new("main", 0, true);

    let sbox_base = fb.copy(sbox.addr as i32);
    let rk_base = fb.copy(rk.addr as i32);

    // Look a byte up in the S-box.
    fn sub(
        fb: &mut FunctionBuilder,
        sbox_base: VReg,
        region: tta_ir::MemRegion,
        x: impl Into<Operand>,
    ) -> VReg {
        let a = fb.add(sbox_base, x);
        fb.ldqu(a, region)
    }

    // --- key expansion ---
    for_range(&mut fb, 16, |fb, i| {
        let ka = fb.add(key.addr as i32, i);
        let v = fb.ldqu(ka, key.region);
        let ra = fb.add(rk_base, i);
        fb.stq(v, ra, rk.region);
    });
    for_range(&mut fb, 40, |fb, i4| {
        let i = fb.add(i4, 4);
        let woff = fb.shl(i, 2);
        let prev = fb.add(woff, -4); // byte offset of word i-1
        let back4 = fb.add(woff, -16); // byte offset of word i-4
        let t: Vec<VReg> = (0..4)
            .map(|j| {
                let a0 = fb.add(rk_base, prev);
                let a = fb.add(a0, j);
                fb.ldqu(a, rk.region)
            })
            .collect();
        let tj = [fb.vreg(), fb.vreg(), fb.vreg(), fb.vreg()];
        for (j, r) in tj.iter().enumerate() {
            fb.copy_to(*r, t[j]);
        }
        let m = fb.and(i, 3);
        let is0 = fb.eq(m, 0);
        if_then(fb, is0, |fb| {
            // RotWord + SubWord + Rcon.
            let s0 = sub(fb, sbox_base, sbox_region, t[1]);
            let s1 = sub(fb, sbox_base, sbox_region, t[2]);
            let s2 = sub(fb, sbox_base, sbox_region, t[3]);
            let s3 = sub(fb, sbox_base, sbox_region, t[0]);
            let idx = fb.shru(i, 2);
            let ra = fb.add(rcon.addr as i32 - 1, idx);
            let rc = fb.ldqu(ra, rcon.region);
            let s0r = fb.xor(s0, rc);
            fb.copy_to(tj[0], s0r);
            fb.copy_to(tj[1], s1);
            fb.copy_to(tj[2], s2);
            fb.copy_to(tj[3], s3);
        });
        for (j, r) in tj.iter().enumerate() {
            let a0 = fb.add(rk_base, back4);
            let a = fb.add(a0, j as i32);
            let old = fb.ldqu(a, rk.region);
            let nv = fb.xor(old, *r);
            let d0 = fb.add(rk_base, woff);
            let d = fb.add(d0, j as i32);
            fb.stq(nv, d, rk.region);
        }
    });

    // --- encryption ---
    let sum = fb.copy(1);
    for_range(&mut fb, BLOCKS as i32, |fb, blk| {
        let blk_off = fb.shl(blk, 4);
        // Load plaintext and add round key 0.
        for i in 0..16u32 {
            let pa0 = fb.add(pt.addr as i32, blk_off);
            let pa = fb.add(pa0, i as i32);
            let p = fb.ldqu(pa, pt.region);
            let k = fb.ldqu(rk.at(i), rk.region);
            let v = fb.xor(p, k);
            fb.stq(v, state.at(i), state.region);
        }
        // Rounds 1..=9.
        for_range(fb, 9, |fb, r0| {
            let r = fb.add(r0, 1);
            // SubBytes + ShiftRows into tmp.
            for (i, &src) in SHIFT.iter().enumerate() {
                let x = fb.ldqu(state.at(src as u32), state.region);
                let s = sub(fb, sbox_base, sbox_region, x);
                fb.stq(s, tmp.at(i as u32), tmp.region);
            }
            // MixColumns + AddRoundKey back into state.
            let rk_off = fb.shl(r, 4);
            for c in 0..4u32 {
                let a: Vec<VReg> = (0..4)
                    .map(|j| fb.ldqu(tmp.at(4 * c + j), tmp.region))
                    .collect();
                let xt: Vec<VReg> = a.iter().map(|&x| emit_xtime(fb, x)).collect();
                let mixed = [
                    {
                        let t1 = fb.xor(xt[0], xt[1]);
                        let t2 = fb.xor(t1, a[1]);
                        let t3 = fb.xor(t2, a[2]);
                        fb.xor(t3, a[3])
                    },
                    {
                        let t1 = fb.xor(a[0], xt[1]);
                        let t2 = fb.xor(t1, xt[2]);
                        let t3 = fb.xor(t2, a[2]);
                        fb.xor(t3, a[3])
                    },
                    {
                        let t1 = fb.xor(a[0], a[1]);
                        let t2 = fb.xor(t1, xt[2]);
                        let t3 = fb.xor(t2, xt[3]);
                        fb.xor(t3, a[3])
                    },
                    {
                        let t1 = fb.xor(xt[0], a[0]);
                        let t2 = fb.xor(t1, a[1]);
                        let t3 = fb.xor(t2, a[2]);
                        fb.xor(t3, xt[3])
                    },
                ];
                for (j, mx) in mixed.into_iter().enumerate() {
                    let ka0 = fb.add(rk_base, rk_off);
                    let ka = fb.add(ka0, (4 * c + j as u32) as i32);
                    let k = fb.ldqu(ka, rk.region);
                    let v = fb.xor(mx, k);
                    fb.stq(v, state.at(4 * c + j as u32), state.region);
                }
            }
        });
        // Final round (no MixColumns), ciphertext out, checksum.
        for (i, &src) in SHIFT.iter().enumerate() {
            let x = fb.ldqu(state.at(src as u32), state.region);
            let s = sub(fb, sbox_base, sbox_region, x);
            fb.stq(s, tmp.at(i as u32), tmp.region);
        }
        for i in 0..16u32 {
            let x = fb.ldqu(tmp.at(i), tmp.region);
            let k = fb.ldqu(rk.at(160 + i), rk.region);
            let v = fb.xor(x, k);
            let ca0 = fb.add(ct.addr as i32, blk_off);
            let ca = fb.add(ca0, i as i32);
            fb.stq(v, ca, ct.region);
            let l = fb.shl(sum, 5);
            let rr = fb.shru(sum, 27);
            let rot = fb.ior(l, rr);
            let ns = fb.xor(rot, v);
            fb.copy_to(sum, ns);
        }
    });

    fb.ret(sum);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn fips_key_schedule_known_answer() {
        // FIPS-197 appendix A.1 key-schedule spot checks.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rk = expand_key(&key);
        assert_eq!(&rk[16..20], &[0xa0, 0xfa, 0xfe, 0x17]);
        assert_eq!(&rk[172..176], &[0xb6, 0x63, 0x0c, 0xa6]);
    }

    #[test]
    fn fips_encrypt_known_answer() {
        // FIPS-197 appendix B.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut st = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let rk = expand_key(&key);
        encrypt_block(&mut st, &rk);
        assert_eq!(
            st,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }
}
