//! `gsm` — GSM 06.10 LPC analysis (CHStone's `gsm` workload).
//!
//! The short-term linear-predictive analysis stage: dynamic scaling of a
//! 160-sample frame, 9-lag autocorrelation, and the Schur recursion
//! producing eight Q15 reflection coefficients. Division is the GSM-style
//! 15-step restoring shift-subtract loop (the evaluated cores have no
//! divider, exactly like the paper's datapaths), and all arithmetic is
//! 16/32-bit fixed point.

use crate::util::{for_range, if_else, if_then, while_loop};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder, Operand, VReg};

const N: usize = 160;
const LAGS: usize = 9;

/// Synthetic speech-like frame (sum of two integer "sinusoids" plus noise).
fn frame() -> Vec<i32> {
    (0..N as i32)
        .map(|i| {
            let a = ((i * 37) % 255) - 127;
            let b = ((i * 11 + 7) % 101) - 50;
            let n = ((i * i * 13) % 33) - 16;
            (a * 60 + b * 90 + n).clamp(-32768, 32767)
        })
        .collect()
}

fn mult_q15(a: i32, b: i32) -> i32 {
    (a.wrapping_mul(b) + 16384) >> 15
}

/// 15-step restoring division producing `num/den` in Q15 (0 <= num < den).
fn div_q15(num: i32, den: i32) -> i32 {
    let mut div = 0;
    let mut n = num;
    for _ in 0..15 {
        n <<= 1;
        div <<= 1;
        if n >= den {
            n -= den;
            div += 1;
        }
    }
    div
}

/// Native reference: returns a checksum folded over the scale shift, the
/// scaled autocorrelation and the eight reflection coefficients.
pub fn expected() -> i32 {
    let s = frame();
    // Dynamic scaling: shift so the maximum magnitude uses ~13 bits.
    let mut smax = 0;
    for &x in &s {
        let a = x.abs();
        if a > smax {
            smax = a;
        }
    }
    let mut scale = 0;
    while (smax >> scale) > 0x1fff {
        scale += 1;
    }
    let scaled: Vec<i32> = s.iter().map(|&x| x >> scale).collect();

    // Autocorrelation.
    let mut acf = [0i32; LAGS];
    for (k, a) in acf.iter_mut().enumerate() {
        let mut sum = 0i32;
        for i in k..N {
            sum = sum.wrapping_add(scaled[i].wrapping_mul(scaled[i - k]));
        }
        *a = sum;
    }

    // Normalise so acf[0] uses its top 16 bits, then drop to 16-bit values.
    let mut sum = 0x6510i32;
    let mut r = [0i32; 8];
    if acf[0] != 0 {
        let mut norm = 0;
        while (acf[0] << norm) < 0x4000_0000 {
            norm += 1;
        }
        let ac16: Vec<i32> = acf.iter().map(|&v| (v << norm) >> 16).collect();

        // Schur recursion.
        let mut p = [0i32; LAGS];
        let mut k_arr = [0i32; LAGS];
        p.copy_from_slice(&ac16);
        k_arr[1..LAGS].copy_from_slice(&ac16[1..LAGS]);
        for i in 1..=8usize {
            let temp = p[1].abs();
            let rc = if p[0] <= 0 || temp >= p[0] {
                0
            } else {
                div_q15(temp, p[0])
            };
            r[i - 1] = if p[1] > 0 { -rc } else { rc };
            if i == 8 {
                break;
            }
            for m in 1..=(8 - i) {
                let pm1 = p[m + 1];
                p[m] = pm1.wrapping_add(mult_q15(r[i - 1], k_arr[m]));
                k_arr[m] = k_arr[m].wrapping_add(mult_q15(r[i - 1], pm1));
            }
            p[0] = p[0].wrapping_add(mult_q15(r[i - 1], p[1]));
            p[1] = p[2];
            // Shift P down one lag (the recursion consumes one lag per step).
            for m in 1..=(8 - i) {
                p[m] = p[m + 1];
            }
        }
        sum ^= norm + (scale << 8);
    }
    for (i, &ri) in r.iter().enumerate() {
        sum = sum.wrapping_mul(31) ^ (ri + (i as i32));
    }
    sum
}

/// Emit Q15 rounding multiply `(a*b + 16384) >> 15`.
fn emit_mult_q15(fb: &mut FunctionBuilder, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
    let p = fb.mul(a, b);
    let r = fb.add(p, 16384);
    fb.shr(r, 15)
}

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("gsm");
    let input = mb.data_words(&frame());
    let scaled = mb.buffer((N * 4) as u32);
    let acf = mb.buffer((LAGS * 4) as u32);
    let p_buf = mb.buffer((LAGS * 4) as u32);
    let k_buf = mb.buffer((LAGS * 4) as u32);
    let r_buf = mb.buffer(8 * 4);
    let mut fb = FunctionBuilder::new("main", 0, true);

    let in_base = fb.copy(input.addr as i32);
    let sc_base = fb.copy(scaled.addr as i32);

    // --- dynamic scaling ---
    let smax = fb.copy(0);
    for_range(&mut fb, N as i32, |fb, i| {
        let off = fb.shl(i, 2);
        let a = fb.add(in_base, off);
        let x = fb.ldw(a, input.region);
        let neg = fb.lt(x, 0);
        let ax = fb.vreg();
        if_else(
            fb,
            neg,
            |fb| {
                let n = fb.sub(0, x);
                fb.copy_to(ax, n);
            },
            |fb| fb.copy_to(ax, x),
        );
        let gt = fb.gt(ax, smax);
        if_then(fb, gt, |fb| fb.copy_to(smax, ax));
    });
    let scale = fb.copy(0);
    while_loop(
        &mut fb,
        |fb| {
            let sh = fb.shr(smax, scale);
            fb.gt(sh, 0x1fff)
        },
        |fb| {
            let n = fb.add(scale, 1);
            fb.copy_to(scale, n);
        },
    );
    for_range(&mut fb, N as i32, |fb, i| {
        let off = fb.shl(i, 2);
        let a = fb.add(in_base, off);
        let x = fb.ldw(a, input.region);
        let v = fb.shr(x, scale);
        let d = fb.add(sc_base, off);
        fb.stw(v, d, scaled.region);
    });

    // --- autocorrelation ---
    for_range(&mut fb, LAGS as i32, |fb, k| {
        let sum = fb.copy(0);
        let n_minus_k = fb.sub(N as i32, k);
        for_range(fb, n_minus_k, |fb, t| {
            // i = t + k; products scaled[i] * scaled[i-k]
            let i = fb.add(t, k);
            let oi = fb.shl(i, 2);
            let ai = fb.add(sc_base, oi);
            let si = fb.ldw(ai, scaled.region);
            let ot = fb.shl(t, 2);
            let at = fb.add(sc_base, ot);
            let st = fb.ldw(at, scaled.region);
            let prod = fb.mul(si, st);
            let ns = fb.add(sum, prod);
            fb.copy_to(sum, ns);
        });
        let ok = fb.shl(k, 2);
        let ak = fb.add(acf.addr as i32, ok);
        fb.stw(sum, ak, acf.region);
    });

    // --- normalisation + Schur ---
    let sum = fb.copy(0x6510);
    let acf0 = fb.ldw(acf.word(0), acf.region);
    let nz = fb.ne(acf0, 0);
    if_then(&mut fb, nz, |fb| {
        let norm = fb.copy(0);
        while_loop(
            fb,
            |fb| {
                let sh = fb.shl(acf0, norm);
                fb.lt(sh, 0x4000_0000)
            },
            |fb| {
                let n = fb.add(norm, 1);
                fb.copy_to(norm, n);
            },
        );
        // 16-bit scaled ACF into P and K.
        for_range(fb, LAGS as i32, |fb, k| {
            let ok = fb.shl(k, 2);
            let ak = fb.add(acf.addr as i32, ok);
            let v = fb.ldw(ak, acf.region);
            let up = fb.shl(v, norm);
            let v16 = fb.shr(up, 16);
            let pa = fb.add(p_buf.addr as i32, ok);
            fb.stw(v16, pa, p_buf.region);
            let ka = fb.add(k_buf.addr as i32, ok);
            fb.stw(v16, ka, k_buf.region);
        });

        // Schur recursion (loop unrolled over i=1..=8 at build time; the
        // inner update loop stays a runtime loop with a dynamic bound).
        for i in 1..=8 {
            let p0 = fb.ldw(p_buf.word(0), p_buf.region);
            let p1 = fb.ldw(p_buf.word(1), p_buf.region);
            let neg = fb.lt(p1, 0);
            let temp = fb.vreg();
            if_else(
                fb,
                neg,
                |fb| {
                    let n = fb.sub(0, p1);
                    fb.copy_to(temp, n);
                },
                |fb| fb.copy_to(temp, p1),
            );
            let rc = fb.copy(0);
            let le = fb.le(p0, 0);
            let ge = fb.ge(temp, p0);
            let bad = fb.ior(le, ge);
            let ok = fb.eq(bad, 0);
            if_then(fb, ok, |fb| {
                // 15-step restoring division temp / p0 in Q15.
                let div = fb.copy(0);
                let num = fb.copy(temp);
                for_range(fb, 15, |fb, _| {
                    let n2 = fb.shl(num, 1);
                    fb.copy_to(num, n2);
                    let d2 = fb.shl(div, 1);
                    fb.copy_to(div, d2);
                    let ge2 = fb.ge(num, p0);
                    if_then(fb, ge2, |fb| {
                        let nn = fb.sub(num, p0);
                        fb.copy_to(num, nn);
                        let nd = fb.add(div, 1);
                        fb.copy_to(div, nd);
                    });
                });
                fb.copy_to(rc, div);
            });
            let ri = fb.vreg();
            let pos = fb.gt(p1, 0);
            if_else(
                fb,
                pos,
                |fb| {
                    let n = fb.sub(0, rc);
                    fb.copy_to(ri, n);
                },
                |fb| fb.copy_to(ri, rc),
            );
            fb.stw(ri, r_buf.word(i as u32 - 1), r_buf.region);
            if i == 8 {
                break;
            }
            // Update P and K.
            for_range(fb, 8 - i, |fb, m0| {
                let m = fb.add(m0, 1);
                let om = fb.shl(m, 2);
                let om1 = fb.add(om, 4);
                let pa1 = fb.add(p_buf.addr as i32, om1);
                let pm1 = fb.ldw(pa1, p_buf.region);
                let ka = fb.add(k_buf.addr as i32, om);
                let km = fb.ldw(ka, k_buf.region);
                let t1 = emit_mult_q15(fb, ri, km);
                let np = fb.add(pm1, t1);
                let pa = fb.add(p_buf.addr as i32, om);
                fb.stw(np, pa, p_buf.region);
                let t2 = emit_mult_q15(fb, ri, pm1);
                let nk = fb.add(km, t2);
                fb.stw(nk, ka, k_buf.region);
            });
            let p1n = fb.ldw(p_buf.word(1), p_buf.region);
            let t0 = emit_mult_q15(fb, ri, p1n);
            let np0 = fb.add(p0, t0);
            fb.stw(np0, p_buf.word(0), p_buf.region);
            // Shift P down one lag.
            for_range(fb, 8 - i, |fb, m0| {
                let m = fb.add(m0, 1);
                let om = fb.shl(m, 2);
                let om1 = fb.add(om, 4);
                let pa1 = fb.add(p_buf.addr as i32, om1);
                let v = fb.ldw(pa1, p_buf.region);
                let pa = fb.add(p_buf.addr as i32, om);
                fb.stw(v, pa, p_buf.region);
            });
        }
        let sh8 = fb.shl(scale, 8);
        let mix = fb.add(norm, sh8);
        let x = fb.xor(sum, mix);
        fb.copy_to(sum, x);
    });

    // Fold the reflection coefficients.
    for_range(&mut fb, 8, |fb, i| {
        let off = fb.shl(i, 2);
        let ra = fb.add(r_buf.addr as i32, off);
        let v = fb.ldw(ra, r_buf.region);
        let vi = fb.add(v, i);
        let m = fb.mul(sum, 31);
        let x = fb.xor(m, vi);
        fb.copy_to(sum, x);
    });
    fb.ret(sum);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn div_q15_bounds() {
        assert_eq!(div_q15(0, 100), 0);
        // num just below den yields just below 1.0 in Q15.
        assert!(div_q15(99, 100) > 32000);
        assert!(div_q15(50, 100) >= 16383 && div_q15(50, 100) <= 16385);
    }

    #[test]
    fn mult_q15_rounds() {
        assert_eq!(mult_q15(32767, 32767), 32766);
        assert_eq!(mult_q15(16384, 16384), 8192);
        assert_eq!(mult_q15(-16384, 16384), -8192);
    }
}
