//! `adpcm` — IMA ADPCM speech codec (CHStone's `adpcm` workload).
//!
//! Encodes 128 synthetic 16-bit samples to 4-bit ADPCM codes and decodes
//! them back, with the step-size and index-adaptation tables in data
//! memory. The control-heavy quantisation (three successive
//! compare-subtract steps plus clamping) matches the branchy profile of
//! the CHStone original.

use crate::util::{for_range, if_else, if_then};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder, VReg};

const N: usize = 128;

/// IMA step-size table.
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// IMA index-adaptation table.
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Deterministic synthetic speech-like input.
fn samples() -> Vec<i32> {
    (0..N as i32)
        .map(|i| {
            let saw = ((i * 997) & 0x3fff) - 0x2000;
            let jitter = ((i * i * 31) & 0xff) - 128;
            (saw + jitter).clamp(-32768, 32767)
        })
        .collect()
}

fn clamp16(v: i32) -> i32 {
    v.clamp(-32768, 32767)
}

fn encode_step(sample: i32, valpred: &mut i32, index: &mut i32) -> i32 {
    let step = STEP_TABLE[*index as usize];
    let mut diff = sample - *valpred;
    let sign = if diff < 0 { 8 } else { 0 };
    if sign != 0 {
        diff = -diff;
    }
    let mut delta = 0;
    let mut vpdiff = step >> 3;
    let mut s = step;
    if diff >= s {
        delta = 4;
        diff -= s;
        vpdiff += s;
    }
    s >>= 1;
    if diff >= s {
        delta |= 2;
        diff -= s;
        vpdiff += s;
    }
    s >>= 1;
    if diff >= s {
        delta |= 1;
        vpdiff += s;
    }
    if sign != 0 {
        *valpred -= vpdiff;
    } else {
        *valpred += vpdiff;
    }
    *valpred = clamp16(*valpred);
    delta |= sign;
    *index = (*index + INDEX_TABLE[delta as usize]).clamp(0, 88);
    delta
}

fn decode_step(delta: i32, valpred: &mut i32, index: &mut i32) -> i32 {
    let step = STEP_TABLE[*index as usize];
    let sign = delta & 8;
    let d = delta & 7;
    let mut vpdiff = step >> 3;
    if d & 4 != 0 {
        vpdiff += step;
    }
    if d & 2 != 0 {
        vpdiff += step >> 1;
    }
    if d & 1 != 0 {
        vpdiff += step >> 2;
    }
    if sign != 0 {
        *valpred -= vpdiff;
    } else {
        *valpred += vpdiff;
    }
    *valpred = clamp16(*valpred);
    *index = (*index + INDEX_TABLE[delta as usize]).clamp(0, 88);
    *valpred
}

/// Native reference: encode then decode; the checksum mixes every code and
/// every reconstructed sample.
pub fn expected() -> i32 {
    let input = samples();
    let mut sum = 0x1357i32;
    let (mut vp, mut idx) = (0, 0);
    let mut codes = Vec::with_capacity(N);
    for &s in &input {
        let d = encode_step(s, &mut vp, &mut idx);
        codes.push(d);
        sum = (sum.wrapping_mul(33)) ^ d;
    }
    let (mut vp, mut idx) = (0, 0);
    for &d in &codes {
        let r = decode_step(d, &mut vp, &mut idx);
        sum = (sum.wrapping_mul(33)) ^ r;
    }
    sum
}

/// Emit `v = v.clamp(-32768, 32767)` in place.
fn emit_clamp16(fb: &mut FunctionBuilder, v: VReg) {
    let hi = fb.gt(v, 32767);
    if_then(fb, hi, |fb| fb.copy_to(v, 32767));
    let lo = fb.lt(v, -32768);
    if_then(fb, lo, |fb| fb.copy_to(v, -32768));
}

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("adpcm");
    let steps = mb.data_words(&STEP_TABLE);
    let idxs = mb.data_words(&INDEX_TABLE);
    let input = mb.data_words(&samples());
    let codes = mb.buffer((N * 4) as u32);
    let recon = mb.buffer((N * 4) as u32);
    let mut fb = FunctionBuilder::new("main", 0, true);

    let steps_base = fb.copy(steps.addr as i32);
    let idxs_base = fb.copy(idxs.addr as i32);
    let sum = fb.copy(0x1357);

    // ---- encoder ----
    let vp = fb.copy(0);
    let index = fb.copy(0);
    for_range(&mut fb, N as i32, |fb, i| {
        let off = fb.shl(i, 2);
        let ia = fb.add(input.addr as i32, off);
        let sample = fb.ldw(ia, input.region);

        let so = fb.shl(index, 2);
        let sa = fb.add(steps_base, so);
        let step = fb.ldw(sa, steps.region);

        let diff = fb.sub(sample, vp);
        let sign = fb.vreg();
        let adiff = fb.vreg();
        let neg = fb.lt(diff, 0);
        if_else(
            fb,
            neg,
            |fb| {
                fb.copy_to(sign, 8);
                let n = fb.sub(0, diff);
                fb.copy_to(adiff, n);
            },
            |fb| {
                fb.copy_to(sign, 0);
                fb.copy_to(adiff, diff);
            },
        );

        let delta = fb.copy(0);
        let vpd0 = fb.shr(step, 3);
        let vpd = fb.copy(vpd0);
        let s = fb.copy(step);
        for bit in [4, 2, 1] {
            let ge = fb.ge(adiff, s);
            if_then(fb, ge, |fb| {
                let nd = fb.ior(delta, bit);
                fb.copy_to(delta, nd);
                let na = fb.sub(adiff, s);
                fb.copy_to(adiff, na);
                let nv = fb.add(vpd, s);
                fb.copy_to(vpd, nv);
            });
            let ns = fb.shr(s, 1);
            fb.copy_to(s, ns);
        }

        if_else(
            fb,
            sign,
            |fb| {
                let n = fb.sub(vp, vpd);
                fb.copy_to(vp, n);
            },
            |fb| {
                let n = fb.add(vp, vpd);
                fb.copy_to(vp, n);
            },
        );
        emit_clamp16(fb, vp);

        let code = fb.ior(delta, sign);
        let ca = fb.add(codes.addr as i32, off);
        fb.stw(code, ca, codes.region);

        let io = fb.shl(code, 2);
        let ia2 = fb.add(idxs_base, io);
        let adj = fb.ldw(ia2, idxs.region);
        let ni = fb.add(index, adj);
        fb.copy_to(index, ni);
        let lo = fb.lt(index, 0);
        if_then(fb, lo, |fb| fb.copy_to(index, 0));
        let hi = fb.gt(index, 88);
        if_then(fb, hi, |fb| fb.copy_to(index, 88));

        let m = fb.mul(sum, 33);
        let x = fb.xor(m, code);
        fb.copy_to(sum, x);
    });

    // ---- decoder ----
    let dvp = fb.copy(0);
    let didx = fb.copy(0);
    for_range(&mut fb, N as i32, |fb, i| {
        let off = fb.shl(i, 2);
        let ca = fb.add(codes.addr as i32, off);
        let code = fb.ldw(ca, codes.region);

        let so = fb.shl(didx, 2);
        let sa = fb.add(steps_base, so);
        let step = fb.ldw(sa, steps.region);

        let vpd0 = fb.shr(step, 3);
        let acc = fb.copy(vpd0);
        // Bit 4 adds step, bit 2 adds step>>1, bit 1 adds step>>2.
        for (bit, sh) in [(4, 0), (2, 1), (1, 2)] {
            let b = fb.and(code, bit);
            if_then(fb, b, |fb| {
                let inc = fb.shr(step, sh);
                let n = fb.add(acc, inc);
                fb.copy_to(acc, n);
            });
        }
        let sign = fb.and(code, 8);
        if_else(
            fb,
            sign,
            |fb| {
                let n = fb.sub(dvp, acc);
                fb.copy_to(dvp, n);
            },
            |fb| {
                let n = fb.add(dvp, acc);
                fb.copy_to(dvp, n);
            },
        );
        emit_clamp16(fb, dvp);

        let ra = fb.add(recon.addr as i32, off);
        fb.stw(dvp, ra, recon.region);

        let io = fb.shl(code, 2);
        let ia2 = fb.add(idxs_base, io);
        let adj = fb.ldw(ia2, idxs.region);
        let ni = fb.add(didx, adj);
        fb.copy_to(didx, ni);
        let lo = fb.lt(didx, 0);
        if_then(fb, lo, |fb| fb.copy_to(didx, 0));
        let hi = fb.gt(didx, 88);
        if_then(fb, hi, |fb| fb.copy_to(didx, 88));

        let m = fb.mul(sum, 33);
        let x = fb.xor(m, dvp);
        fb.copy_to(sum, x);
    });

    fb.ret(sum);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn decoder_tracks_encoder_closely() {
        let input = samples();
        let (mut vp, mut idx) = (0, 0);
        let codes: Vec<i32> = input
            .iter()
            .map(|&s| encode_step(s, &mut vp, &mut idx))
            .collect();
        let (mut vp, mut idx) = (0, 0);
        let recon: Vec<i32> = codes
            .iter()
            .map(|&d| decode_step(d, &mut vp, &mut idx))
            .collect();
        // The input sawtooth has abrupt wraps ADPCM cannot follow
        // instantly, so demand bounded *average* error rather than
        // per-sample tracking.
        let mean_err: i64 = input
            .iter()
            .zip(&recon)
            .skip(16)
            .map(|(s, r)| (s - r).abs() as i64)
            .sum::<i64>()
            / (input.len() as i64 - 16);
        assert!(mean_err < 2500, "mean reconstruction error {mean_err}");
    }

    #[test]
    fn encode_is_deterministic() {
        assert_eq!(expected(), expected());
    }
}
