//! `mips` — MIPS-subset instruction-set interpreter (CHStone's `mips`
//! workload).
//!
//! CHStone's `mips` simulates a MIPS processor executing a sort program;
//! this kernel does the same: a fetch–decode–dispatch interpreter for a
//! twelve-instruction MIPS subset runs a hand-assembled bubble sort over
//! 24 integers held in guest memory. The guest program and data live in
//! the data segment; the interpreter's register file is a 32-word buffer.
//!
//! Branches are interpreted without delay slots and `j` carries an
//! absolute instruction index — both implementations (IR and native)
//! define the guest semantics identically.

#![allow(clippy::vec_init_then_push)] // the assembler reads as a listing

use crate::util::{for_range, if_then, while_loop, XorShift32};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder};

const N_DATA: usize = 24;

// Opcodes / functs of the interpreted subset.
const OP_RTYPE: u32 = 0x00;
const OP_J: u32 = 0x02;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_ADDIU: u32 = 0x09;
const OP_SLTI: u32 = 0x0a;
const OP_LW: u32 = 0x23;
const OP_SW: u32 = 0x2b;
const OP_HALT: u32 = 0x3f;
const F_SLL: u32 = 0x00;
const F_SRL: u32 = 0x02;
const F_ADDU: u32 = 0x21;
const F_SUBU: u32 = 0x23;
const F_AND: u32 = 0x24;
const F_OR: u32 = 0x25;
const F_SLT: u32 = 0x2a;

fn r_type(funct: u32, rs: u32, rt: u32, rd: u32, shamt: u32) -> u32 {
    (OP_RTYPE << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

fn i_type(op: u32, rs: u32, rt: u32, imm: i32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (imm as u32 & 0xffff)
}

fn j_abs(target: u32) -> u32 {
    (OP_J << 26) | target
}

/// The guest program: bubble sort of `N_DATA` words at the address in `$1`.
///
/// Register use: `$1` base, `$2` n, `$3` i, `$4` limit, `$5` j, `$6` cond,
/// `$7` addr, `$8`/`$9` elements, `$10` swap flag.
fn guest_program(base_addr: i32) -> Vec<u32> {
    let mut p = Vec::new();
    // 0: $1 = base ; 1: $2 = n ; 2: $3 = 0 (i)
    p.push(i_type(OP_ADDIU, 0, 1, base_addr));
    p.push(i_type(OP_ADDIU, 0, 2, N_DATA as i32));
    p.push(i_type(OP_ADDIU, 0, 3, 0));
    // outer (3): $4 = n-1-i ; $5 = 0
    p.push(i_type(OP_ADDIU, 2, 4, -1)); // 3
    p.push(r_type(F_SUBU, 4, 3, 4, 0)); // 4: $4 = $4 - $3
    p.push(i_type(OP_ADDIU, 0, 5, 0)); // 5
                                       // inner (6): if !(j < limit) goto inner_end(16)
    p.push(r_type(F_SLT, 5, 4, 6, 0)); // 6: $6 = $5 < $4
    p.push(i_type(OP_BEQ, 6, 0, 18 - 8)); // 7: beq $6,$0 -> inner_end at 18
    p.push(r_type(F_SLL, 0, 5, 7, 2)); // 8: $7 = $5 << 2
    p.push(r_type(F_ADDU, 7, 1, 7, 0)); // 9: $7 += $1
    p.push(i_type(OP_LW, 7, 8, 0)); // 10: $8 = mem[$7]
    p.push(i_type(OP_LW, 7, 9, 4)); // 11: $9 = mem[$7+4]
    p.push(r_type(F_SLT, 9, 8, 10, 0)); // 12: $10 = $9 < $8
    p.push(i_type(OP_BEQ, 10, 0, 15 - 13)); // 13: no swap -> 15
    p.push(i_type(OP_SW, 7, 9, 0)); // 14: mem[$7] = $9
    p.push(i_type(OP_SW, 7, 8, 4)); // 15 (reached only when swapping)?
                                    // Careful: instruction 15 must be the store of $8; the "no swap" branch
                                    // targets 16.
                                    // 16: j++ ; j inner
    p.push(i_type(OP_ADDIU, 5, 5, 1)); // 16
    p.push(j_abs(6)); // 17
                      // inner_end (18): i++ ; if i < n goto outer
    p.push(i_type(OP_ADDIU, 3, 3, 1)); // 18
    p.push(r_type(F_SLT, 3, 2, 6, 0)); // 19
    p.push(i_type(OP_BNE, 6, 0, 3 - 21)); // 20: bne -> 3
    p.push((OP_HALT) << 26); // 21
    p
}

fn guest_data() -> Vec<i32> {
    let mut rng = XorShift32(0x50b7_ed01);
    (0..N_DATA)
        .map(|_| (rng.next() & 0xffff) as i32 - 32768)
        .collect()
}

/// Interpret the guest program natively. Returns the final guest data.
fn run_guest_native(program: &[u32], data: &mut [i32], base_addr: i32) {
    // Guest memory is modelled as the data array at `base_addr`.
    let mut regs = [0i32; 32];
    let mut pc = 0usize;
    let mut fuel = 1_000_000;
    loop {
        fuel -= 1;
        assert!(fuel > 0, "guest runaway");
        let w = program[pc];
        let op = w >> 26;
        let rs = (w >> 21 & 31) as usize;
        let rt = (w >> 16 & 31) as usize;
        let rd = (w >> 11 & 31) as usize;
        let shamt = w >> 6 & 31;
        let funct = w & 0x3f;
        let imm = w as u16 as i16 as i32;
        match op {
            OP_RTYPE => {
                regs[rd] = match funct {
                    F_ADDU => regs[rs].wrapping_add(regs[rt]),
                    F_SUBU => regs[rs].wrapping_sub(regs[rt]),
                    F_AND => regs[rs] & regs[rt],
                    F_OR => regs[rs] | regs[rt],
                    F_SLT => (regs[rs] < regs[rt]) as i32,
                    F_SLL => regs[rt] << shamt,
                    F_SRL => ((regs[rt] as u32) >> shamt) as i32,
                    _ => panic!("bad funct {funct:#x}"),
                };
                pc += 1;
            }
            OP_ADDIU => {
                regs[rt] = regs[rs].wrapping_add(imm);
                pc += 1;
            }
            OP_SLTI => {
                regs[rt] = (regs[rs] < imm) as i32;
                pc += 1;
            }
            OP_LW => {
                let a = (regs[rs].wrapping_add(imm) - base_addr) as usize / 4;
                regs[rt] = data[a];
                pc += 1;
            }
            OP_SW => {
                let a = (regs[rs].wrapping_add(imm) - base_addr) as usize / 4;
                data[a] = regs[rt];
                pc += 1;
            }
            OP_BEQ => {
                pc = if regs[rs] == regs[rt] {
                    (pc as i32 + 1 + imm) as usize
                } else {
                    pc + 1
                };
            }
            OP_BNE => {
                pc = if regs[rs] != regs[rt] {
                    (pc as i32 + 1 + imm) as usize
                } else {
                    pc + 1
                };
            }
            OP_J => pc = (w & 0x03ff_ffff) as usize,
            OP_HALT => return,
            _ => panic!("bad opcode {op:#x}"),
        }
    }
}

/// Native reference: run the sort on the guest interpreter; checksum over
/// the sorted data.
pub fn expected() -> i32 {
    // Use the same base address the IR module assigns; computed by building
    // the data layout identically (data buffer is the 2nd allocation after
    // the program, see build()). To avoid coupling, run with a synthetic
    // base: the algorithm only uses base-relative addresses.
    let base = 0x100;
    let program = guest_program(base);
    let mut data = guest_data();
    run_guest_native(&program, &mut data, base);
    let mut sum = 0x3a1di32;
    for (i, &v) in data.iter().enumerate() {
        sum = sum.wrapping_mul(29) ^ v ^ (i as i32);
    }
    sum
}

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("mips");
    // Reserve the guest data buffer first so its address is independent of
    // the program encoding (which embeds the base address).
    let gdata = mb.data_words(&guest_data());
    let prog_words: Vec<i32> = guest_program(gdata.addr as i32)
        .iter()
        .map(|&w| w as i32)
        .collect();
    let gprog = mb.data_words(&prog_words);
    let regs = mb.buffer(32 * 4);
    let mut fb = FunctionBuilder::new("main", 0, true);

    let regs_base = fb.copy(regs.addr as i32);
    let prog_base = fb.copy(gprog.addr as i32);
    // Zero the register file.
    for_range(&mut fb, 32, |fb, i| {
        let off = fb.shl(i, 2);
        let a = fb.add(regs_base, off);
        fb.stw(0, a, regs.region);
    });

    let pc = fb.copy(0);
    let running = fb.copy(1);
    // Helpers to read/write guest registers.
    let rd_reg = |fb: &mut FunctionBuilder, idx: tta_ir::VReg| {
        let off = fb.shl(idx, 2);
        let a = fb.add(regs_base, off);
        fb.ldw(a, regs.region)
    };

    while_loop(
        &mut fb,
        |fb| fb.ne(running, 0),
        |fb| {
            let po = fb.shl(pc, 2);
            let pa = fb.add(prog_base, po);
            let w = fb.ldw(pa, gprog.region);
            let op = fb.shru(w, 26);
            let rs_i = {
                let t = fb.shru(w, 21);
                fb.and(t, 31)
            };
            let rt_i = {
                let t = fb.shru(w, 16);
                fb.and(t, 31)
            };
            let rd_i = {
                let t = fb.shru(w, 11);
                fb.and(t, 31)
            };
            let shamt = {
                let t = fb.shru(w, 6);
                fb.and(t, 31)
            };
            let funct = fb.and(w, 0x3f);
            let imm = fb.sxhw(w);
            let next_pc = fb.add(pc, 1);
            fb.copy_to(pc, next_pc);

            let rs_v = rd_reg(fb, rs_i);
            let rt_v = rd_reg(fb, rt_i);

            let wr_reg = |fb: &mut FunctionBuilder, idx: tta_ir::VReg, v: tta_ir::VReg| {
                let off = fb.shl(idx, 2);
                let a = fb.add(regs_base, off);
                fb.stw(v, a, regs.region);
            };

            // R-type dispatch.
            let is_r = fb.eq(op, OP_RTYPE as i32);
            if_then(fb, is_r, |fb| {
                let res = fb.vreg();
                fb.copy_to(res, 0);
                for (f, kind) in [
                    (F_ADDU, 0),
                    (F_SUBU, 1),
                    (F_AND, 2),
                    (F_OR, 3),
                    (F_SLT, 4),
                    (F_SLL, 5),
                    (F_SRL, 6),
                ] {
                    let hit = fb.eq(funct, f as i32);
                    if_then(fb, hit, |fb| {
                        let v = match kind {
                            0 => fb.add(rs_v, rt_v),
                            1 => fb.sub(rs_v, rt_v),
                            2 => fb.and(rs_v, rt_v),
                            3 => fb.ior(rs_v, rt_v),
                            4 => fb.lt(rs_v, rt_v),
                            5 => fb.shl(rt_v, shamt),
                            _ => fb.shru(rt_v, shamt),
                        };
                        fb.copy_to(res, v);
                    });
                }
                wr_reg(fb, rd_i, res);
            });

            // I-type / J-type dispatch.
            let case = |fb: &mut FunctionBuilder, opc: u32| fb.eq(op, opc as i32);

            let c = case(fb, OP_ADDIU);
            if_then(fb, c, |fb| {
                let v = fb.add(rs_v, imm);
                wr_reg(fb, rt_i, v);
            });
            let c = case(fb, OP_SLTI);
            if_then(fb, c, |fb| {
                let v = fb.lt(rs_v, imm);
                wr_reg(fb, rt_i, v);
            });
            let c = case(fb, OP_LW);
            if_then(fb, c, |fb| {
                let a = fb.add(rs_v, imm);
                let v = fb.ldw(a, gdata.region);
                wr_reg(fb, rt_i, v);
            });
            let c = case(fb, OP_SW);
            if_then(fb, c, |fb| {
                let a = fb.add(rs_v, imm);
                fb.stw(rt_v, a, gdata.region);
            });
            let c = case(fb, OP_BEQ);
            if_then(fb, c, |fb| {
                let t = fb.eq(rs_v, rt_v);
                if_then(fb, t, |fb| {
                    let d = fb.add(pc, imm);
                    fb.copy_to(pc, d);
                });
            });
            let c = case(fb, OP_BNE);
            if_then(fb, c, |fb| {
                let t = fb.ne(rs_v, rt_v);
                if_then(fb, t, |fb| {
                    let d = fb.add(pc, imm);
                    fb.copy_to(pc, d);
                });
            });
            let c = case(fb, OP_J);
            if_then(fb, c, |fb| {
                let t = fb.and(w, 0x03ff_ffff);
                fb.copy_to(pc, t);
            });
            let c = case(fb, OP_HALT);
            if_then(fb, c, |fb| fb.copy_to(running, 0));
        },
    );

    // Checksum over the sorted guest data.
    let sum = fb.copy(0x3a1d);
    for_range(&mut fb, N_DATA as i32, |fb, i| {
        let off = fb.shl(i, 2);
        let a = fb.add(gdata.addr as i32, off);
        let v = fb.ldw(a, gdata.region);
        let m = fb.mul(sum, 29);
        let x1 = fb.xor(m, v);
        let x2 = fb.xor(x1, i);
        fb.copy_to(sum, x2);
    });
    fb.ret(sum);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn guest_sort_actually_sorts() {
        let base = 0x100;
        let program = guest_program(base);
        let mut data = guest_data();
        run_guest_native(&program, &mut data, base);
        let mut want = guest_data();
        want.sort_unstable();
        assert_eq!(data, want);
    }

    #[test]
    fn encodings_roundtrip() {
        let w = r_type(F_SLT, 5, 4, 6, 0);
        assert_eq!(w >> 26, OP_RTYPE);
        assert_eq!(w >> 21 & 31, 5);
        assert_eq!(w >> 16 & 31, 4);
        assert_eq!(w >> 11 & 31, 6);
        assert_eq!(w & 0x3f, F_SLT);
        let w = i_type(OP_ADDIU, 2, 4, -1);
        assert_eq!(w as u16 as i16 as i32, -1);
    }
}
