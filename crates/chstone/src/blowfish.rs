//! `blowfish` — Blowfish block cipher (CHStone's `blowfish` workload).
//!
//! Runs the real Blowfish structure — 16-round Feistel network, four
//! 256-entry S-boxes, P-array key schedule with rolling re-encryption —
//! over sixteen 8-byte blocks. The box initialisers are deterministic
//! pseudo-random words rather than the hexadecimal digits of pi (the
//! substitution keeps every code path and table access identical while
//! avoiding 4 KiB of literal constants; DESIGN.md records it).
//!
//! The block-encryption routine is a separate IR *function* called from
//! both the key schedule and the data loop, exercising the compiler's
//! exhaustive inliner the way CHStone's C functions do.

use crate::util::{for_range, XorShift32};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder, VReg};

const ROUNDS: usize = 16;
const BLOCKS: usize = 16;

fn init_p() -> Vec<u32> {
    let mut rng = XorShift32(0xb10f_1501);
    (0..18).map(|_| rng.next()).collect()
}

fn init_s() -> Vec<u32> {
    let mut rng = XorShift32(0x5b0c_e5e5);
    (0..1024).map(|_| rng.next()).collect()
}

fn key_words() -> [u32; 4] {
    [0xdead_beef, 0x0123_4567, 0x89ab_cdef, 0x4242_4242]
}

fn data_words() -> Vec<u32> {
    let mut rng = XorShift32(0x0da7_a000 ^ 0x77777);
    (0..BLOCKS * 2).map(|_| rng.next()).collect()
}

// ---- native reference ----

struct Bf {
    p: [u32; 18],
    s: [[u32; 256]; 4],
}

impl Bf {
    fn new() -> Bf {
        let pv = init_p();
        let sv = init_s();
        let mut p = [0u32; 18];
        p.copy_from_slice(&pv);
        let mut s = [[0u32; 256]; 4];
        for (i, w) in sv.iter().enumerate() {
            s[i / 256][i % 256] = *w;
        }
        // Key schedule part 1: fold the key into P.
        let key = key_words();
        for (i, pi) in p.iter_mut().enumerate() {
            *pi ^= key[i % 4];
        }
        let mut bf = Bf { p, s };
        // Key schedule part 2: roll an all-zero block through P.
        let (mut l, mut r) = (0u32, 0u32);
        for i in (0..18).step_by(2) {
            let (nl, nr) = bf.encrypt(l, r);
            bf.p[i] = nl;
            bf.p[i + 1] = nr;
            l = nl;
            r = nr;
        }
        bf
    }

    fn f(&self, x: u32) -> u32 {
        let a = (x >> 24) as usize;
        let b = (x >> 16 & 0xff) as usize;
        let c = (x >> 8 & 0xff) as usize;
        let d = (x & 0xff) as usize;
        self.s[0][a]
            .wrapping_add(self.s[1][b])
            .bitxor_then_add(self.s[2][c], self.s[3][d])
    }

    fn encrypt(&self, mut xl: u32, mut xr: u32) -> (u32, u32) {
        for i in 0..ROUNDS {
            xl ^= self.p[i];
            xr ^= self.f(xl);
            std::mem::swap(&mut xl, &mut xr);
        }
        std::mem::swap(&mut xl, &mut xr);
        xr ^= self.p[16];
        xl ^= self.p[17];
        (xl, xr)
    }
}

trait XorAdd {
    fn bitxor_then_add(self, x: u32, a: u32) -> u32;
}

impl XorAdd for u32 {
    fn bitxor_then_add(self, x: u32, a: u32) -> u32 {
        (self ^ x).wrapping_add(a)
    }
}

/// Native reference: ECB-encrypt the data blocks; rotating-XOR checksum of
/// all ciphertext words.
pub fn expected() -> i32 {
    let bf = Bf::new();
    let data = data_words();
    let mut sum = 0x0bf0u32;
    for blk in 0..BLOCKS {
        let (l, r) = bf.encrypt(data[2 * blk], data[2 * blk + 1]);
        sum = sum.rotate_left(7) ^ l;
        sum = sum.rotate_left(7) ^ r;
    }
    sum as i32
}

// ---- IR implementation ----

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("blowfish");
    let p_box = mb.data_words(&init_p().iter().map(|&w| w as i32).collect::<Vec<_>>());
    let s_box = mb.data_words(&init_s().iter().map(|&w| w as i32).collect::<Vec<_>>());
    let key = mb.data_words(&key_words().iter().map(|&w| w as i32).collect::<Vec<_>>());
    let data = mb.data_words(&data_words().iter().map(|&w| w as i32).collect::<Vec<_>>());
    let lr = mb.buffer(8); // the block being encrypted (xl, xr)
    let ct = mb.buffer((BLOCKS * 8) as u32);

    // encrypt(): reads/writes the LR scratch block.
    let encrypt = {
        let mut fb = FunctionBuilder::new("encrypt", 0, false);
        let xl = fb.ldw(lr.word(0), lr.region);
        let xr = fb.ldw(lr.word(1), lr.region);
        let l = fb.copy(xl);
        let r = fb.copy(xr);
        let p_base = fb.copy(p_box.addr as i32);
        let s_base = fb.copy(s_box.addr as i32);
        for_range(&mut fb, ROUNDS as i32, |fb, i| {
            let po = fb.shl(i, 2);
            let pa = fb.add(p_base, po);
            let pi = fb.ldw(pa, p_box.region);
            let nl = fb.xor(l, pi);
            // F(nl)
            let f = {
                let lookup = |fb: &mut FunctionBuilder, box_idx: i32, byte: VReg| -> VReg {
                    let off = fb.shl(byte, 2);
                    let base = fb.add(s_base, box_idx * 1024);
                    let a = fb.add(base, off);
                    fb.ldw(a, s_box.region)
                };
                let a = fb.shru(nl, 24);
                let b0 = fb.shru(nl, 16);
                let b = fb.and(b0, 0xff);
                let c0 = fb.shru(nl, 8);
                let c = fb.and(c0, 0xff);
                let d = fb.and(nl, 0xff);
                let sa = lookup(fb, 0, a);
                let sb = lookup(fb, 1, b);
                let sc = lookup(fb, 2, c);
                let sd = lookup(fb, 3, d);
                let t1 = fb.add(sa, sb);
                let t2 = fb.xor(t1, sc);
                fb.add(t2, sd)
            };
            let nr = fb.xor(r, f);
            // Swap for the next round.
            fb.copy_to(l, nr);
            fb.copy_to(r, nl);
        });
        // Undo the final swap, apply P[16]/P[17].
        let p16 = fb.ldw(p_box.word(16), p_box.region);
        let p17 = fb.ldw(p_box.word(17), p_box.region);
        let out_r = fb.xor(l, p16); // l currently holds xr
        let out_l = fb.xor(r, p17);
        fb.stw(out_l, lr.word(0), lr.region);
        fb.stw(out_r, lr.word(1), lr.region);
        fb.ret_void();
        fb.finish()
    };

    let mut mbf = FunctionBuilder::new("main", 0, true);
    let encrypt_id = mb.add(encrypt);

    // Key schedule part 1: P[i] ^= key[i % 4].
    let p_base = mbf.copy(p_box.addr as i32);
    for_range(&mut mbf, 18, |fb, i| {
        let m = fb.and(i, 3);
        let ko = fb.shl(m, 2);
        let ka = fb.add(key.addr as i32, ko);
        let kw = fb.ldw(ka, key.region);
        let po = fb.shl(i, 2);
        let pa = fb.add(p_base, po);
        let pv = fb.ldw(pa, p_box.region);
        let nv = fb.xor(pv, kw);
        fb.stw(nv, pa, p_box.region);
    });
    // Key schedule part 2: roll the zero block through P.
    mbf.stw(0, lr.word(0), lr.region);
    mbf.stw(0, lr.word(1), lr.region);
    for_range(&mut mbf, 9, |fb, i| {
        fb.call_void(encrypt_id, &[]);
        let l = fb.ldw(lr.word(0), lr.region);
        let r = fb.ldw(lr.word(1), lr.region);
        let po = fb.shl(i, 3);
        let pa = fb.add(p_base, po);
        fb.stw(l, pa, p_box.region);
        let pa2 = fb.add(pa, 4);
        fb.stw(r, pa2, p_box.region);
    });

    // Encrypt the data blocks.
    let sum = mbf.copy(0x0bf0);
    for_range(&mut mbf, BLOCKS as i32, |fb, blk| {
        let off = fb.shl(blk, 3);
        let da = fb.add(data.addr as i32, off);
        let l = fb.ldw(da, data.region);
        let da2 = fb.add(da, 4);
        let r = fb.ldw(da2, data.region);
        fb.stw(l, lr.word(0), lr.region);
        fb.stw(r, lr.word(1), lr.region);
        fb.call_void(encrypt_id, &[]);
        let cl = fb.ldw(lr.word(0), lr.region);
        let cr = fb.ldw(lr.word(1), lr.region);
        let ca = fb.add(ct.addr as i32, off);
        fb.stw(cl, ca, ct.region);
        let ca2 = fb.add(ca, 4);
        fb.stw(cr, ca2, ct.region);
        for c in [cl, cr] {
            let hi = fb.shl(sum, 7);
            let lo = fb.shru(sum, 25);
            let rot = fb.ior(hi, lo);
            let ns = fb.xor(rot, c);
            fb.copy_to(sum, ns);
        }
    });
    mbf.ret(sum);
    let main_id = mb.add(mbf.finish());
    mb.set_entry(main_id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn feistel_is_invertible() {
        // Decrypt = encrypt with reversed P; round-trip must restore the
        // plaintext (validates the native reference structure).
        let bf = Bf::new();
        let (l, r) = bf.encrypt(0x0102_0304, 0x0506_0708);
        // Inverse network.
        let mut xl = l;
        let mut xr = r;
        xl ^= bf.p[17];
        xr ^= bf.p[16];
        std::mem::swap(&mut xl, &mut xr);
        for i in (0..ROUNDS).rev() {
            std::mem::swap(&mut xl, &mut xr);
            xr ^= bf.f(xl);
            xl ^= bf.p[i];
        }
        assert_eq!((xl, xr), (0x0102_0304, 0x0506_0708));
    }

    #[test]
    fn key_changes_ciphertext() {
        let bf = Bf::new();
        let (l1, _) = bf.encrypt(1, 2);
        let (l2, _) = bf.encrypt(1, 3);
        assert_ne!(l1, l2);
    }

    /// The IR `encrypt` function exists and is non-trivial.
    #[test]
    fn module_has_two_functions() {
        let m = build();
        assert_eq!(m.funcs.len(), 2);
        assert!(m.funcs.iter().any(|f| f.name == "encrypt"));
    }
}
