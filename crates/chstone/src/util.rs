//! Shared helpers for authoring kernels in IR.

use tta_ir::{BlockId, FunctionBuilder, Operand, VReg};

/// Emit `for i in 0..n { body }` into the current block, continuing in a
/// fresh block afterwards. The body closure receives the builder and the
/// counter register; loop-carried state uses `copy_to` onto registers
/// defined before the loop.
pub fn for_range(
    fb: &mut FunctionBuilder,
    n: impl Into<Operand>,
    body: impl FnOnce(&mut FunctionBuilder, VReg),
) {
    let n = n.into();
    let i = fb.copy(0);
    let head = fb.new_block();
    let body_b = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, n);
    fb.branch(c, body_b, exit);
    fb.switch_to(body_b);
    body(fb, i);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
}

/// Emit `while cond(fb) != 0 { body }`. The condition closure emits into
/// the loop-head block and returns the condition register; the body emits
/// into the body block.
pub fn while_loop(
    fb: &mut FunctionBuilder,
    cond: impl FnOnce(&mut FunctionBuilder) -> VReg,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    let head = fb.new_block();
    let body_b = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = cond(fb);
    fb.branch(c, body_b, exit);
    fb.switch_to(body_b);
    body(fb);
    fb.jump(head);
    fb.switch_to(exit);
}

/// Emit `if cond { then }` (no else), continuing in a fresh block.
pub fn if_then(
    fb: &mut FunctionBuilder,
    cond: impl Into<Operand>,
    then: impl FnOnce(&mut FunctionBuilder),
) {
    let t = fb.new_block();
    let merge = fb.new_block();
    fb.branch(cond, t, merge);
    fb.switch_to(t);
    then(fb);
    fb.jump(merge);
    fb.switch_to(merge);
}

/// Emit `if cond { then } else { other }`, continuing in a fresh block.
pub fn if_else(
    fb: &mut FunctionBuilder,
    cond: impl Into<Operand>,
    then: impl FnOnce(&mut FunctionBuilder),
    other: impl FnOnce(&mut FunctionBuilder),
) {
    let t = fb.new_block();
    let e = fb.new_block();
    let merge = fb.new_block();
    fb.branch(cond, t, e);
    fb.switch_to(t);
    then(fb);
    fb.jump(merge);
    fb.switch_to(e);
    other(fb);
    fb.jump(merge);
    fb.switch_to(merge);
}

/// `select(cond, a, b)`: branchless-ish select via a diamond, returning a
/// merged register.
pub fn select(
    fb: &mut FunctionBuilder,
    cond: impl Into<Operand>,
    a: impl Into<Operand>,
    b: impl Into<Operand>,
) -> VReg {
    let (a, b) = (a.into(), b.into());
    let out = fb.vreg();
    if_else(fb, cond, |fb| fb.copy_to(out, a), |fb| fb.copy_to(out, b));
    out
}

/// The block the builder is currently emitting into (handy for manual CFG
/// work in kernels).
pub fn here(fb: &FunctionBuilder) -> BlockId {
    fb.current()
}

/// A simple deterministic PRNG (xorshift32) usable both natively and as a
/// data generator for kernel inputs.
pub struct XorShift32(pub u32);

impl XorShift32 {
    /// Next pseudo-random value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    /// Next value reduced to `0..bound`.
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::builder::ModuleBuilder;
    use tta_ir::interp::run_ret;

    #[test]
    fn for_range_counts() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let acc = fb.copy(0);
        for_range(&mut fb, 10, |fb, i| {
            let s = fb.add(acc, i);
            fb.copy_to(acc, s);
        });
        fb.ret(acc);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        assert_eq!(run_ret(&mb.finish(), &[]), 45);
    }

    #[test]
    fn while_loop_terminates() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = FunctionBuilder::new("main", 0, true);
        let x = fb.copy(1);
        while_loop(
            &mut fb,
            |fb| fb.lt(x, 100),
            |fb| {
                let d = fb.mul(x, 2);
                fb.copy_to(x, d);
            },
        );
        fb.ret(x);
        let id = mb.add(fb.finish());
        mb.set_entry(id);
        assert_eq!(run_ret(&mb.finish(), &[]), 128);
    }

    #[test]
    fn select_picks_sides() {
        for (c, want) in [(1, 10), (0, 20)] {
            let mut mb = ModuleBuilder::new("t");
            let mut fb = FunctionBuilder::new("main", 0, true);
            let cond = fb.copy(c);
            let v = select(&mut fb, cond, 10, 20);
            fb.ret(v);
            let id = mb.add(fb.finish());
            mb.set_entry(id);
            assert_eq!(run_ret(&mb.finish(), &[]), want);
        }
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift32(0x1234_5678);
        let mut b = XorShift32(0x1234_5678);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        assert_ne!(XorShift32(1).next(), XorShift32(2).next());
    }
}
