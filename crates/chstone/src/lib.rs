//! # tta-chstone — CHStone-style benchmark kernels
//!
//! The eight workloads of the paper's evaluation (CHStone \[27\] without the
//! two SoftFloat cases, exactly as the paper excludes them), each
//! implemented twice:
//!
//! * as a **native Rust reference** (`expected()` — the golden checksum),
//! * as an **IR program** built through `tta-ir` (`build()`), compiled and
//!   executed by every design point of the evaluation.
//!
//! Every kernel's `main` returns a checksum folded over its full output and
//! writes its output buffers to memory, so the differential tests compare
//! both the returned value and the final memory image against the IR
//! interpreter, and the interpreter result in turn must equal the native
//! reference.
//!
//! The kernels keep the algorithmic structure of their CHStone namesakes
//! (table-driven codecs, bit-twiddling crypto rounds, fixed-point DSP,
//! an ISA interpreter) at reduced input sizes so the full 13-machine
//! evaluation completes quickly; DESIGN.md documents the substitution.

#![warn(missing_docs)]

pub mod adpcm;
pub mod aes;
pub mod blowfish;
pub mod gsm;
pub mod jpeg;
pub mod mips;
pub mod motion;
pub mod reactive;
pub mod sha;
pub mod util;

use tta_ir::Module;

/// One benchmark kernel: a named pair of IR builder and native reference.
#[derive(Clone, Copy)]
pub struct Kernel {
    /// CHStone-style name (e.g. `"sha"`).
    pub name: &'static str,
    /// Build the IR module (entry returns the checksum).
    pub build: fn() -> Module,
    /// Compute the checksum natively (the golden value).
    pub expected: fn() -> i32,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

/// All eight kernels in the paper's reporting order.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "adpcm",
            build: adpcm::build,
            expected: adpcm::expected,
        },
        Kernel {
            name: "aes",
            build: aes::build,
            expected: aes::expected,
        },
        Kernel {
            name: "blowfish",
            build: blowfish::build,
            expected: blowfish::expected,
        },
        Kernel {
            name: "gsm",
            build: gsm::build,
            expected: gsm::expected,
        },
        Kernel {
            name: "jpeg",
            build: jpeg::build,
            expected: jpeg::expected,
        },
        Kernel {
            name: "mips",
            build: mips::build,
            expected: mips::expected,
        },
        Kernel {
            name: "motion",
            build: motion::build,
            expected: motion::expected,
        },
        Kernel {
            name: "sha",
            build: sha::build,
            expected: sha::expected,
        },
    ]
}

/// Look a kernel up by name.
pub fn by_name(name: &str) -> Option<Kernel> {
    all_kernels().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::Interpreter;

    /// Every kernel: verified IR + interpreter checksum equals the native
    /// reference.
    #[test]
    fn kernels_match_native_references() {
        for k in all_kernels() {
            let module = (k.build)();
            tta_ir::verify::verify_module(&module)
                .unwrap_or_else(|e| panic!("{}: verify failed: {e:?}", k.name));
            let r = Interpreter::new(&module)
                .run(&[])
                .unwrap_or_else(|e| panic!("{}: interp failed: {e}", k.name));
            assert_eq!(
                r.ret,
                Some((k.expected)()),
                "{}: interpreter checksum != native reference",
                k.name
            );
        }
    }

    #[test]
    fn kernels_have_distinct_nontrivial_checksums() {
        let sums: Vec<i32> = all_kernels().iter().map(|k| (k.expected)()).collect();
        for (k, s) in all_kernels().iter().zip(&sums) {
            assert_ne!(*s, 0, "{} checksum is trivially zero", k.name);
        }
        let mut uniq = sums.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), sums.len(), "checksum collision between kernels");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("sha").is_some());
        assert!(by_name("softfloat").is_none());
        assert_eq!(all_kernels().len(), 8);
    }
}
