//! Reactive example guests: interrupt-driven workloads for the MMIO and
//! interrupt layer, in the same build/expected shape as the CHStone
//! kernels so the eval pipeline can sweep them across every design
//! point (`tta_explore::eval::evaluate_reactive`).
//!
//! Unlike the closed-world kernels, a reactive guest only promises a
//! *timing-invariant* checksum: interrupt arrival cycles differ between
//! the three core styles (and the instruction-clocked reference
//! interpreter), so the guests are written to converge on the same
//! return value and UART transmit stream on every engine — they spin on
//! handler-maintained state instead of racing it. Scratch state like
//! the timer tick count is deliberately left out of the checksum.

use crate::Kernel;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::inst::MemRegion;
use tta_ir::Module;
use tta_model::io::{
    IoSpec, IRQ_CTRL_ADDR, TIMER_CTRL_ADDR, TIMER_PERIOD_ADDR, UART_RX_ADDR, UART_STATUS_ADDR,
    UART_TX_ADDR,
};

/// A reactive guest: a kernel-shaped build/expected pair plus the I/O
/// script it runs under and the UART bytes it must transmit.
#[derive(Clone)]
pub struct ReactiveGuest {
    /// Guest name (e.g. `"uart_echo"`).
    pub name: &'static str,
    /// Build the IR module (entry returns the checksum; `__irq` handler
    /// included).
    pub build: fn() -> Module,
    /// The interrupt schedule / device script the guest runs under.
    pub spec: fn() -> IoSpec,
    /// The timing-invariant checksum every engine must return.
    pub expected: fn() -> i32,
    /// The exact UART transmit stream every engine must produce.
    pub expected_tx: fn() -> Vec<u8>,
}

impl std::fmt::Debug for ReactiveGuest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactiveGuest")
            .field("name", &self.name)
            .finish()
    }
}

/// The bytes the echo server receives.
const ECHO_RX: [u8; 4] = [b'e', b'c', b'h', b'o'];

/// UART echo server. The rx script raises the UART line
/// ([`IoSpec::uart_irq_on_rx`]); the handler drains every available
/// byte — echoing each to tx and accumulating a running sum and count —
/// and `main` just enables interrupts and spins until the count reaches
/// the script length. Draining (rather than popping one byte per
/// interrupt) is what makes the guest schedule-robust: several arrivals
/// may collapse into one latched interrupt.
pub fn echo_build() -> Module {
    let n = ECHO_RX.len() as i32;
    let mut mb = ModuleBuilder::new("uart_echo");
    let state = mb.buffer(8); // word 0: byte sum, word 1: byte count

    let mut hb = FunctionBuilder::new("__irq", 0, false);
    let head = hb.new_block();
    let body = hb.new_block();
    let done = hb.new_block();
    hb.jump(head);
    hb.switch_to(head);
    let status = hb.ldw(UART_STATUS_ADDR as i32, MemRegion::ANY);
    let avail = hb.and(status, 1);
    hb.branch(avail, body, done);
    hb.switch_to(body);
    let rx = hb.ldw(UART_RX_ADDR as i32, MemRegion::ANY);
    let sum = hb.ldw(state.word(0), state.region);
    let sum2 = hb.add(sum, rx);
    hb.stw(sum2, state.word(0), state.region);
    let cnt = hb.ldw(state.word(1), state.region);
    let cnt2 = hb.add(cnt, 1);
    hb.stw(cnt2, state.word(1), state.region);
    hb.stw(rx, UART_TX_ADDR as i32, MemRegion::ANY);
    hb.jump(head);
    hb.switch_to(done);
    hb.ret_void();
    mb.add(hb.finish());

    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    let spin = fb.new_block();
    let out = fb.new_block();
    fb.jump(spin);
    fb.switch_to(spin);
    let cnt = fb.ldw(state.word(1), state.region);
    let more = fb.lt(cnt, n);
    fb.branch(more, spin, out);
    fb.switch_to(out);
    let sum = fb.ldw(state.word(0), state.region);
    let hi = fb.shl(cnt, 16);
    let ret = fb.xor(sum, hi);
    fb.ret(ret);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

/// The echo server's I/O script: every byte available from the start,
/// arrivals raising the UART interrupt line.
pub fn echo_spec() -> IoSpec {
    IoSpec {
        uart_rx: ECHO_RX.iter().map(|&b| (0, b)).collect(),
        uart_irq_on_rx: true,
        ..IoSpec::default()
    }
}

/// Echo checksum: byte sum in the low half, byte count in the high half.
pub fn echo_expected() -> i32 {
    let sum: i32 = ECHO_RX.iter().map(|&b| b as i32).sum();
    sum ^ ((ECHO_RX.len() as i32) << 16)
}

/// The echo server transmits exactly what it received, in order.
pub fn echo_expected_tx() -> Vec<u8> {
    ECHO_RX.to_vec()
}

/// Ticks the producer/consumer guest consumes before disarming the timer.
const TICKS: i32 = 8;
/// Timer period in cycles — far above the trap + handler cost on every
/// style, so the consumer is never starved by the interrupt rate.
const PERIOD: i32 = 50;

/// Timer-driven producer/consumer. The handler (producer) appends the
/// current tick index into an 8-slot ring buffer; `main` (consumer)
/// spins on the published tick count, folds each consumed slot into a
/// running checksum, and disarms the timer after [`TICKS`] items. The
/// checksum folds the *consumed values* (always `0..TICKS`, whatever
/// the arrival timing), never the raw tick counter — the producer may
/// run slightly past the consumer before the disarm lands, and how far
/// is style-dependent.
pub fn timer_build() -> Module {
    let mut mb = ModuleBuilder::new("timer_ticks");
    let ring = mb.buffer(8 * 4);
    let state = mb.buffer(8); // word 0: published tick count

    let mut hb = FunctionBuilder::new("__irq", 0, false);
    let t = hb.ldw(state.word(0), state.region);
    let slot = hb.and(t, 7);
    let off = hb.shl(slot, 2);
    let addr = hb.add(ring.base(), off);
    hb.stw(t, addr, ring.region);
    let t2 = hb.add(t, 1);
    hb.stw(t2, state.word(0), state.region);
    hb.ret_void();
    mb.add(hb.finish());

    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(PERIOD, TIMER_PERIOD_ADDR as i32, MemRegion::ANY);
    fb.stw(1, TIMER_CTRL_ADDR as i32, MemRegion::ANY);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    let consumed = fb.copy(0);
    let acc = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let out = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let published = fb.ldw(state.word(0), state.region);
    let ready = fb.lt(consumed, published);
    fb.branch(ready, body, head);
    fb.switch_to(body);
    let slot = fb.and(consumed, 7);
    let off = fb.shl(slot, 2);
    let addr = fb.add(ring.base(), off);
    let val = fb.ldw(addr, ring.region);
    let doubled = fb.shl(acc, 1);
    let acc2 = fb.xor(doubled, val);
    fb.copy_to(acc, acc2);
    let consumed2 = fb.add(consumed, 1);
    fb.copy_to(consumed, consumed2);
    let more = fb.lt(consumed, TICKS);
    fb.branch(more, head, out);
    fb.switch_to(out);
    fb.stw(0, TIMER_CTRL_ADDR as i32, MemRegion::ANY);
    let hi = fb.shl(consumed, 16);
    let ret = fb.xor(acc, hi);
    fb.ret(ret);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

/// The timer guest needs no external script — its interrupt source is
/// the cycle timer it arms itself.
pub fn timer_spec() -> IoSpec {
    IoSpec::default()
}

/// Timer checksum: `(acc << 1) ^ tick` folded over ticks `0..TICKS`,
/// with the consumed count in the high half.
pub fn timer_expected() -> i32 {
    let acc = (0..TICKS).fold(0i32, |a, t| (a << 1) ^ t);
    acc ^ (TICKS << 16)
}

/// The timer guest never touches the UART.
pub fn timer_expected_tx() -> Vec<u8> {
    Vec::new()
}

/// All reactive example guests.
pub fn all_guests() -> Vec<ReactiveGuest> {
    vec![
        ReactiveGuest {
            name: "uart_echo",
            build: echo_build,
            spec: echo_spec,
            expected: echo_expected,
            expected_tx: echo_expected_tx,
        },
        ReactiveGuest {
            name: "timer_ticks",
            build: timer_build,
            spec: timer_spec,
            expected: timer_expected,
            expected_tx: timer_expected_tx,
        },
    ]
}

/// Look a reactive guest up by name.
pub fn guest_by_name(name: &str) -> Option<ReactiveGuest> {
    all_guests().into_iter().find(|g| g.name == name)
}

/// The closed-world view of a guest (build + expected), for call sites
/// that only need the [`Kernel`] shape. The I/O spec must still come
/// from [`ReactiveGuest::spec`].
pub fn as_kernel(g: &ReactiveGuest) -> Kernel {
    Kernel {
        name: g.name,
        build: g.build,
        expected: g.expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::Interpreter;
    use tta_model::io::IoSystem;

    /// Every guest: verified IR, and the golden interpreter run under
    /// the guest's own spec matches the native expected checksum and
    /// transmit stream.
    #[test]
    fn guests_match_native_references_under_their_specs() {
        for g in all_guests() {
            let module = (g.build)();
            tta_ir::verify::verify_module(&module)
                .unwrap_or_else(|e| panic!("{}: verify failed: {e:?}", g.name));
            let mut io = IoSystem::new(&(g.spec)());
            let r = Interpreter::new(&module)
                .run_with_io(&[], &mut io)
                .unwrap_or_else(|e| panic!("{}: interp failed: {e}", g.name));
            assert_eq!(r.ret, Some((g.expected)()), "{}: checksum", g.name);
            assert_eq!(io.uart_tx(), (g.expected_tx)(), "{}: uart tx", g.name);
            assert!(io.irqs_delivered > 0, "{}: no interrupts delivered", g.name);
        }
    }

    #[test]
    fn guest_checksums_are_nontrivial_and_distinct() {
        let sums: Vec<i32> = all_guests().iter().map(|g| (g.expected)()).collect();
        for (g, s) in all_guests().iter().zip(&sums) {
            assert_ne!(*s, 0, "{} checksum is trivially zero", g.name);
        }
        let mut uniq = sums.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), sums.len(), "checksum collision between guests");
        assert!(guest_by_name("uart_echo").is_some());
        assert!(guest_by_name("sha").is_none());
        assert_eq!(as_kernel(&all_guests()[0]).name, "uart_echo");
    }
}
