//! `motion` — MPEG-2 motion-vector decoding (CHStone's `motion` workload).
//!
//! Bit-serial entropy decoding: 128 motion-vector pairs are encoded as
//! signed Exp-Golomb codes in a packed bitstream (MSB first); the kernel
//! reads the stream bit by bit, reconstructs each vector against its
//! predictor with MPEG-style wraparound into [-1024, 1023], and folds the
//! vectors into a checksum. The per-bit loop with data-dependent exits is
//! the profile that makes CHStone's `motion` branch-heavy.

#![allow(clippy::needless_range_loop)] // indexing mirrors the C reference

use crate::util::{for_range, if_then, while_loop, XorShift32};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder, VReg};

const N_VECTORS: usize = 128;

/// The raw motion-vector deltas to encode (two components per vector).
fn deltas() -> Vec<i32> {
    let mut rng = XorShift32(0x0307_1011);
    (0..N_VECTORS * 2)
        .map(|_| (rng.below(1024) as i32) - 512)
        .collect()
}

/// A simple MSB-first bit writer.
struct BitWriter {
    words: Vec<u32>,
    bit: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            words: vec![0],
            bit: 0,
        }
    }
    fn put(&mut self, b: u32) {
        let w = self.words.last_mut().unwrap();
        *w |= (b & 1) << (31 - self.bit);
        self.bit += 1;
        if self.bit == 32 {
            self.words.push(0);
            self.bit = 0;
        }
    }
    fn put_bits(&mut self, v: u32, n: u32) {
        for k in (0..n).rev() {
            self.put(v >> k);
        }
    }
}

/// Signed Exp-Golomb: map v to k = (v <= 0) ? -2v : 2v-1, then write k+1
/// with `len-1` leading zeros.
fn encode_stream() -> Vec<u32> {
    let mut bw = BitWriter::new();
    for &v in &deltas() {
        let k = if v <= 0 {
            (-2 * v) as u32
        } else {
            (2 * v - 1) as u32
        };
        let code = k + 1;
        let len = 32 - code.leading_zeros();
        for _ in 0..len - 1 {
            bw.put(0);
        }
        bw.put_bits(code, len);
    }
    bw.words
}

/// Native reference: decode the stream, reconstruct, checksum.
pub fn expected() -> i32 {
    let stream = encode_stream();
    let mut pos = 0usize;
    let getbit = |pos: &mut usize| -> i32 {
        let w = stream[*pos / 32];
        let b = (w >> (31 - (*pos % 32))) & 1;
        *pos += 1;
        b as i32
    };
    let mut sum = 0x307i32;
    let mut pred = [0i32; 2];
    for i in 0..N_VECTORS {
        for c in 0..2 {
            // Count leading zeros.
            let mut zeros = 0;
            while getbit(&mut pos) == 0 {
                zeros += 1;
            }
            // Read the remaining `zeros` bits after the leading 1.
            let mut code = 1i32;
            for _ in 0..zeros {
                code = (code << 1) | getbit(&mut pos);
            }
            let k = code - 1;
            let delta = if k & 1 != 0 { (k + 1) / 2 } else { -(k / 2) };
            // Wraparound reconstruction.
            let mut mv = pred[c] + delta;
            if mv > 1023 {
                mv -= 2048;
            }
            if mv < -1024 {
                mv += 2048;
            }
            pred[c] = mv;
            sum = sum.wrapping_mul(37) ^ mv ^ ((i as i32) << c);
        }
    }
    sum
}

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("motion");
    let words: Vec<i32> = encode_stream().iter().map(|&w| w as i32).collect();
    let stream = mb.data_words(&words);
    let mv_out = mb.buffer((N_VECTORS * 2 * 4) as u32);
    let mut fb = FunctionBuilder::new("main", 0, true);

    let stream_base = fb.copy(stream.addr as i32);
    let pos = fb.copy(0);
    let sum = fb.copy(0x307);
    let pred0 = fb.copy(0);
    let pred1 = fb.copy(0);

    // getbit: reads the bit at `pos` and advances it.
    let emit_getbit = |fb: &mut FunctionBuilder, pos: VReg, stream_base: VReg| -> VReg {
        let word_idx = fb.shru(pos, 5);
        let off = fb.shl(word_idx, 2);
        let a = fb.add(stream_base, off);
        let w = fb.ldw(a, stream.region);
        let inb = fb.and(pos, 31);
        let sh = fb.sub(31, inb);
        let b0 = fb.shru(w, sh);
        let b = fb.and(b0, 1);
        let np = fb.add(pos, 1);
        fb.copy_to(pos, np);
        b
    };

    for_range(&mut fb, N_VECTORS as i32, |fb, i| {
        for c in 0..2u32 {
            let pred = if c == 0 { pred0 } else { pred1 };
            // Count leading zeros.
            let zeros = fb.copy(0);
            let bit = fb.vreg();
            let b0 = emit_getbit(fb, pos, stream_base);
            fb.copy_to(bit, b0);
            while_loop(
                fb,
                |fb| fb.eq(bit, 0),
                |fb| {
                    let nz = fb.add(zeros, 1);
                    fb.copy_to(zeros, nz);
                    let nb = emit_getbit(fb, pos, stream_base);
                    fb.copy_to(bit, nb);
                },
            );
            // Read `zeros` more bits after the leading 1.
            let code = fb.copy(1);
            for_range(fb, zeros, |fb, _| {
                let nb = emit_getbit(fb, pos, stream_base);
                let sh = fb.shl(code, 1);
                let nc = fb.ior(sh, nb);
                fb.copy_to(code, nc);
            });
            let k = fb.sub(code, 1);
            // Un-map the sign.
            let odd = fb.and(k, 1);
            let delta = fb.vreg();
            crate::util::if_else(
                fb,
                odd,
                |fb| {
                    let t = fb.add(k, 1);
                    let d = fb.shr(t, 1);
                    fb.copy_to(delta, d);
                },
                |fb| {
                    let h = fb.shr(k, 1);
                    let d = fb.sub(0, h);
                    fb.copy_to(delta, d);
                },
            );
            // Wraparound reconstruction.
            let mv = fb.add(pred, delta);
            let hi = fb.gt(mv, 1023);
            if_then(fb, hi, |fb| {
                let w = fb.sub(mv, 2048);
                fb.copy_to(mv, w);
            });
            let lo = fb.lt(mv, -1024);
            if_then(fb, lo, |fb| {
                let w = fb.add(mv, 2048);
                fb.copy_to(mv, w);
            });
            fb.copy_to(pred, mv);
            // Store and fold.
            let idx2 = fb.shl(i, 1);
            let idx = fb.add(idx2, c as i32);
            let off = fb.shl(idx, 2);
            let oa = fb.add(mv_out.addr as i32, off);
            fb.stw(mv, oa, mv_out.region);
            let tag = fb.shl(i, c as i32);
            let m = fb.mul(sum, 37);
            let x1 = fb.xor(m, mv);
            let x2 = fb.xor(x1, tag);
            fb.copy_to(sum, x2);
        }
    });

    fb.ret(sum);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn exp_golomb_roundtrip() {
        // Decode the generated stream natively and compare deltas.
        let stream = encode_stream();
        let mut pos = 0usize;
        let getbit = |pos: &mut usize| -> i32 {
            let w = stream[*pos / 32];
            let b = (w >> (31 - (*pos % 32))) & 1;
            *pos += 1;
            b as i32
        };
        for &want in &deltas() {
            let mut zeros = 0;
            while getbit(&mut pos) == 0 {
                zeros += 1;
            }
            let mut code = 1i32;
            for _ in 0..zeros {
                code = (code << 1) | getbit(&mut pos);
            }
            let k = code - 1;
            let got = if k & 1 != 0 { (k + 1) / 2 } else { -(k / 2) };
            assert_eq!(got, want);
        }
    }

    #[test]
    fn wraparound_is_applied() {
        // The deltas can push the predictor over the representable range;
        // make sure the reference actually exercises the wrap path.
        let stream_sum = expected();
        assert_ne!(stream_sum, 0x307);
    }
}
