//! `sha` — SHA-1 message digest (CHStone's `sha` workload).
//!
//! Hashes a deterministic 448-byte message (pre-padded to eight 512-bit
//! blocks during data generation; the kernel itself is the full 80-round
//! compression loop, the part that dominates CHStone's profile). The
//! message words are stored pre-byteswapped so the little-endian `ldw`
//! yields the big-endian word stream SHA-1 consumes.

#![allow(clippy::needless_range_loop)] // indexing mirrors the C reference

use crate::util::{for_range, XorShift32};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder, Operand, VReg};

/// Message length before padding, in bytes.
const MSG_LEN: usize = 448;
/// Padded length (multiple of 64).
const PADDED: usize = 512;
const BLOCKS: usize = PADDED / 64;

/// The padded message as big-endian u32 words.
fn message_words() -> Vec<i32> {
    let mut bytes = vec![0u8; PADDED];
    let mut rng = XorShift32(0x51a5_1a5a);
    for b in bytes.iter_mut().take(MSG_LEN) {
        *b = rng.next() as u8;
    }
    // SHA-1 padding: 0x80, zeros, 64-bit big-endian bit length.
    bytes[MSG_LEN] = 0x80;
    let bits = (MSG_LEN as u64) * 8;
    bytes[PADDED - 8..].copy_from_slice(&bits.to_be_bytes());
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Native reference: SHA-1 over the padded message; checksum is the XOR of
/// the five state words.
pub fn expected() -> i32 {
    let words = message_words();
    let mut h = [
        0x6745_2301u32,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];
    for blk in 0..BLOCKS {
        let mut w = [0u32; 80];
        for t in 0..16 {
            w[t] = words[blk * 16 + t] as u32;
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t / 20 {
                0 => ((b & c) | (!b & d), 0x5A82_7999u32),
                1 => (b ^ c ^ d, 0x6ED9_EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    (h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]) as i32
}

/// Emit `rotl(x, n)` for a constant rotation.
fn rotl(fb: &mut FunctionBuilder, x: impl Into<Operand> + Copy, n: i32) -> VReg {
    let l = fb.shl(x, n);
    let r = fb.shru(x, 32 - n);
    fb.ior(l, r)
}

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("sha");
    let msg = mb.data_words(&message_words());
    let w_buf = mb.buffer(80 * 4);
    let out = mb.buffer(5 * 4);
    let mut fb = FunctionBuilder::new("main", 0, true);

    // Hash state (wide constants, manually kept in registers).
    let h: Vec<VReg> = [
        0x6745_2301u32,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ]
    .iter()
    .map(|&v| fb.copy(v as i32))
    .collect();
    // Round constants.
    let ks: Vec<VReg> = [0x5A82_7999u32, 0x6ED9_EBA1, 0x8F1B_BCDC, 0xCA62_C1D6]
        .iter()
        .map(|&v| fb.copy(v as i32))
        .collect();
    let msg_base = fb.copy(msg.addr as i32);
    let w_base = fb.copy(w_buf.addr as i32);

    for_range(&mut fb, BLOCKS as i32, |fb, blk| {
        // W[0..16] = message words of this block.
        let blk_off = fb.shl(blk, 6); // *64
        let blk_base = fb.add(msg_base, blk_off);
        for_range(fb, 16, |fb, t| {
            let off = fb.shl(t, 2);
            let src = fb.add(blk_base, off);
            let v = fb.ldw(src, msg.region);
            let dst = fb.add(w_base, off);
            fb.stw(v, dst, w_buf.region);
        });
        // W[16..80] expansion.
        for_range(fb, 64, |fb, t16| {
            let t = fb.add(t16, 16);
            let off = fb.shl(t, 2);
            let addr_t = fb.add(w_base, off);
            let ld = |fb: &mut FunctionBuilder, back: i32| {
                let a = fb.sub(addr_t, back * 4);
                fb.ldw(a, w_buf.region)
            };
            let w3 = ld(fb, 3);
            let w8 = ld(fb, 8);
            let w14 = ld(fb, 14);
            let w16 = ld(fb, 16);
            let x1 = fb.xor(w3, w8);
            let x2 = fb.xor(x1, w14);
            let x3 = fb.xor(x2, w16);
            let r = rotl(fb, x3, 1);
            fb.stw(r, addr_t, w_buf.region);
        });

        // Working variables.
        let a = fb.copy(h[0]);
        let b = fb.copy(h[1]);
        let c = fb.copy(h[2]);
        let d = fb.copy(h[3]);
        let e = fb.copy(h[4]);

        // The four 20-round phases.
        for phase in 0..4 {
            let k = ks[phase];
            for_range(fb, 20, |fb, t| {
                let tt = fb.add(t, (phase as i32) * 20);
                let off = fb.shl(tt, 2);
                let wa = fb.add(w_base, off);
                let wt = fb.ldw(wa, w_buf.region);
                let f = match phase {
                    0 => {
                        let bc = fb.and(b, c);
                        let nb = fb.xor(b, -1);
                        let nbd = fb.and(nb, d);
                        fb.ior(bc, nbd)
                    }
                    1 | 3 => {
                        let t1 = fb.xor(b, c);
                        fb.xor(t1, d)
                    }
                    _ => {
                        let bc = fb.and(b, c);
                        let bd = fb.and(b, d);
                        let cd = fb.and(c, d);
                        let t1 = fb.ior(bc, bd);
                        fb.ior(t1, cd)
                    }
                };
                let ra = rotl(fb, a, 5);
                let s1 = fb.add(ra, f);
                let s2 = fb.add(s1, e);
                let s3 = fb.add(s2, k);
                let tmp = fb.add(s3, wt);
                fb.copy_to(e, d);
                fb.copy_to(d, c);
                let rb = rotl(fb, b, 30);
                fb.copy_to(c, rb);
                fb.copy_to(b, a);
                fb.copy_to(a, tmp);
            });
        }

        for (hi, v) in h.iter().zip([a, b, c, d, e]) {
            let s = fb.add(*hi, v);
            fb.copy_to(*hi, s);
        }
    });

    // Outputs and checksum.
    let mut sum = fb.copy(0);
    for (i, hi) in h.iter().enumerate() {
        fb.stw(*hi, out.word(i as u32), out.region);
        let s = fb.xor(sum, *hi);
        sum = s;
    }
    fb.ret(sum);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn known_answer_empty_style_check() {
        // The reference must change if the message changes — guards against
        // a reference that ignores its input.
        let mut w = message_words();
        w[0] ^= 1;
        // (Recompute manually with the flipped word.)
        let mut h = [
            0x6745_2301u32,
            0xEFCD_AB89,
            0x98BA_DCFE,
            0x1032_5476,
            0xC3D2_E1F0,
        ];
        for blk in 0..BLOCKS {
            let mut ws = [0u32; 80];
            for t in 0..16 {
                ws[t] = w[blk * 16 + t] as u32;
            }
            for t in 16..80 {
                ws[t] = (ws[t - 3] ^ ws[t - 8] ^ ws[t - 14] ^ ws[t - 16]).rotate_left(1);
            }
            let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
            for (t, &wt) in ws.iter().enumerate() {
                let (f, k) = match t / 20 {
                    0 => ((b & c) | (!b & d), 0x5A82_7999u32),
                    1 => (b ^ c ^ d, 0x6ED9_EBA1),
                    2 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                    _ => (b ^ c ^ d, 0xCA62_C1D6),
                };
                let tmp = a
                    .rotate_left(5)
                    .wrapping_add(f)
                    .wrapping_add(e)
                    .wrapping_add(k)
                    .wrapping_add(wt);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = tmp;
            }
            h[0] = h[0].wrapping_add(a);
            h[1] = h[1].wrapping_add(b);
            h[2] = h[2].wrapping_add(c);
            h[3] = h[3].wrapping_add(d);
            h[4] = h[4].wrapping_add(e);
        }
        assert_ne!((h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]) as i32, expected());
    }
}
