//! `jpeg` — JPEG block decoding (CHStone's `jpeg` workload).
//!
//! The compute core of baseline JPEG decoding: dequantisation, zigzag
//! reordering and the 2-D 8x8 inverse DCT in fixed-point integer
//! arithmetic over sixteen coefficient blocks, followed by level shift and
//! clamping. (CHStone decodes a full JFIF container including the Huffman
//! entropy stage; the bit-serial entropy decoding profile is covered by the
//! `motion` kernel, and DESIGN.md records the substitution.)
//!
//! The Q13 cosine table is generated once and shared verbatim by the
//! native reference and the IR program, so the two implementations agree
//! bit-for-bit by construction.

#![allow(clippy::needless_range_loop)] // indexing mirrors the C reference

use crate::util::{for_range, if_then, XorShift32};
use tta_ir::{FunctionBuilder, Module, ModuleBuilder};

const BLOCKS: usize = 16;

/// Standard JPEG luminance quantisation table (natural order).
const QTABLE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order: `ZIGZAG[k]` is the natural-order index of the k-th
/// transmitted coefficient.
const ZIGZAG: [i32; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Q13 IDCT basis: `T[u][x] = round(c_u/2 * cos((2x+1)u*pi/16) * 8192)`.
fn cos_table() -> [[i32; 8]; 8] {
    let mut t = [[0i32; 8]; 8];
    for (u, row) in t.iter_mut().enumerate() {
        let cu = if u == 0 {
            1.0 / std::f64::consts::SQRT_2
        } else {
            1.0
        };
        for (x, e) in row.iter_mut().enumerate() {
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *e = (cu / 2.0 * angle.cos() * 8192.0).round() as i32;
        }
    }
    t
}

/// Synthetic sparse coefficient blocks in zigzag order: a strong DC value
/// plus a handful of low-frequency ACs, like real JPEG data.
fn coefficients() -> Vec<i32> {
    let mut rng = XorShift32(0x0dc7_1d17);
    let mut out = Vec::with_capacity(BLOCKS * 64);
    for _ in 0..BLOCKS {
        for k in 0..64 {
            let v = if k == 0 {
                (rng.below(256) as i32) - 128
            } else if k < 12 {
                (rng.below(33) as i32) - 16
            } else {
                0
            };
            out.push(v);
        }
    }
    out
}

/// Native reference: decode every block; rolling checksum over the output
/// pixels.
pub fn expected() -> i32 {
    let t = cos_table();
    let coefs = coefficients();
    let mut sum = 0x11d0i32;
    for blk in 0..BLOCKS {
        // Dequantise + un-zigzag.
        let mut f = [0i32; 64];
        for k in 0..64 {
            f[ZIGZAG[k] as usize] = coefs[blk * 64 + k] * QTABLE[k];
        }
        // Row pass (keep 3 extra bits of precision).
        let mut tmp = [0i32; 64];
        for y in 0..8 {
            for x in 0..8 {
                let mut acc = 0i32;
                for u in 0..8 {
                    acc = acc.wrapping_add(f[8 * y + u].wrapping_mul(t[u][x]));
                }
                tmp[8 * y + x] = acc >> 10;
            }
        }
        // Column pass.
        for x in 0..8 {
            for y in 0..8 {
                let mut acc = 0i32;
                for v in 0..8 {
                    acc = acc.wrapping_add(tmp[8 * v + x].wrapping_mul(t[v][y]));
                }
                let mut p = (acc >> 16) + 128;
                p = p.clamp(0, 255);
                sum = sum.wrapping_mul(17) ^ (p + ((8 * y + x) as i32));
            }
        }
    }
    sum
}

/// Build the IR module.
pub fn build() -> Module {
    let mut mb = ModuleBuilder::new("jpeg");
    let t = cos_table();
    let t_flat: Vec<i32> = t.iter().flatten().copied().collect();
    let cos_t = mb.data_words(&t_flat);
    let qtab = mb.data_words(&QTABLE);
    let zz = mb.data_words(&ZIGZAG);
    let coefs = mb.data_words(&coefficients());
    let f_buf = mb.buffer(64 * 4);
    let tmp_buf = mb.buffer(64 * 4);
    let out_buf = mb.buffer((BLOCKS * 64) as u32);
    let mut fb = FunctionBuilder::new("main", 0, true);

    let t_base = fb.copy(cos_t.addr as i32);
    let f_base = fb.copy(f_buf.addr as i32);
    let tmp_base = fb.copy(tmp_buf.addr as i32);
    let sum = fb.copy(0x11d0);

    for_range(&mut fb, BLOCKS as i32, |fb, blk| {
        let blk_off = fb.shl(blk, 8); // *64*4 bytes
                                      // Dequantise + un-zigzag.
        for_range(fb, 64, |fb, k| {
            let ko = fb.shl(k, 2);
            let ca0 = fb.add(coefs.addr as i32, blk_off);
            let ca = fb.add(ca0, ko);
            let c = fb.ldw(ca, coefs.region);
            let qa = fb.add(qtab.addr as i32, ko);
            let q = fb.ldw(qa, qtab.region);
            let d = fb.mul(c, q);
            let za = fb.add(zz.addr as i32, ko);
            let nat = fb.ldw(za, zz.region);
            let no = fb.shl(nat, 2);
            let da = fb.add(f_base, no);
            fb.stw(d, da, f_buf.region);
        });
        // Row pass.
        for_range(fb, 8, |fb, y| {
            let row_off = fb.shl(y, 5); // *8*4
            for_range(fb, 8, |fb, x| {
                let acc = fb.copy(0);
                let xo = fb.shl(x, 2);
                for_range(fb, 8, |fb, u| {
                    let uo = fb.shl(u, 2);
                    let fa0 = fb.add(f_base, row_off);
                    let fa = fb.add(fa0, uo);
                    let fv = fb.ldw(fa, f_buf.region);
                    let to0 = fb.shl(u, 5);
                    let ta0 = fb.add(t_base, to0);
                    let ta = fb.add(ta0, xo);
                    let tv = fb.ldw(ta, cos_t.region);
                    let p = fb.mul(fv, tv);
                    let na = fb.add(acc, p);
                    fb.copy_to(acc, na);
                });
                let v = fb.shr(acc, 10);
                let da0 = fb.add(tmp_base, row_off);
                let da = fb.add(da0, xo);
                fb.stw(v, da, tmp_buf.region);
            });
        });
        // Column pass + output.
        for_range(fb, 8, |fb, x| {
            let xo = fb.shl(x, 2);
            for_range(fb, 8, |fb, y| {
                let acc = fb.copy(0);
                let yo = fb.shl(y, 2);
                for_range(fb, 8, |fb, v| {
                    let vo32 = fb.shl(v, 5);
                    let ta0 = fb.add(tmp_base, vo32);
                    let ta = fb.add(ta0, xo);
                    let tv = fb.ldw(ta, tmp_buf.region);
                    let co0 = fb.add(t_base, vo32);
                    let ca = fb.add(co0, yo);
                    let cv = fb.ldw(ca, cos_t.region);
                    let p = fb.mul(tv, cv);
                    let na = fb.add(acc, p);
                    fb.copy_to(acc, na);
                });
                let sh = fb.shr(acc, 16);
                let p = fb.add(sh, 128);
                let lo = fb.lt(p, 0);
                if_then(fb, lo, |fb| fb.copy_to(p, 0));
                let hi = fb.gt(p, 255);
                if_then(fb, hi, |fb| fb.copy_to(p, 255));
                // Store the pixel.
                let row = fb.shl(y, 3);
                let idx = fb.add(row, x);
                let oa0 = fb.shl(blk, 6);
                let oa1 = fb.add(oa0, idx);
                let oa = fb.add(out_buf.addr as i32, oa1);
                fb.stq(p, oa, out_buf.region);
                // Checksum.
                let pi = fb.add(p, idx);
                let m = fb.mul(sum, 17);
                let xr = fb.xor(m, pi);
                fb.copy_to(sum, xr);
            });
        });
    });

    fb.ret(sum);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::run_ret;

    #[test]
    fn matches_reference() {
        assert_eq!(run_ret(&build(), &[]), expected());
    }

    #[test]
    fn idct_of_pure_dc_is_flat() {
        // A DC-only block must decode to a uniform pixel value.
        let t = cos_table();
        let mut f = [0i32; 64];
        f[0] = 64 * 16; // DC * q
        let mut tmp = [0i32; 64];
        for y in 0..8 {
            for x in 0..8 {
                let mut acc = 0;
                for u in 0..8 {
                    acc += f[8 * y + u] * t[u][x];
                }
                tmp[8 * y + x] = acc >> 10;
            }
        }
        let mut pix = vec![];
        for x in 0..8 {
            for y in 0..8 {
                let mut acc = 0;
                for v in 0..8 {
                    acc += tmp[8 * v + x] * t[v][y];
                }
                pix.push(((acc >> 16) + 128).clamp(0, 255));
            }
        }
        assert!(pix.windows(2).all(|w| (w[0] - w[1]).abs() <= 1), "{pix:?}");
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z as usize]);
            seen[z as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
