//! Transport buses and their connectivity.
//!
//! A TTA instruction has one *move slot* per bus; each slot programs one data
//! transport from a source socket to a destination socket on that bus
//! (paper §III-A, Fig. 2). Connectivity is modelled at component granularity:
//! a bus lists which RF read/write ports and FU result/operand/trigger ports
//! it can reach. The per-slot field widths of the instruction encoding are
//! derived from these lists (more reachable sockets → wider fields), which is
//! exactly the mechanism behind the bus-merged `bm-tta` design points: fewer,
//! less-connected buses → narrower instructions.

use crate::fu::FuId;
use crate::rf::RfId;

/// Index of a bus within its [`Machine`](crate::Machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BusId(pub u16);

impl std::fmt::Display for BusId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A source socket reachable from a bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcConn {
    /// A read port of a register file (the slot's source field then carries
    /// the register index).
    RfRead(RfId),
    /// The result port of a function unit (software bypassing reads this).
    FuResult(FuId),
}

/// A destination socket reachable from a bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DstConn {
    /// A write port of a register file.
    RfWrite(RfId),
    /// The (storing, non-trigger) operand port of a function unit.
    FuOperand(FuId),
    /// The trigger port of a function unit (the slot's destination field
    /// then also carries the opcode).
    FuTrigger(FuId),
}

/// One transport bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    /// Human-readable name, unique within the machine (e.g. `"b0"`).
    pub name: String,
    /// Data width in bits (32 throughout the paper).
    pub width: u16,
    /// Short-immediate width of this bus's source field in bits: immediate
    /// values representable in `simm_bits` (signed) ride for free inside the
    /// move; larger constants need the long-immediate mechanism.
    pub simm_bits: u8,
    /// Source sockets reachable from this bus.
    pub sources: Vec<SrcConn>,
    /// Destination sockets reachable from this bus.
    pub dests: Vec<DstConn>,
}

impl Bus {
    /// A 32-bit bus with 8-bit short immediates and no connections yet.
    pub fn new(name: impl Into<String>) -> Self {
        Bus {
            name: name.into(),
            width: 32,
            simm_bits: 8,
            sources: Vec::new(),
            dests: Vec::new(),
        }
    }

    /// Whether the bus can read the given source socket.
    pub fn reads(&self, s: SrcConn) -> bool {
        self.sources.contains(&s)
    }

    /// Whether the bus can write the given destination socket.
    pub fn writes(&self, d: DstConn) -> bool {
        self.dests.contains(&d)
    }

    /// Whether a signed immediate value fits in this bus's short-immediate
    /// field.
    pub fn simm_fits(&self, value: i32) -> bool {
        if self.simm_bits == 0 {
            return false;
        }
        if self.simm_bits >= 32 {
            return true;
        }
        let half = 1i64 << (self.simm_bits - 1);
        (value as i64) >= -half && (value as i64) < half
    }

    /// Add a source connection (idempotent).
    pub fn connect_src(&mut self, s: SrcConn) {
        if !self.sources.contains(&s) {
            self.sources.push(s);
        }
    }

    /// Add a destination connection (idempotent).
    pub fn connect_dst(&mut self, d: DstConn) {
        if !self.dests.contains(&d) {
            self.dests.push(d);
        }
    }

    /// Merge another bus's connectivity into this one, producing the union
    /// (used by the greedy bus-merging transform for `bm-tta`).
    pub fn merge_from(&mut self, other: &Bus) {
        for &s in &other.sources {
            self.connect_src(s);
        }
        for &d in &other.dests {
            self.connect_dst(d);
        }
        self.simm_bits = self.simm_bits.max(other.simm_bits);
        self.width = self.width.max(other.width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simm_ranges() {
        let mut b = Bus::new("b0");
        assert_eq!(b.simm_bits, 8);
        assert!(b.simm_fits(127));
        assert!(b.simm_fits(-128));
        assert!(!b.simm_fits(128));
        assert!(!b.simm_fits(-129));
        b.simm_bits = 0;
        assert!(!b.simm_fits(0));
        b.simm_bits = 32;
        assert!(b.simm_fits(i32::MIN));
        assert!(b.simm_fits(i32::MAX));
    }

    #[test]
    fn connect_is_idempotent() {
        let mut b = Bus::new("b0");
        b.connect_src(SrcConn::RfRead(RfId(0)));
        b.connect_src(SrcConn::RfRead(RfId(0)));
        b.connect_dst(DstConn::FuTrigger(FuId(1)));
        b.connect_dst(DstConn::FuTrigger(FuId(1)));
        assert_eq!(b.sources.len(), 1);
        assert_eq!(b.dests.len(), 1);
    }

    #[test]
    fn merge_unions_connectivity() {
        let mut a = Bus::new("a");
        a.connect_src(SrcConn::RfRead(RfId(0)));
        a.simm_bits = 6;
        let mut b = Bus::new("b");
        b.connect_src(SrcConn::FuResult(FuId(0)));
        b.connect_dst(DstConn::RfWrite(RfId(0)));
        b.simm_bits = 8;
        a.merge_from(&b);
        assert_eq!(a.sources.len(), 2);
        assert_eq!(a.dests.len(), 1);
        assert_eq!(a.simm_bits, 8);
    }
}
