//! Function units.
//!
//! The evaluated TTA variant (paper §III-B, Fig. 3) gives every function unit
//! one *trigger* input port (writing to it starts an operation), at most one
//! additional *operand* input port with storage, and one *result* output
//! port. Units are fully pipelined with semi-virtual time latching: a new
//! operation may be triggered every cycle, and a result stays readable in the
//! result register until the next operation on the same unit overwrites it.

use crate::op::{OpClass, Opcode};

/// Index of a function unit within its [`Machine`](crate::Machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuId(pub u16);

impl std::fmt::Display for FuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FU{}", self.0)
    }
}

/// The kind of a function unit, constraining which opcodes it may host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Arithmetic-logic unit.
    Alu,
    /// Load-store unit.
    Lsu,
    /// Control unit (jumps, halt). Exactly one per machine.
    Ctrl,
}

impl FuKind {
    /// The operation class hosted by this unit kind.
    pub fn op_class(self) -> OpClass {
        match self {
            FuKind::Alu => OpClass::Alu,
            FuKind::Lsu => OpClass::Lsu,
            FuKind::Ctrl => OpClass::Ctrl,
        }
    }
}

/// A function unit description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionUnit {
    /// Human-readable name, unique within the machine (e.g. `"alu0"`).
    pub name: String,
    /// Unit kind.
    pub kind: FuKind,
    /// Operations implemented by this unit (opcode selected by the trigger
    /// move's destination field).
    pub ops: Vec<Opcode>,
}

impl FunctionUnit {
    /// A full Table-I ALU (all fourteen integer operations).
    pub fn full_alu(name: impl Into<String>) -> Self {
        FunctionUnit {
            name: name.into(),
            kind: FuKind::Alu,
            ops: Opcode::ALU_OPS.to_vec(),
        }
    }

    /// A full Table-I LSU (all eight memory operations, absolute addresses).
    pub fn full_lsu(name: impl Into<String>) -> Self {
        FunctionUnit {
            name: name.into(),
            kind: FuKind::Lsu,
            ops: Opcode::LSU_OPS.to_vec(),
        }
    }

    /// The control unit (absolute jump, conditional jumps, halt).
    pub fn control_unit(name: impl Into<String>) -> Self {
        FunctionUnit {
            name: name.into(),
            kind: FuKind::Ctrl,
            ops: Opcode::CTRL_OPS.to_vec(),
        }
    }

    /// Whether the unit implements the given opcode.
    pub fn supports(&self, op: Opcode) -> bool {
        self.ops.contains(&op)
    }

    /// Number of distinct opcodes, which sizes the trigger port's opcode
    /// field in the instruction encoding.
    pub fn opcode_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether any hosted operation uses the (non-trigger) operand port.
    pub fn has_operand_port(&self) -> bool {
        self.ops.iter().any(|op| op.num_inputs() == 2)
    }

    /// Whether any hosted operation produces a result (sizes the result
    /// port).
    pub fn has_result_port(&self) -> bool {
        self.ops.iter().any(|op| op.has_result())
    }

    /// The longest latency among hosted operations.
    pub fn max_latency(&self) -> u32 {
        self.ops.iter().map(|op| op.latency()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_units_cover_table1() {
        let alu = FunctionUnit::full_alu("alu");
        assert_eq!(alu.opcode_count(), 14);
        assert!(alu.supports(Opcode::Mul));
        assert!(!alu.supports(Opcode::Ldw));
        assert!(alu.has_operand_port());
        assert!(alu.has_result_port());
        assert_eq!(alu.max_latency(), 3); // mul

        let lsu = FunctionUnit::full_lsu("lsu");
        assert_eq!(lsu.opcode_count(), 8);
        assert!(lsu.supports(Opcode::Stq));
        assert!(lsu.has_operand_port()); // stores carry data on the operand port
        assert!(lsu.has_result_port()); // loads produce results
        assert_eq!(lsu.max_latency(), 3);

        let cu = FunctionUnit::control_unit("ctrl");
        assert_eq!(cu.opcode_count(), 4);
        assert!(cu.has_operand_port()); // conditional jumps carry the target
        assert!(!cu.has_result_port());
    }
}
