//! The thirteen design points evaluated in the paper (§IV).
//!
//! All multi-issue machines share the same function-unit inventory — one or
//! two full Table-I ALUs, one LSU and the control unit — and differ only in
//! programming model (TTA vs VLIW), register-file organisation (monolithic
//! vs partitioned) and, for `bm-tta`, the number of transport buses. This
//! mirrors the paper's methodology of isolating the *programming model*
//! effect from the choice of operations.
//!
//! | preset      | style  | issue | RFs                      | buses/slots |
//! |-------------|--------|-------|--------------------------|-------------|
//! | `mblaze_3`  | scalar | 1     | 32x32b 2R/1W             | –           |
//! | `mblaze_5`  | scalar | 1     | 32x32b 2R/1W             | –           |
//! | `m_tta_1`   | TTA    | 1     | 32x32b 1R/1W             | 3 buses     |
//! | `m_vliw_2`  | VLIW   | 2     | 64x32b 4R/2W             | 2 slots     |
//! | `p_vliw_2`  | VLIW   | 2     | 2 × 32x32b 2R/1W         | 2 slots     |
//! | `m_tta_2`   | TTA    | 2     | 64x32b 1R/1W             | 6 buses     |
//! | `p_tta_2`   | TTA    | 2     | 2 × 32x32b 1R/1W         | 6 buses     |
//! | `bm_tta_2`  | TTA    | 2     | 2 × 32x32b 1R/1W         | 4 buses     |
//! | `m_vliw_3`  | VLIW   | 3     | 96x32b 6R/3W             | 3 slots     |
//! | `p_vliw_3`  | VLIW   | 3     | 3 × 32x32b 2R/1W         | 3 slots     |
//! | `m_tta_3`   | TTA    | 3     | 96x32b 2R/1W             | 9 buses     |
//! | `p_tta_3`   | TTA    | 3     | 3 × 32x32b 1R/1W         | 9 buses     |
//! | `bm_tta_3`  | TTA    | 3     | 3 × 32x32b 1R/1W         | 6 buses     |

use crate::bus::{Bus, DstConn, SrcConn};
use crate::fu::{FuId, FunctionUnit};
use crate::machine::{CoreStyle, IssueSlot, LimmConfig, Machine, ScalarPipeline};
use crate::rf::RegisterFile;
use crate::rf::RfId;

/// Delay slots after a control-transfer trigger on the TTA/VLIW machines
/// (TCE-style jump latency of 3 cycles total).
pub const JUMP_DELAY_SLOTS: u32 = 2;

fn fus_for_issue(issue: u8) -> Vec<FunctionUnit> {
    let mut fus = vec![FunctionUnit::full_alu("alu0")];
    if issue >= 3 {
        fus.push(FunctionUnit::full_alu("alu1"));
    }
    fus.push(FunctionUnit::full_lsu("lsu"));
    fus.push(FunctionUnit::control_unit("ctrl"));
    fus
}

/// Short-immediate width of the preset TTA buses (bits, signed). Chosen so
/// the derived instruction widths land near the paper's Table II values;
/// larger constants use the long-immediate mechanism.
pub const PRESET_SIMM_BITS: u8 = 6;

/// Connect the function-unit sockets to every bus (input and result ports
/// in TTA designs typically have rich connectivity, while RF sockets are the
/// scarce resource).
fn connect_fu_sockets(bus: &mut Bus, funits: &[FunctionUnit]) {
    for (i, f) in funits.iter().enumerate() {
        let id = FuId(i as u16);
        if f.has_result_port() {
            bus.connect_src(SrcConn::FuResult(id));
        }
        bus.connect_dst(DstConn::FuTrigger(id));
        if f.has_operand_port() {
            bus.connect_dst(DstConn::FuOperand(id));
        }
    }
}

/// Connect each RF port socket to a limited number of buses (round-robin),
/// mirroring how TCE designs keep RF sockets narrow: the port count already
/// bounds concurrent accesses, so connecting every bus to every RF would
/// only widen the instruction (the `full` variant used by the bus-merged
/// machines does exactly that, paying width for transport flexibility).
fn connect_rf_sockets(buses: &mut [Bus], rfs: &[RegisterFile], full: bool) {
    if full {
        for bus in buses.iter_mut() {
            for r in 0..rfs.len() as u16 {
                bus.connect_src(SrcConn::RfRead(RfId(r)));
                bus.connect_dst(DstConn::RfWrite(RfId(r)));
            }
        }
        return;
    }
    let n = buses.len();
    let mut next = 0usize;
    for (ri, rf) in rfs.iter().enumerate() {
        for _ in 0..rf.read_ports {
            for k in 0..2usize.min(n) {
                buses[(next + k) % n].connect_src(SrcConn::RfRead(RfId(ri as u16)));
            }
            next += 2;
        }
    }
    for (ri, rf) in rfs.iter().enumerate() {
        for _ in 0..rf.write_ports {
            for k in 0..2usize.min(n) {
                buses[(next + k) % n].connect_dst(DstConn::RfWrite(RfId(ri as u16)));
            }
            next += 2;
        }
    }
}

fn tta_machine(name: &str, issue: u8, rfs: Vec<RegisterFile>, n_buses: usize) -> Machine {
    // Bus-merged machines (fewer buses than 3x issue width) get the union
    // connectivity of the buses they merged, i.e. full RF connectivity.
    let merged = n_buses < 3 * issue as usize;
    let funits = fus_for_issue(issue);
    let mut buses = Vec::with_capacity(n_buses);
    for i in 0..n_buses {
        let mut b = Bus::new(format!("b{i}"));
        b.simm_bits = PRESET_SIMM_BITS;
        connect_fu_sockets(&mut b, &funits);
        buses.push(b);
    }
    connect_rf_sockets(&mut buses, &rfs, merged);
    let m = Machine {
        name: name.into(),
        style: CoreStyle::Tta,
        issue_width: issue,
        funits,
        rfs,
        buses,
        slots: Vec::new(),
        scalar: None,
        jump_delay_slots: JUMP_DELAY_SLOTS,
        limm: LimmConfig::default(),
        vliw_limm_slots: 2,
    };
    debug_assert!(m.validate().is_ok());
    m
}

fn vliw_machine(name: &str, issue: u8, rfs: Vec<RegisterFile>) -> Machine {
    let funits = fus_for_issue(issue);
    // Slot assignment per the paper's encoding: one slot per parallel
    // operation; control ops share the first ALU slot.
    let alu0 = FuId(0);
    let (lsu, ctrl) = if issue >= 3 {
        (FuId(2), FuId(3))
    } else {
        (FuId(1), FuId(2))
    };
    let mut slots = vec![IssueSlot {
        name: "s0".into(),
        units: vec![alu0, ctrl],
    }];
    if issue >= 3 {
        slots.push(IssueSlot {
            name: "s1".into(),
            units: vec![FuId(1)],
        });
    }
    slots.push(IssueSlot {
        name: format!("s{}", slots.len()),
        units: vec![lsu],
    });
    let m = Machine {
        name: name.into(),
        style: CoreStyle::Vliw,
        issue_width: issue,
        funits,
        rfs,
        buses: Vec::new(),
        slots,
        scalar: None,
        jump_delay_slots: JUMP_DELAY_SLOTS,
        limm: LimmConfig::default(),
        vliw_limm_slots: 2,
    };
    debug_assert!(m.validate().is_ok());
    m
}

fn scalar_machine(name: &str, pipe: ScalarPipeline) -> Machine {
    let m = Machine {
        name: name.into(),
        style: CoreStyle::Scalar,
        issue_width: 1,
        funits: fus_for_issue(1),
        rfs: vec![RegisterFile::new("rf0", 32, 2, 1)],
        buses: Vec::new(),
        slots: Vec::new(),
        scalar: Some(pipe),
        jump_delay_slots: 0,
        limm: LimmConfig::default(),
        vliw_limm_slots: 2,
    };
    debug_assert!(m.validate().is_ok());
    m
}

/// MicroBlaze-like 3-stage scalar core (area optimised).
pub fn mblaze_3() -> Machine {
    scalar_machine("mblaze-3", ScalarPipeline::three_stage())
}

/// MicroBlaze-like 5-stage scalar core (performance optimised, branch-target
/// cache enabled).
pub fn mblaze_5() -> Machine {
    scalar_machine("mblaze-5", ScalarPipeline::five_stage())
}

/// The small 3-bus single-issue TTA comparable to a 32b scalar RISC
/// (paper §IV): integer ALU, LSU, 32 registers behind a 1R/1W port pair.
pub fn m_tta_1() -> Machine {
    tta_machine("m-tta-1", 1, vec![RegisterFile::new("rf0", 32, 1, 1)], 3)
}

/// Dual-issue monolithic-RF VLIW: 64x32b RF with 4 read / 2 write ports.
pub fn m_vliw_2() -> Machine {
    vliw_machine("m-vliw-2", 2, vec![RegisterFile::new("rf0", 64, 4, 2)])
}

/// Dual-issue partitioned-RF VLIW: two 32x32b RFs with 2R/1W each.
pub fn p_vliw_2() -> Machine {
    vliw_machine(
        "p-vliw-2",
        2,
        vec![
            RegisterFile::new("rf0", 32, 2, 1),
            RegisterFile::new("rf1", 32, 2, 1),
        ],
    )
}

/// Dual-issue monolithic-RF TTA: the paper's best performance/area design.
/// Same datapath as [`m_vliw_2`] but the 64-register RF keeps only one read
/// and one write port, relying on TTA software bypassing.
pub fn m_tta_2() -> Machine {
    tta_machine("m-tta-2", 2, vec![RegisterFile::new("rf0", 64, 1, 1)], 6)
}

/// Dual-issue partitioned-RF TTA: two 32x32b RFs with 1R/1W each.
pub fn p_tta_2() -> Machine {
    tta_machine(
        "p-tta-2",
        2,
        vec![
            RegisterFile::new("rf0", 32, 1, 1),
            RegisterFile::new("rf1", 32, 1, 1),
        ],
        6,
    )
}

/// Bus-merged dual-issue TTA: like [`p_tta_2`] but with the six buses merged
/// into four (paper Fig. 4d), trading some transport parallelism for a
/// narrower instruction.
pub fn bm_tta_2() -> Machine {
    let mut m = tta_machine(
        "bm-tta-2",
        2,
        vec![
            RegisterFile::new("rf0", 32, 1, 1),
            RegisterFile::new("rf1", 32, 1, 1),
        ],
        4,
    );
    m.jump_delay_slots = JUMP_DELAY_SLOTS;
    m
}

/// Three-issue monolithic-RF VLIW: 96x32b RF with 6 read / 3 write ports.
pub fn m_vliw_3() -> Machine {
    vliw_machine("m-vliw-3", 3, vec![RegisterFile::new("rf0", 96, 6, 3)])
}

/// Three-issue partitioned-RF VLIW: three 32x32b RFs with 2R/1W each.
pub fn p_vliw_3() -> Machine {
    vliw_machine(
        "p-vliw-3",
        3,
        vec![
            RegisterFile::new("rf0", 32, 2, 1),
            RegisterFile::new("rf1", 32, 2, 1),
            RegisterFile::new("rf2", 32, 2, 1),
        ],
    )
}

/// Three-issue monolithic-RF TTA: 96x32b RF with 2 read / 1 write ports.
pub fn m_tta_3() -> Machine {
    tta_machine("m-tta-3", 3, vec![RegisterFile::new("rf0", 96, 2, 1)], 9)
}

/// Three-issue partitioned-RF TTA: three 32x32b RFs with 1R/1W each.
pub fn p_tta_3() -> Machine {
    tta_machine(
        "p-tta-3",
        3,
        vec![
            RegisterFile::new("rf0", 32, 1, 1),
            RegisterFile::new("rf1", 32, 1, 1),
            RegisterFile::new("rf2", 32, 1, 1),
        ],
        9,
    )
}

/// Bus-merged three-issue TTA: like [`p_tta_3`] with nine buses merged into
/// six.
pub fn bm_tta_3() -> Machine {
    tta_machine(
        "bm-tta-3",
        3,
        vec![
            RegisterFile::new("rf0", 32, 1, 1),
            RegisterFile::new("rf1", 32, 1, 1),
            RegisterFile::new("rf2", 32, 1, 1),
        ],
        6,
    )
}

/// Build a custom TTA design with the standard function-unit inventory
/// for the given issue width (one or two full ALUs, an LSU and the control
/// unit). With `full_rf_connectivity` every bus reaches every RF socket
/// (the union wiring of the `bm-tta` points — wider slots, more routing
/// freedom); otherwise the preset-style pruned wiring is used (each RF
/// port socket on two buses). Used by the bus-count sweeps in
/// `tta-explore`.
pub fn custom_tta(
    name: &str,
    issue: u8,
    rfs: Vec<RegisterFile>,
    n_buses: usize,
    full_rf_connectivity: bool,
) -> Machine {
    let funits = fus_for_issue(issue);
    let mut buses = Vec::with_capacity(n_buses);
    for i in 0..n_buses {
        let mut b = Bus::new(format!("b{i}"));
        b.simm_bits = PRESET_SIMM_BITS;
        connect_fu_sockets(&mut b, &funits);
        buses.push(b);
    }
    connect_rf_sockets(&mut buses, &rfs, full_rf_connectivity);
    let m = Machine {
        name: name.into(),
        style: CoreStyle::Tta,
        issue_width: issue,
        funits,
        rfs,
        buses,
        slots: Vec::new(),
        scalar: None,
        jump_delay_slots: JUMP_DELAY_SLOTS,
        limm: LimmConfig::default(),
        vliw_limm_slots: 2,
    };
    debug_assert!(m.validate().is_ok());
    m
}

/// Build a custom VLIW design with the standard function-unit inventory.
pub fn custom_vliw(name: &str, issue: u8, rfs: Vec<RegisterFile>) -> Machine {
    vliw_machine(name, issue, rfs)
}

/// All thirteen design points in the paper's reporting order.
pub fn all_design_points() -> Vec<Machine> {
    vec![
        mblaze_3(),
        mblaze_5(),
        m_tta_1(),
        m_vliw_2(),
        p_vliw_2(),
        m_tta_2(),
        p_tta_2(),
        bm_tta_2(),
        m_vliw_3(),
        p_vliw_3(),
        m_tta_3(),
        p_tta_3(),
        bm_tta_3(),
    ]
}

/// Look a design point up by its paper name (e.g. `"m-tta-2"`).
pub fn by_name(name: &str) -> Option<Machine> {
    all_design_points().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CoreStyle;

    #[test]
    fn paper_rf_port_table() {
        // RF read/write port counts of Table III.
        let cases = [
            ("m-tta-1", 1, 1),
            ("m-vliw-2", 4, 2),
            ("p-vliw-2", 4, 2), // 2 ports x 2 banks
            ("m-tta-2", 1, 1),
            ("p-tta-2", 2, 2),
            ("bm-tta-2", 2, 2),
            ("m-vliw-3", 6, 3),
            ("p-vliw-3", 6, 3),
            ("m-tta-3", 2, 1),
            ("p-tta-3", 3, 3),
            ("bm-tta-3", 3, 3),
        ];
        for (name, r, w) in cases {
            let m = by_name(name).unwrap();
            assert_eq!(m.total_read_ports(), r, "{name} read ports");
            assert_eq!(m.total_write_ports(), w, "{name} write ports");
        }
    }

    #[test]
    fn register_totals_match_paper() {
        for (name, regs) in [
            ("mblaze-3", 32),
            ("m-tta-1", 32),
            ("m-vliw-2", 64),
            ("p-vliw-2", 64),
            ("m-tta-2", 64),
            ("p-tta-2", 64),
            ("bm-tta-2", 64),
            ("m-vliw-3", 96),
            ("p-vliw-3", 96),
            ("m-tta-3", 96),
            ("p-tta-3", 96),
            ("bm-tta-3", 96),
        ] {
            assert_eq!(by_name(name).unwrap().total_regs(), regs, "{name}");
        }
    }

    #[test]
    fn bus_counts() {
        for (name, buses) in [
            ("m-tta-1", 3),
            ("m-tta-2", 6),
            ("p-tta-2", 6),
            ("bm-tta-2", 4),
            ("m-tta-3", 9),
            ("p-tta-3", 9),
            ("bm-tta-3", 6),
        ] {
            assert_eq!(by_name(name).unwrap().buses.len(), buses, "{name}");
        }
    }

    #[test]
    fn styles_and_issue_widths() {
        for m in all_design_points() {
            let expect_issue = match m.name.chars().last().unwrap() {
                '1' | '3' if m.name.starts_with("mblaze") => 1,
                c => c.to_digit(10).unwrap() as u8,
            };
            let expect_issue = if m.name.starts_with("mblaze") {
                1
            } else {
                expect_issue
            };
            assert_eq!(m.issue_width, expect_issue, "{}", m.name);
            match m.style {
                CoreStyle::Tta => assert!(!m.buses.is_empty()),
                CoreStyle::Vliw => {
                    assert!(m.buses.is_empty());
                    assert_eq!(m.slots.len(), m.issue_width as usize, "{}", m.name);
                }
                CoreStyle::Scalar => assert!(m.scalar.is_some()),
            }
        }
    }

    #[test]
    fn three_issue_has_two_alus() {
        for name in ["m-vliw-3", "p-vliw-3", "m-tta-3", "p-tta-3", "bm-tta-3"] {
            let m = by_name(name).unwrap();
            let alus = m
                .funits
                .iter()
                .filter(|f| f.kind == crate::fu::FuKind::Alu)
                .count();
            assert_eq!(alus, 2, "{name}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("m-tta-2").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(all_design_points().len(), 13);
    }

    #[test]
    fn every_tta_pair_has_a_route() {
        // Every value producer must be able to reach every consumer port in
        // the preset machines (possibly via an RF), otherwise compilation
        // could wedge. With fully-connected buses this is immediate; the
        // test guards against future preset edits breaking it.
        for m in all_design_points()
            .into_iter()
            .filter(|m| m.style == CoreStyle::Tta)
        {
            for rf in m.rf_ids() {
                for fu in m.fu_ids() {
                    assert!(
                        m.buses_connecting(
                            crate::bus::SrcConn::RfRead(rf),
                            crate::bus::DstConn::FuTrigger(fu)
                        )
                        .next()
                        .is_some(),
                        "{}: no route {rf} -> {fu} trigger",
                        m.name
                    );
                }
            }
        }
    }
}
