//! Register files.
//!
//! The central trade-off studied by the paper lives here: an
//! "operation-triggered" VLIW must scale RF port counts with the issue width
//! (2 reads + 1 write per parallel operation), while the TTA programming
//! model sustains the same issue rates with drastically fewer ports by
//! software bypassing and explicit transport timing. On FPGAs each extra
//! port multiplies the distributed-RAM replication cost, which is what
//! Table III of the paper measures.

/// Index of a register file within its [`Machine`](crate::Machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RfId(pub u16);

impl std::fmt::Display for RfId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RF{}", self.0)
    }
}

/// A general-purpose register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    /// Human-readable name, unique within the machine (e.g. `"rf0"`).
    pub name: String,
    /// Number of registers. The paper picks multiples of 32 to avoid
    /// under-utilising the minimum-depth distributed RAM primitives of the
    /// Zynq target.
    pub regs: u16,
    /// Register width in bits (32 throughout the paper).
    pub width: u16,
    /// Simultaneous read ports.
    pub read_ports: u8,
    /// Simultaneous write ports.
    pub write_ports: u8,
}

impl RegisterFile {
    /// Convenience constructor with the default 32-bit width.
    pub fn new(name: impl Into<String>, regs: u16, read_ports: u8, write_ports: u8) -> Self {
        RegisterFile {
            name: name.into(),
            regs,
            width: 32,
            read_ports,
            write_ports,
        }
    }

    /// Bits needed to address a register in this file.
    pub fn index_bits(&self) -> u32 {
        (self.regs.max(2) as u32)
            .next_power_of_two()
            .trailing_zeros()
    }

    /// Total storage bits.
    pub fn storage_bits(&self) -> u32 {
        self.regs as u32 * self.width as u32
    }
}

/// A location in one of the machine's register files: the unit of register
/// allocation for partitioned-RF design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegRef {
    /// Which register file.
    pub rf: RfId,
    /// Register index within the file.
    pub index: u16,
}

impl std::fmt::Display for RegRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rf{}.r{}", self.rf.0, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_bits() {
        assert_eq!(RegisterFile::new("a", 32, 1, 1).index_bits(), 5);
        assert_eq!(RegisterFile::new("a", 64, 1, 1).index_bits(), 6);
        assert_eq!(RegisterFile::new("a", 96, 1, 1).index_bits(), 7); // rounds up
        assert_eq!(RegisterFile::new("a", 33, 1, 1).index_bits(), 6);
        assert_eq!(RegisterFile::new("a", 1, 1, 1).index_bits(), 1);
    }

    #[test]
    fn storage() {
        assert_eq!(RegisterFile::new("a", 64, 4, 2).storage_bits(), 2048);
    }
}
