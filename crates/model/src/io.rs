//! Memory-mapped I/O and interrupt machinery shared by the IR reference
//! interpreter and the cycle-accurate simulators.
//!
//! Like [`crate::mem`], this module is the single source of truth for
//! device semantics so every executor agrees bit-for-bit: the golden
//! interpreter and the three simulator styles all route accesses above
//! [`MMIO_BASE`] through the same [`IoSystem`].
//!
//! # Memory map
//!
//! All MMIO registers are word-sized and word-aligned; sub-word accesses
//! fault exactly like a misaligned data-memory access.
//!
//! | address                | register     | semantics                              |
//! |------------------------|--------------|----------------------------------------|
//! | `MMIO_BASE + 0x00`     | `IRQ_CTRL`   | bit0 = interrupt enable (rw)           |
//! | `MMIO_BASE + 0x04`     | `IRQ_STATUS` | pending/servicing line mask (r, W1C)   |
//! | `MMIO_BASE + 0x08`     | `IRQ_EOI`    | any store = return-from-interrupt (w)  |
//! | `MMIO_BASE + 0x40`     | `UART_STATUS`| bit0 rx available, bit1 tx ready (r)   |
//! | `MMIO_BASE + 0x44`     | `UART_RX`    | pop next received byte, -1 if none (r) |
//! | `MMIO_BASE + 0x48`     | `UART_TX`    | send low byte (w)                      |
//! | `MMIO_BASE + 0x80`     | `TIMER_CTRL` | bit0 enable (rw)                       |
//! | `MMIO_BASE + 0x84`     | `TIMER_PERIOD`| fire period in cycles (rw)            |
//! | `MMIO_BASE + 0x88`     | `TIMER_COUNT`| cycles until next fire, -1 idle (r)    |
//!
//! # Interrupt model
//!
//! Devices raise numbered lines (UART = line 0, timer = line 1, scripted
//! "soft" interrupts default to line 2); raised lines latch into a
//! pending mask. Delivery happens at an *instruction boundary* when the
//! guest has set `IRQ_CTRL.IE` and no handler is already running: the
//! lowest pending line is cleared, `IE` drops, and control transfers to
//! the guest's `__irq` handler. The handler returns by storing to
//! `IRQ_EOI` (the compiler injects that store before every handler
//! return), which restores `IE` and the interrupted context.
//!
//! Interrupt *arrival* can be keyed two ways ([`IrqAt`]):
//!
//! * [`IrqAt::Cycle`] — raise at a simulated cycle. Cycle counts differ
//!   across core styles by design, so this axis serves within-style
//!   tests (tier-parity, latency pinning) and reactive example guests.
//! * [`IrqAt::MmioStore`] — raise once the guest has performed its K-th
//!   MMIO store. The dynamic MMIO-store sequence is identical across the
//!   interpreter and every style (MMIO ops are naturally program-
//!   ordered), so this axis is the style-invariant key the differential
//!   fuzz oracle uses.

use crate::mem::MemError;
use crate::op::Opcode;

/// Base of the MMIO window. Addresses at or above this route to devices.
pub const MMIO_BASE: u32 = 0xFFFF_0000;

/// Interrupt-enable control register (bit0 = IE).
pub const IRQ_CTRL_ADDR: u32 = MMIO_BASE;
/// Pending/servicing interrupt line mask (read; write-1-to-clear).
pub const IRQ_STATUS_ADDR: u32 = MMIO_BASE + 0x04;
/// Return-from-interrupt doorbell: any store ends the current handler.
pub const IRQ_EOI_ADDR: u32 = MMIO_BASE + 0x08;

/// UART status register (bit0 rx available, bit1 tx ready).
pub const UART_STATUS_ADDR: u32 = MMIO_BASE + 0x40;
/// UART receive register: pops the next scripted byte, or -1.
pub const UART_RX_ADDR: u32 = MMIO_BASE + 0x44;
/// UART transmit register: stores append their low byte to the tx log.
pub const UART_TX_ADDR: u32 = MMIO_BASE + 0x48;

/// Timer control register (bit0 enable).
pub const TIMER_CTRL_ADDR: u32 = MMIO_BASE + 0x80;
/// Timer period register, in cycles (0 = never fires).
pub const TIMER_PERIOD_ADDR: u32 = MMIO_BASE + 0x84;
/// Timer countdown register: cycles until the next fire, or -1.
pub const TIMER_COUNT_ADDR: u32 = MMIO_BASE + 0x88;

/// Interrupt line of the UART (rx-available).
pub const UART_LINE: u8 = 0;
/// Interrupt line of the cycle timer.
pub const TIMER_LINE: u8 = 1;
/// Default interrupt line for scripted (schedule-driven) interrupts.
pub const SOFT_LINE: u8 = 2;

/// Name of the reserved interrupt-handler function in guest IR: a
/// function called `__irq` taking no parameters and returning no value.
pub const IRQ_HANDLER_NAME: &str = "__irq";

/// When an interrupt-schedule entry raises its line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IrqAt {
    /// Raise at this simulated cycle (style-dependent: cycle counts
    /// differ across TTA/VLIW/scalar; the interpreter approximates the
    /// clock with its executed-instruction count).
    Cycle(u64),
    /// Raise once the guest has performed this many MMIO stores — the
    /// style-invariant key used by the differential fuzz oracle.
    MmioStore(u64),
}

/// A reactive run's scripted environment: interrupt-arrival schedule and
/// UART receive script. This is fuzz *input* — it is serialised next to
/// the module text in corpus cases.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoSpec {
    /// Scripted interrupt arrivals: (trigger, line).
    pub schedule: Vec<(IrqAt, u8)>,
    /// UART receive script: (arrival cycle, byte). Bytes become readable
    /// (and, with [`IoSpec::uart_irq_on_rx`], raise line 0) once the
    /// clock passes their arrival cycle.
    pub uart_rx: Vec<(u64, u8)>,
    /// Whether an arriving rx byte raises the UART interrupt line.
    /// Cycle-keyed like [`IrqAt::Cycle`], so the differential oracle
    /// keeps this off and polls instead.
    pub uart_irq_on_rx: bool,
}

impl IoSpec {
    /// True if this spec scripts no device activity at all.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty() && self.uart_rx.is_empty() && !self.uart_irq_on_rx
    }
}

/// A memory-mapped device occupying one address window.
///
/// `now` is the executor's clock: simulated cycles in the simulators,
/// executed instructions in the reference interpreter. Devices must be
/// deterministic functions of their access/clock history so every
/// executor observes identical behaviour.
pub trait Device: Send {
    /// Short name, for traces and diagnostics.
    fn name(&self) -> &'static str;
    /// The absolute address window `(base, len_bytes)` this device decodes.
    fn window(&self) -> (u32, u32);
    /// Word load at `offset` bytes into the window.
    fn load(&mut self, offset: u32, now: u64) -> i32;
    /// Word store at `offset` bytes into the window.
    fn store(&mut self, offset: u32, value: i32, now: u64);
    /// The next clock value strictly after `now` at which this device
    /// will raise its interrupt line, if it can know one.
    fn next_event(&self, now: u64) -> Option<u64>;
    /// Poll the device up to `now`: true if its line has risen since the
    /// last poll (edge-triggered; the caller latches it).
    fn poll(&mut self, now: u64) -> bool;
    /// Observable output stream (e.g. UART tx bytes) for differential
    /// comparison.
    fn output(&self) -> &[u8] {
        &[]
    }
}

/// UART-like byte-stream device: a scripted receive queue and an
/// append-only transmit log.
#[derive(Debug, Default)]
pub struct Uart {
    /// (arrival cycle, byte), sorted by arrival.
    rx: Vec<(u64, u8)>,
    /// Next rx index to pop.
    rx_head: usize,
    /// Next rx index whose arrival has not yet raised the line.
    rx_irq_head: usize,
    /// Whether arriving bytes raise line 0.
    irq_on_rx: bool,
    /// Transmit log.
    tx: Vec<u8>,
}

impl Uart {
    /// A UART fed by `rx` (sorted by this constructor).
    pub fn new(mut rx: Vec<(u64, u8)>, irq_on_rx: bool) -> Uart {
        rx.sort_by_key(|&(c, _)| c);
        Uart {
            rx,
            rx_head: 0,
            rx_irq_head: 0,
            irq_on_rx,
            tx: Vec::new(),
        }
    }

    fn rx_available(&self, now: u64) -> bool {
        self.rx.get(self.rx_head).is_some_and(|&(c, _)| c <= now)
    }
}

impl Device for Uart {
    fn name(&self) -> &'static str {
        "uart"
    }

    fn window(&self) -> (u32, u32) {
        (UART_STATUS_ADDR, 12)
    }

    fn load(&mut self, offset: u32, now: u64) -> i32 {
        match offset {
            // STATUS: tx always ready (bit1), rx available (bit0).
            0 => 2 | self.rx_available(now) as i32,
            // RX: pop the next arrived byte, or -1.
            4 => {
                if self.rx_available(now) {
                    let b = self.rx[self.rx_head].1;
                    self.rx_head += 1;
                    self.rx_irq_head = self.rx_irq_head.max(self.rx_head);
                    b as i32
                } else {
                    -1
                }
            }
            // TX reads as 0.
            _ => 0,
        }
    }

    fn store(&mut self, offset: u32, value: i32, _now: u64) {
        if offset == 8 {
            self.tx.push(value as u8);
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        if !self.irq_on_rx {
            return None;
        }
        self.rx.get(self.rx_irq_head).map(|&(c, _)| c.max(now + 1))
    }

    fn poll(&mut self, now: u64) -> bool {
        if !self.irq_on_rx {
            return false;
        }
        let mut rose = false;
        while self
            .rx
            .get(self.rx_irq_head)
            .is_some_and(|&(c, _)| c <= now)
        {
            self.rx_irq_head += 1;
            rose = true;
        }
        rose
    }

    fn output(&self) -> &[u8] {
        &self.tx
    }
}

/// Cycle-driven periodic timer, programmed by the guest over MMIO.
#[derive(Debug, Default)]
pub struct Timer {
    enabled: bool,
    period: u64,
    /// Next fire clock, when armed (enabled with a non-zero period).
    next_fire: Option<u64>,
}

impl Timer {
    /// A disabled timer (the guest arms it over MMIO).
    pub fn new() -> Timer {
        Timer::default()
    }

    fn rearm(&mut self, now: u64) {
        self.next_fire = (self.enabled && self.period > 0).then(|| now + self.period);
    }
}

impl Device for Timer {
    fn name(&self) -> &'static str {
        "timer"
    }

    fn window(&self) -> (u32, u32) {
        (TIMER_CTRL_ADDR, 12)
    }

    fn load(&mut self, offset: u32, now: u64) -> i32 {
        match offset {
            0 => self.enabled as i32,
            4 => self.period as i32,
            // COUNT: cycles until the next fire, -1 when idle.
            _ => match self.next_fire {
                Some(t) => t.saturating_sub(now).min(i32::MAX as u64) as i32,
                None => -1,
            },
        }
    }

    fn store(&mut self, offset: u32, value: i32, now: u64) {
        match offset {
            0 => {
                self.enabled = value & 1 != 0;
                self.rearm(now);
            }
            4 => {
                self.period = value as u32 as u64;
                self.rearm(now);
            }
            _ => {}
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.next_fire.map(|t| t.max(now + 1))
    }

    fn poll(&mut self, now: u64) -> bool {
        let mut rose = false;
        while let Some(t) = self.next_fire {
            if t > now {
                break;
            }
            rose = true;
            // Advance by whole periods; a period-1 timer fires every
            // cycle (an interrupt storm — deterministic, fuel-bounded).
            self.next_fire = Some(t + self.period);
        }
        rose
    }
}

/// Address-window router over a set of [`Device`]s.
pub struct MmioBus {
    /// (base, len, line, device), windows pairwise disjoint.
    devices: Vec<(u32, u32, u8, Box<dyn Device>)>,
}

impl MmioBus {
    /// Build a bus, rejecting overlapping device windows and windows
    /// that collide with the interrupt-controller registers at
    /// `[MMIO_BASE, MMIO_BASE+12)`. This is a machine-build-time check:
    /// a mis-declared device map must never reach simulation.
    pub fn new(devices: Vec<(u8, Box<dyn Device>)>) -> Result<MmioBus, String> {
        let mut entries: Vec<(u32, u32, u8, Box<dyn Device>)> = Vec::new();
        for (line, dev) in devices {
            let (base, len) = dev.window();
            if base < MMIO_BASE || len == 0 || base.checked_add(len).is_none() {
                return Err(format!(
                    "device {} window {base:#x}+{len} outside the MMIO region",
                    dev.name()
                ));
            }
            let overlaps = |b2: u32, l2: u32| base < b2 + l2 && b2 < base + len;
            if overlaps(IRQ_CTRL_ADDR, 12) {
                return Err(format!(
                    "device {} window {base:#x}+{len} overlaps the interrupt controller",
                    dev.name()
                ));
            }
            for (b2, l2, _, other) in &entries {
                if overlaps(*b2, *l2) {
                    return Err(format!(
                        "device windows overlap: {} at {base:#x}+{len} vs {} at {b2:#x}+{l2}",
                        dev.name(),
                        other.name()
                    ));
                }
            }
            entries.push((base, len, line, dev));
        }
        Ok(MmioBus { devices: entries })
    }

    fn find(&mut self, addr: u32) -> Option<(u32, u8, &mut Box<dyn Device>)> {
        self.devices
            .iter_mut()
            .find(|(b, l, _, _)| addr >= *b && addr < *b + *l)
            .map(|(b, _, line, dev)| (addr - *b, *line, dev))
    }
}

/// The complete per-run I/O state: interrupt controller, device bus, and
/// scripted interrupt schedule. One instance per simulated run; every
/// executor drives it through the same entry points.
pub struct IoSystem {
    /// Guest interrupt enable (IRQ_CTRL bit0).
    pub ie: bool,
    /// Latched pending line mask.
    pub pending: u8,
    /// Whether the guest is currently inside its `__irq` handler.
    pub in_handler: bool,
    /// Line being serviced while `in_handler`.
    current_line: u8,
    /// Set by a store to `IRQ_EOI`; consumed by the executor.
    eoi: bool,
    /// MMIO stores performed so far (`IRQ_EOI` excluded — that store is
    /// compiler-injected on the simulated path only, so counting it
    /// would desynchronise the interpreter's store count).
    mmio_stores: u64,
    /// MMIO loads performed so far.
    pub mmio_loads: u64,
    /// Interrupts delivered so far.
    pub irqs_delivered: u64,
    /// Cycle-keyed schedule entries, sorted; `cycle_idx` consumed.
    cycle_keys: Vec<(u64, u8)>,
    cycle_idx: usize,
    /// MMIO-store-keyed schedule entries, sorted; `mmio_idx` consumed.
    mmio_keys: Vec<(u64, u8)>,
    mmio_idx: usize,
    /// The device bus (UART on line 0, timer on line 1).
    pub bus: MmioBus,
}

impl IoSystem {
    /// Build the standard machine (UART + timer) driven by `spec`.
    pub fn new(spec: &IoSpec) -> IoSystem {
        let bus = MmioBus::new(vec![
            (
                UART_LINE,
                Box::new(Uart::new(spec.uart_rx.clone(), spec.uart_irq_on_rx)) as Box<dyn Device>,
            ),
            (TIMER_LINE, Box::new(Timer::new()) as Box<dyn Device>),
        ])
        .expect("standard device map never overlaps");
        let mut cycle_keys = Vec::new();
        let mut mmio_keys = Vec::new();
        for &(at, line) in &spec.schedule {
            match at {
                IrqAt::Cycle(c) => cycle_keys.push((c, line)),
                IrqAt::MmioStore(k) => mmio_keys.push((k, line)),
            }
        }
        cycle_keys.sort();
        mmio_keys.sort();
        IoSystem {
            ie: false,
            pending: 0,
            in_handler: false,
            current_line: 0,
            eoi: false,
            mmio_stores: 0,
            mmio_loads: 0,
            irqs_delivered: 0,
            cycle_keys,
            cycle_idx: 0,
            mmio_keys,
            mmio_idx: 0,
            bus,
        }
    }

    /// MMIO stores performed so far (the [`IrqAt::MmioStore`] clock).
    pub fn mmio_stores(&self) -> u64 {
        self.mmio_stores
    }

    /// Latch every line that has risen up to clock `now`.
    pub fn poll(&mut self, now: u64) {
        while self
            .cycle_keys
            .get(self.cycle_idx)
            .is_some_and(|&(c, _)| c <= now)
        {
            self.pending |= 1 << (self.cycle_keys[self.cycle_idx].1 & 7);
            self.cycle_idx += 1;
        }
        while self
            .mmio_keys
            .get(self.mmio_idx)
            .is_some_and(|&(k, _)| k <= self.mmio_stores)
        {
            self.pending |= 1 << (self.mmio_keys[self.mmio_idx].1 & 7);
            self.mmio_idx += 1;
        }
        for (_, _, line, dev) in &mut self.bus.devices {
            if dev.poll(now) {
                self.pending |= 1 << (*line & 7);
            }
        }
    }

    /// The line to deliver now, if any: interrupts enabled, no handler
    /// already running, and a pending line (lowest first).
    pub fn deliverable(&self) -> Option<u8> {
        if self.ie && !self.in_handler && self.pending != 0 {
            Some(self.pending.trailing_zeros() as u8)
        } else {
            None
        }
    }

    /// Commit delivery of `line`: clear it, mask interrupts, and mark
    /// the handler as running.
    pub fn begin_delivery(&mut self, line: u8) {
        self.pending &= !(1u8 << line);
        self.current_line = line;
        self.ie = false;
        self.in_handler = true;
        self.irqs_delivered += 1;
    }

    /// Consume a pending end-of-interrupt doorbell.
    pub fn take_eoi(&mut self) -> bool {
        std::mem::take(&mut self.eoi)
    }

    /// End the current handler: re-enable interrupts.
    pub fn finish_handler(&mut self) {
        self.in_handler = false;
        self.ie = true;
    }

    /// How many clock ticks the executor may run before the next
    /// instruction boundary it must observe: 1 while a handler is
    /// running, a line is pending, or MMIO-store-keyed arrivals remain
    /// outstanding (single-stepping makes delivery land exactly after
    /// the triggering instruction in every executor); otherwise the
    /// distance to the next scheduled cycle event; `u64::MAX` when idle.
    pub fn window(&self, now: u64) -> u64 {
        if self.in_handler || self.pending != 0 || self.mmio_idx < self.mmio_keys.len() {
            return 1;
        }
        let mut next: Option<u64> = self
            .cycle_keys
            .get(self.cycle_idx)
            .map(|&(c, _)| c.max(now + 1));
        for (_, _, _, dev) in &self.bus.devices {
            if let Some(t) = dev.next_event(now) {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        match next {
            Some(t) => t - now,
            None => u64::MAX,
        }
    }

    fn reg_error(addr: u32, op: Opcode, store: bool) -> MemError {
        MemError {
            addr,
            width: crate::mem::access_width(op),
            store,
            // MMIO has no byte-array backing; report size 0.
            size: 0,
        }
    }

    fn check_word(addr: u32, op: Opcode, store: bool) -> Result<(), MemError> {
        if crate::mem::access_width(op) != 4 || !addr.is_multiple_of(4) {
            return Err(Self::reg_error(addr, op, store));
        }
        Ok(())
    }

    /// Word load from the MMIO region at clock `now`.
    pub fn load(&mut self, op: Opcode, addr: u32, now: u64) -> Result<i32, MemError> {
        Self::check_word(addr, op, false)?;
        self.mmio_loads += 1;
        match addr {
            IRQ_CTRL_ADDR => Ok(self.ie as i32),
            IRQ_STATUS_ADDR => {
                let servicing = if self.in_handler {
                    1u8 << self.current_line
                } else {
                    0
                };
                Ok((self.pending | servicing) as i32)
            }
            IRQ_EOI_ADDR => Ok(0),
            _ => match self.bus.find(addr) {
                Some((offset, _, dev)) => Ok(dev.load(offset, now)),
                None => Err(Self::reg_error(addr, op, false)),
            },
        }
    }

    /// Word store to the MMIO region at clock `now`.
    pub fn store(&mut self, op: Opcode, addr: u32, value: i32, now: u64) -> Result<(), MemError> {
        Self::check_word(addr, op, true)?;
        match addr {
            IRQ_CTRL_ADDR => self.ie = value & 1 != 0,
            IRQ_STATUS_ADDR => self.pending &= !(value as u8),
            IRQ_EOI_ADDR => {
                // Compiler-injected return-from-interrupt; not counted
                // as an MMIO store (see `mmio_stores`).
                if self.in_handler {
                    self.eoi = true;
                }
                return Ok(());
            }
            _ => match self.bus.find(addr) {
                Some((offset, _, dev)) => dev.store(offset, value, now),
                None => return Err(Self::reg_error(addr, op, true)),
            },
        }
        self.mmio_stores += 1;
        Ok(())
    }

    /// The UART transmit log (every byte the guest sent), the
    /// device-output stream the differential oracle compares.
    pub fn uart_tx(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (_, _, _, dev) in &self.bus.devices {
            out.extend_from_slice(dev.output());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_load(io: &mut IoSystem, addr: u32, now: u64) -> i32 {
        io.load(Opcode::Ldw, addr, now).unwrap()
    }

    fn word_store(io: &mut IoSystem, addr: u32, v: i32, now: u64) {
        io.store(Opcode::Stw, addr, v, now).unwrap()
    }

    #[test]
    fn uart_rx_pops_in_order_and_tx_logs() {
        let spec = IoSpec {
            uart_rx: vec![(0, 0x41), (5, 0x42)],
            ..IoSpec::default()
        };
        let mut io = IoSystem::new(&spec);
        assert_eq!(word_load(&mut io, UART_STATUS_ADDR, 0), 3);
        assert_eq!(word_load(&mut io, UART_RX_ADDR, 0), 0x41);
        // Second byte has not arrived yet.
        assert_eq!(word_load(&mut io, UART_STATUS_ADDR, 0), 2);
        assert_eq!(word_load(&mut io, UART_RX_ADDR, 0), -1);
        assert_eq!(word_load(&mut io, UART_RX_ADDR, 7), 0x42);
        word_store(&mut io, UART_TX_ADDR, 0x155, 7);
        assert_eq!(io.uart_tx(), vec![0x55]);
        assert_eq!(io.mmio_stores(), 1);
    }

    #[test]
    fn timer_period_edges() {
        let mut io = IoSystem::new(&IoSpec::default());
        // Period 0: enabling never arms.
        word_store(&mut io, TIMER_CTRL_ADDR, 1, 0);
        assert_eq!(word_load(&mut io, TIMER_COUNT_ADDR, 0), -1);
        io.poll(1000);
        assert_eq!(io.pending, 0);
        // Period 3, enabled at clock 10: fires at 13, 16, ...
        word_store(&mut io, TIMER_PERIOD_ADDR, 3, 10);
        assert_eq!(word_load(&mut io, TIMER_COUNT_ADDR, 11), 2);
        io.poll(12);
        assert_eq!(io.pending, 0);
        io.poll(16);
        assert_eq!(io.pending, 1 << TIMER_LINE);
        // Period 1 storms: every subsequent poll fires again.
        io.pending = 0;
        word_store(&mut io, TIMER_PERIOD_ADDR, 1, 20);
        io.poll(21);
        assert_eq!(io.pending, 1 << TIMER_LINE);
    }

    #[test]
    fn overlapping_device_windows_rejected() {
        struct Fake(u32, u32);
        impl Device for Fake {
            fn name(&self) -> &'static str {
                "fake"
            }
            fn window(&self) -> (u32, u32) {
                (self.0, self.1)
            }
            fn load(&mut self, _: u32, _: u64) -> i32 {
                0
            }
            fn store(&mut self, _: u32, _: i32, _: u64) {}
            fn next_event(&self, _: u64) -> Option<u64> {
                None
            }
            fn poll(&mut self, _: u64) -> bool {
                false
            }
        }
        // Disjoint windows are fine.
        assert!(MmioBus::new(vec![
            (3, Box::new(Fake(MMIO_BASE + 0x100, 8)) as Box<dyn Device>),
            (4, Box::new(Fake(MMIO_BASE + 0x108, 8)) as Box<dyn Device>),
        ])
        .is_ok());
        // Overlapping windows are a build-time error.
        let Err(err) = MmioBus::new(vec![
            (3, Box::new(Fake(MMIO_BASE + 0x100, 8)) as Box<dyn Device>),
            (4, Box::new(Fake(MMIO_BASE + 0x104, 8)) as Box<dyn Device>),
        ]) else {
            panic!("overlap must be rejected");
        };
        assert!(err.contains("overlap"), "{err}");
        // Colliding with the interrupt controller is too.
        assert!(MmioBus::new(vec![(
            3,
            Box::new(Fake(IRQ_STATUS_ADDR, 4)) as Box<dyn Device>
        )])
        .is_err());
        // As is escaping the MMIO region entirely.
        assert!(MmioBus::new(vec![(3, Box::new(Fake(0x1000, 8)) as Box<dyn Device>)]).is_err());
    }

    #[test]
    fn mmio_accesses_must_be_word_sized_and_aligned() {
        let mut io = IoSystem::new(&IoSpec::default());
        assert!(io.load(Opcode::Ldh, UART_STATUS_ADDR, 0).is_err());
        assert!(io.load(Opcode::Ldw, UART_STATUS_ADDR + 2, 0).is_err());
        assert!(io.store(Opcode::Stq, UART_TX_ADDR, 1, 0).is_err());
        // Unmapped word in the region faults too.
        assert!(io.load(Opcode::Ldw, MMIO_BASE + 0x2000, 0).is_err());
    }

    #[test]
    fn delivery_masks_and_eoi_restores() {
        let spec = IoSpec {
            schedule: vec![(IrqAt::MmioStore(1), SOFT_LINE), (IrqAt::Cycle(50), 3)],
            ..IoSpec::default()
        };
        let mut io = IoSystem::new(&spec);
        io.poll(0);
        assert_eq!(io.pending, 0);
        assert_eq!(io.window(0), 1, "outstanding mmio keys force single-step");
        word_store(&mut io, IRQ_CTRL_ADDR, 1, 0);
        io.poll(0);
        assert_eq!(io.pending, 1 << SOFT_LINE);
        assert_eq!(io.deliverable(), Some(SOFT_LINE));
        io.begin_delivery(SOFT_LINE);
        assert!(!io.ie && io.in_handler);
        assert_eq!(io.deliverable(), None);
        // IRQ_STATUS reads the line being serviced.
        assert_eq!(
            word_load(&mut io, IRQ_STATUS_ADDR, 0),
            1 << SOFT_LINE as i32
        );
        // EOI only latches inside a handler, and is not a counted store.
        let stores = io.mmio_stores();
        word_store(&mut io, IRQ_EOI_ADDR, 0, 0);
        assert_eq!(io.mmio_stores(), stores);
        assert!(io.take_eoi());
        assert!(!io.take_eoi());
        io.finish_handler();
        assert!(io.ie && !io.in_handler);
        // Cycle key at 50: the window now points at it.
        assert_eq!(io.window(10), 40);
        io.poll(50);
        assert_eq!(io.pending, 1 << 3);
        assert_eq!(io.window(50), 1, "pending line forces single-step");
    }

    #[test]
    fn idle_window_is_unbounded() {
        let mut io = IoSystem::new(&IoSpec::default());
        io.poll(0);
        assert_eq!(io.window(0), u64::MAX);
    }
}
