//! # tta-model — soft-core architecture descriptions
//!
//! This crate defines the architecture model used throughout the
//! *Transport-Triggered Soft Cores* reproduction: the Table-I operation set
//! with its latencies and evaluation semantics, function units, register
//! files, transport buses with explicit connectivity, and complete
//! [`Machine`] descriptions for all three programming models compared in the
//! paper (TTA, operation-triggered VLIW, and scalar RISC).
//!
//! The thirteen design points of the paper's evaluation are available as
//! ready-made constructors in [`presets`].
//!
//! ```
//! use tta_model::presets;
//!
//! let m = presets::m_tta_2();
//! assert_eq!(m.buses.len(), 6);
//! assert_eq!(m.total_read_ports(), 1); // the whole point of TTA
//! m.validate().unwrap();
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod fu;
pub mod gen;
pub mod io;
pub mod machine;
pub mod mem;
pub mod op;
pub mod presets;
pub mod rf;

pub use bus::{Bus, BusId, DstConn, SrcConn};
pub use fu::{FuId, FuKind, FunctionUnit};
pub use gen::{SearchConfig, TtaParams, VliwParams};
pub use machine::{CoreStyle, IssueSlot, LimmConfig, Machine, ModelError, ScalarPipeline};
pub use op::{OpClass, Opcode};
pub use rf::{RegRef, RegisterFile, RfId};
