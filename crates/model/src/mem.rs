//! Little-endian byte-addressable memory helpers shared by the IR reference
//! interpreter and the cycle-accurate simulator, so both agree bit-for-bit on
//! load/store semantics.

use crate::op::Opcode;

/// Error produced by an out-of-bounds or misaligned memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemError {
    /// The faulting absolute byte address.
    pub addr: u32,
    /// Access width in bytes.
    pub width: u32,
    /// Whether the access was a store.
    pub store: bool,
    /// Memory size at the time of the access.
    pub size: usize,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} bytes at address {:#x} out of bounds or misaligned (memory size {:#x})",
            if self.store { "store" } else { "load" },
            self.width,
            self.addr,
            self.size
        )
    }
}

impl std::error::Error for MemError {}

/// Access width in bytes for a memory opcode.
#[inline]
pub fn access_width(op: Opcode) -> u32 {
    match op {
        Opcode::Ldw | Opcode::Stw => 4,
        Opcode::Ldh | Opcode::Ldhu | Opcode::Sth => 2,
        Opcode::Ldq | Opcode::Ldqu | Opcode::Stq => 1,
        _ => panic!("access_width called on non-memory opcode {op:?}"),
    }
}

#[inline]
fn check(mem: &[u8], addr: u32, width: u32, store: bool) -> Result<usize, MemError> {
    let a = addr as usize;
    if !a.is_multiple_of(width as usize)
        || a.checked_add(width as usize).is_none_or(|e| e > mem.len())
    {
        return Err(MemError {
            addr,
            width,
            store,
            size: mem.len(),
        });
    }
    Ok(a)
}

/// Perform a load per the opcode's width/extension semantics.
#[inline]
pub fn load(mem: &[u8], op: Opcode, addr: u32) -> Result<i32, MemError> {
    let w = access_width(op);
    let a = check(mem, addr, w, false)?;
    let v = match op {
        Opcode::Ldw => i32::from_le_bytes([mem[a], mem[a + 1], mem[a + 2], mem[a + 3]]),
        Opcode::Ldh => i16::from_le_bytes([mem[a], mem[a + 1]]) as i32,
        Opcode::Ldhu => u16::from_le_bytes([mem[a], mem[a + 1]]) as i32,
        Opcode::Ldq => mem[a] as i8 as i32,
        Opcode::Ldqu => mem[a] as i32,
        _ => unreachable!("load called on non-load opcode {op:?}"),
    };
    Ok(v)
}

/// Perform a store per the opcode's width semantics (the value is truncated).
#[inline]
pub fn store(mem: &mut [u8], op: Opcode, addr: u32, value: i32) -> Result<(), MemError> {
    let w = access_width(op);
    let a = check(mem, addr, w, true)?;
    match op {
        Opcode::Stw => mem[a..a + 4].copy_from_slice(&value.to_le_bytes()),
        Opcode::Sth => mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        Opcode::Stq => mem[a] = value as u8,
        _ => unreachable!("store called on non-store opcode {op:?}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_little_endian() {
        let mut m = vec![0u8; 16];
        store(&mut m, Opcode::Stw, 4, 0x1234_5678).unwrap();
        assert_eq!(&m[4..8], &[0x78, 0x56, 0x34, 0x12]);
        assert_eq!(load(&m, Opcode::Ldw, 4).unwrap(), 0x1234_5678);
    }

    #[test]
    fn half_and_byte_extension() {
        let mut m = vec![0u8; 8];
        store(&mut m, Opcode::Sth, 2, -2).unwrap();
        assert_eq!(load(&m, Opcode::Ldh, 2).unwrap(), -2);
        assert_eq!(load(&m, Opcode::Ldhu, 2).unwrap(), 0xfffe);
        store(&mut m, Opcode::Stq, 5, -1).unwrap();
        assert_eq!(load(&m, Opcode::Ldq, 5).unwrap(), -1);
        assert_eq!(load(&m, Opcode::Ldqu, 5).unwrap(), 0xff);
    }

    #[test]
    fn store_truncates() {
        let mut m = vec![0u8; 8];
        store(&mut m, Opcode::Sth, 0, 0x0001_ffff).unwrap();
        assert_eq!(load(&m, Opcode::Ldhu, 0).unwrap(), 0xffff);
        store(&mut m, Opcode::Stq, 4, 0x1ff).unwrap();
        assert_eq!(load(&m, Opcode::Ldqu, 4).unwrap(), 0xff);
    }

    #[test]
    fn oob_and_misaligned_fault() {
        let mut m = vec![0u8; 8];
        assert!(load(&m, Opcode::Ldw, 8).is_err());
        assert!(load(&m, Opcode::Ldw, 6).is_err()); // crosses the end
        assert!(load(&m, Opcode::Ldw, 2).is_err()); // misaligned
        assert!(load(&m, Opcode::Ldh, 1).is_err()); // misaligned
        assert!(store(&mut m, Opcode::Stw, u32::MAX - 2, 0).is_err()); // overflow-safe
        assert!(load(&m, Opcode::Ldq, 7).is_ok());
    }

    #[test]
    fn widths() {
        assert_eq!(access_width(Opcode::Ldw), 4);
        assert_eq!(access_width(Opcode::Sth), 2);
        assert_eq!(access_width(Opcode::Ldqu), 1);
    }
}
