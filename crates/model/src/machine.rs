//! The machine (core template) description, covering all three programming
//! models compared in the paper: transport-triggered (TTA),
//! operation-triggered VLIW, and single-issue scalar RISC (MicroBlaze-like).

use crate::bus::{Bus, BusId, DstConn, SrcConn};
use crate::fu::{FuId, FuKind, FunctionUnit};
use crate::op::{OpClass, Opcode};
use crate::rf::{RegisterFile, RfId};

/// Programming model of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreStyle {
    /// Transport-triggered: instructions are bundles of explicit data moves.
    Tta,
    /// Operation-triggered VLIW: instructions are bundles of operations, all
    /// operands read from and results written to register files.
    Vliw,
    /// Single-issue in-order scalar RISC.
    Scalar,
}

/// One VLIW issue slot: the set of function units whose operations may be
/// encoded in this slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueSlot {
    /// Slot name for diagnostics.
    pub name: String,
    /// Function units issuable through this slot.
    pub units: Vec<FuId>,
}

/// Timing parameters for the scalar in-order pipeline model.
///
/// These play the role of the MicroBlaze pipeline variants in the paper. The
/// functional-unit latencies are the same Table-I latencies used by the TTA
/// and VLIW cores (the paper configures MicroBlaze with a "similar datapath")
/// and the pipeline parameters add the per-style hazard costs on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarPipeline {
    /// Pipeline depth (3 or 5 in the paper); affects the FPGA timing model.
    pub stages: u8,
    /// Extra cycles lost on a taken control transfer (pipeline refill). The
    /// 5-stage MicroBlaze is configured with its branch-target cache, which
    /// is why the deeper pipeline loses *fewer* cycles per taken branch —
    /// matching Table IV where mblaze-5 always executes fewer cycles than
    /// mblaze-3.
    pub branch_penalty: u32,
    /// Whether results forward to dependent instructions as soon as their
    /// functional latency elapses. Without forwarding an extra write-back
    /// cycle is charged on every dependence.
    pub forwarding: bool,
    /// Immediate bits encodable inline in one instruction; wider constants
    /// cost one extra `imm`-prefix instruction (as on the real MicroBlaze).
    pub imm_bits: u8,
}

impl ScalarPipeline {
    /// The 3-stage, area-optimised MicroBlaze-like pipeline.
    pub fn three_stage() -> Self {
        ScalarPipeline {
            stages: 3,
            branch_penalty: 2,
            forwarding: true,
            imm_bits: 16,
        }
    }

    /// The 5-stage, performance-optimised MicroBlaze-like pipeline (with
    /// branch-target cache).
    pub fn five_stage() -> Self {
        ScalarPipeline {
            stages: 5,
            branch_penalty: 1,
            forwarding: true,
            imm_bits: 16,
        }
    }
}

/// Long-immediate support of a TTA machine.
///
/// TCE encodes long immediates by repurposing the move slots of designated
/// buses through instruction templates: writing a 32-bit immediate consumes
/// `bus_slots` slots in one instruction and lands in one of `imm_regs`
/// immediate registers, readable as a move source from the *next* cycle
/// until overwritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimmConfig {
    /// Number of long-immediate registers.
    pub imm_regs: u8,
    /// Move slots consumed by transporting one 32-bit long immediate.
    pub bus_slots: u8,
}

impl Default for LimmConfig {
    fn default() -> Self {
        // Two immediate registers: typical blocks need one for a data
        // constant and one for the branch target, and two registers let the
        // scheduler overlap them freely.
        LimmConfig {
            imm_regs: 2,
            bus_slots: 3,
        }
    }
}

/// A validation problem found in a machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError(pub String);

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ModelError {}

/// A complete soft-core description.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Design-point name (e.g. `"m-tta-2"`).
    pub name: String,
    /// Programming model.
    pub style: CoreStyle,
    /// Nominal issue width (1, 2 or 3 in the paper); for TTA this is the
    /// sustained operation rate the datapath is sized for, not the move
    /// count.
    pub issue_width: u8,
    /// Function units (always containing exactly one control unit).
    pub funits: Vec<FunctionUnit>,
    /// Register files.
    pub rfs: Vec<RegisterFile>,
    /// Transport buses (TTA style only; empty otherwise).
    pub buses: Vec<Bus>,
    /// Issue slots (VLIW style only; empty otherwise).
    pub slots: Vec<IssueSlot>,
    /// Scalar pipeline parameters (scalar style only).
    pub scalar: Option<ScalarPipeline>,
    /// Delay slots after a control-transfer trigger before it takes effect
    /// (TTA and VLIW; the scalar model charges `branch_penalty` dynamically
    /// instead).
    pub jump_delay_slots: u32,
    /// Long-immediate support (TTA).
    pub limm: LimmConfig,
    /// Issue slots consumed by a 32-bit long-immediate operation (VLIW).
    pub vliw_limm_slots: u8,
}

impl Machine {
    /// Look up a function unit.
    pub fn fu(&self, id: FuId) -> &FunctionUnit {
        &self.funits[id.0 as usize]
    }

    /// Look up a register file.
    pub fn rf(&self, id: RfId) -> &RegisterFile {
        &self.rfs[id.0 as usize]
    }

    /// Look up a bus.
    pub fn bus(&self, id: BusId) -> &Bus {
        &self.buses[id.0 as usize]
    }

    /// Iterate function unit ids.
    pub fn fu_ids(&self) -> impl Iterator<Item = FuId> + '_ {
        (0..self.funits.len() as u16).map(FuId)
    }

    /// Iterate register file ids.
    pub fn rf_ids(&self) -> impl Iterator<Item = RfId> + '_ {
        (0..self.rfs.len() as u16).map(RfId)
    }

    /// Iterate bus ids.
    pub fn bus_ids(&self) -> impl Iterator<Item = BusId> + '_ {
        (0..self.buses.len() as u16).map(BusId)
    }

    /// The control unit's id.
    pub fn ctrl_unit(&self) -> FuId {
        self.fu_ids()
            .find(|&id| self.fu(id).kind == FuKind::Ctrl)
            .expect("validated machine has a control unit")
    }

    /// Function units able to execute the given opcode.
    pub fn units_for(&self, op: Opcode) -> impl Iterator<Item = FuId> + '_ {
        self.fu_ids().filter(move |&id| self.fu(id).supports(op))
    }

    /// Total general-purpose registers across all register files.
    pub fn total_regs(&self) -> u32 {
        self.rfs.iter().map(|rf| rf.regs as u32).sum()
    }

    /// Total RF read ports (the headline complexity metric of the paper).
    pub fn total_read_ports(&self) -> u32 {
        self.rfs.iter().map(|rf| rf.read_ports as u32).sum()
    }

    /// Total RF write ports.
    pub fn total_write_ports(&self) -> u32 {
        self.rfs.iter().map(|rf| rf.write_ports as u32).sum()
    }

    /// Buses whose slot can transport a move with the given source and
    /// destination.
    pub fn buses_connecting(&self, src: SrcConn, dst: DstConn) -> impl Iterator<Item = BusId> + '_ {
        self.bus_ids()
            .filter(move |&b| self.bus(b).reads(src) && self.bus(b).writes(dst))
    }

    /// Structural validation. Returns all problems found (empty = valid).
    pub fn validate(&self) -> Result<(), Vec<ModelError>> {
        let mut errs = Vec::new();
        let mut err = |m: String| errs.push(ModelError(m));

        // Exactly one control unit.
        let ctrls = self
            .funits
            .iter()
            .filter(|f| f.kind == FuKind::Ctrl)
            .count();
        if ctrls != 1 {
            err(format!(
                "machine must have exactly one control unit, found {ctrls}"
            ));
        }

        // Unique names.
        for (what, names) in [
            (
                "function unit",
                self.funits
                    .iter()
                    .map(|f| f.name.clone())
                    .collect::<Vec<_>>(),
            ),
            (
                "register file",
                self.rfs.iter().map(|r| r.name.clone()).collect(),
            ),
            ("bus", self.buses.iter().map(|b| b.name.clone()).collect()),
        ] {
            let mut sorted = names.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() != names.len() {
                err(format!("duplicate {what} names"));
            }
        }

        // Opcode classes match unit kinds, units non-empty.
        for f in &self.funits {
            if f.ops.is_empty() {
                err(format!("function unit {} hosts no operations", f.name));
            }
            for &op in &f.ops {
                if op.class() != f.kind.op_class() {
                    err(format!("unit {} ({:?}) cannot host {op}", f.name, f.kind));
                }
            }
        }

        // Register files sane.
        if self.rfs.is_empty() {
            err("machine has no register files".into());
        }
        for rf in &self.rfs {
            if rf.regs == 0 || rf.width == 0 || rf.read_ports == 0 || rf.write_ports == 0 {
                err(format!("register file {} has a zero dimension", rf.name));
            }
        }

        match self.style {
            CoreStyle::Tta => self.validate_tta(&mut errs),
            CoreStyle::Vliw => self.validate_vliw(&mut errs),
            CoreStyle::Scalar => {
                if self.scalar.is_none() {
                    errs.push(ModelError(
                        "scalar machine lacks pipeline parameters".into(),
                    ));
                }
            }
        }

        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    fn validate_tta(&self, errs: &mut Vec<ModelError>) {
        let mut err = |m: String| errs.push(ModelError(m));
        if self.buses.is_empty() {
            err("TTA machine has no buses".into());
            return;
        }
        let in_fu = |id: FuId| (id.0 as usize) < self.funits.len();
        let in_rf = |id: RfId| (id.0 as usize) < self.rfs.len();
        for b in &self.buses {
            for s in &b.sources {
                match *s {
                    SrcConn::RfRead(r) if !in_rf(r) => err(format!("bus {}: bad RF {r:?}", b.name)),
                    SrcConn::FuResult(f) if !in_fu(f) => {
                        err(format!("bus {}: bad FU {f:?}", b.name))
                    }
                    _ => {}
                }
            }
            for d in &b.dests {
                match *d {
                    DstConn::RfWrite(r) if !in_rf(r) => {
                        err(format!("bus {}: bad RF {r:?}", b.name))
                    }
                    DstConn::FuOperand(f) | DstConn::FuTrigger(f) if !in_fu(f) => {
                        err(format!("bus {}: bad FU {f:?}", b.name))
                    }
                    _ => {}
                }
            }
        }
        // Every needed port must be reachable.
        for (i, f) in self.funits.iter().enumerate() {
            let id = FuId(i as u16);
            if !self.buses.iter().any(|b| b.writes(DstConn::FuTrigger(id))) {
                err(format!(
                    "trigger port of {} unreachable from any bus",
                    f.name
                ));
            }
            if f.has_operand_port() && !self.buses.iter().any(|b| b.writes(DstConn::FuOperand(id)))
            {
                err(format!(
                    "operand port of {} unreachable from any bus",
                    f.name
                ));
            }
            if f.has_result_port() && !self.buses.iter().any(|b| b.reads(SrcConn::FuResult(id))) {
                err(format!(
                    "result port of {} not connected to any bus",
                    f.name
                ));
            }
        }
        for (i, rf) in self.rfs.iter().enumerate() {
            let id = RfId(i as u16);
            if !self.buses.iter().any(|b| b.reads(SrcConn::RfRead(id))) {
                err(format!("read port of {} not connected to any bus", rf.name));
            }
            if !self.buses.iter().any(|b| b.writes(DstConn::RfWrite(id))) {
                err(format!(
                    "write port of {} not connected to any bus",
                    rf.name
                ));
            }
        }
        if self.limm.imm_regs == 0 || self.limm.bus_slots == 0 {
            err("TTA machine needs long-immediate support (imm_regs and bus_slots >= 1)".into());
        }
        if (self.limm.bus_slots as usize) > self.buses.len() {
            err(format!(
                "long immediate needs {} bus slots but machine has only {} buses",
                self.limm.bus_slots,
                self.buses.len()
            ));
        }
    }

    fn validate_vliw(&self, errs: &mut Vec<ModelError>) {
        let mut err = |m: String| errs.push(ModelError(m));
        if self.slots.is_empty() {
            err("VLIW machine has no issue slots".into());
            return;
        }
        let mut covered = vec![false; self.funits.len()];
        for s in &self.slots {
            if s.units.is_empty() {
                err(format!("issue slot {} lists no units", s.name));
            }
            for &u in &s.units {
                if (u.0 as usize) >= self.funits.len() {
                    err(format!("issue slot {} references bad unit {u:?}", s.name));
                } else {
                    covered[u.0 as usize] = true;
                }
            }
        }
        for (i, c) in covered.iter().enumerate() {
            if !c {
                err(format!(
                    "unit {} not issuable through any slot",
                    self.funits[i].name
                ));
            }
        }
        if self.vliw_limm_slots == 0 || (self.vliw_limm_slots as usize) > self.slots.len() {
            err(format!(
                "vliw_limm_slots = {} invalid for {} issue slots",
                self.vliw_limm_slots,
                self.slots.len()
            ));
        }
    }

    /// Validation for *generated* configs, as produced by the design-space
    /// search mutator ([`crate::gen`]): everything [`Machine::validate`]
    /// checks, plus the stronger invariants the compiler needs to make
    /// progress on arbitrary kernels. A hand-written machine may
    /// legitimately violate these (e.g. an ALU-only datapath for a
    /// load-free guest); a machine the mutator feeds to the full kernel
    /// suite may not.
    pub fn validate_generated(&self) -> Result<(), Vec<ModelError>> {
        let mut errs = match self.validate() {
            Ok(()) => Vec::new(),
            Err(e) => e,
        };
        let mut err = |m: String| errs.push(ModelError(m));

        // The kernel suite needs arithmetic and memory traffic.
        if !self.funits.iter().any(|f| f.kind == FuKind::Alu) {
            err("generated config has no ALU".into());
        }
        if !self.funits.iter().any(|f| f.kind == FuKind::Lsu) {
            err("generated config has no LSU".into());
        }
        if !(1..=3).contains(&self.issue_width) {
            err(format!(
                "generated config has issue width {} outside 1..=3",
                self.issue_width
            ));
        }
        // Register allocation must have head room; the smallest paper RF
        // is 32 registers and the allocator's spill machinery is tuned
        // for that floor.
        if self.total_regs() < 32 {
            err(format!(
                "generated config has only {} registers (minimum 32)",
                self.total_regs()
            ));
        }
        // A VLIW slot reads up to two operands and writes one result per
        // cycle; fewer aggregate ports than the issue contract can
        // demand would wedge the scheduler (RF ports < connectivity
        // needs). TTA needs no such rule — that asymmetry is the paper's
        // point — its per-port reachability is checked by `validate`.
        if self.style == CoreStyle::Vliw {
            let slots = self.slots.len() as u32;
            if self.total_read_ports() < 2 * slots {
                err(format!(
                    "generated VLIW has {} read ports for {} slots (needs 2 per slot)",
                    self.total_read_ports(),
                    slots
                ));
            }
            if self.total_write_ports() < slots {
                err(format!(
                    "generated VLIW has {} write ports for {} slots (needs 1 per slot)",
                    self.total_write_ports(),
                    slots
                ));
            }
        }

        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Classes of operations the machine can execute at all.
    pub fn supported_classes(&self) -> Vec<OpClass> {
        let mut v: Vec<OpClass> = self.funits.iter().map(|f| f.kind.op_class()).collect();
        v.sort_by_key(|c| *c as u8);
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn all_presets_validate() {
        for m in presets::all_design_points() {
            if let Err(es) = m.validate() {
                panic!(
                    "{} failed validation:\n{}",
                    m.name,
                    es.iter()
                        .map(|e| e.0.clone())
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
        }
    }

    #[test]
    fn missing_control_unit_is_rejected() {
        let mut m = presets::m_tta_1();
        m.funits.retain(|f| f.kind != FuKind::Ctrl);
        let errs = m.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("control unit")));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = presets::m_tta_1();
        let n = m.rfs[0].name.clone();
        m.rfs.push(RegisterFile::new(n, 32, 1, 1));
        let errs = m.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("duplicate register file")));
    }

    #[test]
    fn unreachable_trigger_rejected() {
        let mut m = presets::m_tta_1();
        let alu = m.fu_ids().find(|&f| m.fu(f).kind == FuKind::Alu).unwrap();
        for b in &mut m.buses {
            b.dests.retain(|d| *d != DstConn::FuTrigger(alu));
        }
        let errs = m.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("trigger port")));
    }

    #[test]
    fn vliw_uncovered_unit_rejected() {
        let mut m = presets::m_vliw_2();
        m.slots[0].units.clear();
        assert!(m.validate().is_err());
    }

    #[test]
    fn generated_validation_accepts_all_presets_except_scalar_port_rule() {
        // Every multi-issue preset satisfies the generated-config rules.
        for m in presets::all_design_points() {
            if m.style != CoreStyle::Scalar {
                m.validate_generated()
                    .unwrap_or_else(|e| panic!("{}: {e:?}", m.name));
            }
        }
    }

    #[test]
    fn generated_validation_rejects_missing_alu_and_lsu() {
        let mut m = presets::m_tta_1();
        m.funits.retain(|f| f.kind != FuKind::Alu);
        let errs = m.validate_generated().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("no ALU")), "{errs:?}");

        let mut m = presets::m_tta_1();
        m.funits.retain(|f| f.kind != FuKind::Lsu);
        let errs = m.validate_generated().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("no LSU")), "{errs:?}");
    }

    #[test]
    fn generated_validation_rejects_zero_buses() {
        let mut m = presets::m_tta_2();
        m.buses.clear();
        let errs = m.validate_generated().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("no buses")), "{errs:?}");
    }

    #[test]
    fn generated_validation_rejects_starved_vliw_ports() {
        // Two slots need 4 read / 2 write ports; halve the RF.
        let mut m = presets::m_vliw_2();
        m.rfs = vec![RegisterFile::new("rf0", 64, 2, 1)];
        let errs = m.validate_generated().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("read ports")), "{errs:?}");
        assert!(errs.iter().any(|e| e.0.contains("write ports")), "{errs:?}");
        // validate() itself is fine with it — the rule is search-specific.
        m.validate().unwrap();
    }

    #[test]
    fn generated_validation_rejects_tiny_register_budgets() {
        let mut m = presets::m_tta_1();
        m.rfs = vec![RegisterFile::new("rf0", 16, 1, 1)];
        let errs = m.validate_generated().unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("minimum 32")), "{errs:?}");
    }

    #[test]
    fn port_totals() {
        let m = presets::m_vliw_2();
        assert_eq!(m.total_read_ports(), 4);
        assert_eq!(m.total_write_ports(), 2);
        assert_eq!(m.total_regs(), 64);
        let p = presets::p_tta_3();
        assert_eq!(p.total_read_ports(), 3);
        assert_eq!(p.total_write_ports(), 3);
        assert_eq!(p.total_regs(), 96);
    }

    #[test]
    fn ctrl_unit_lookup() {
        let m = presets::m_tta_2();
        let cu = m.ctrl_unit();
        assert_eq!(m.fu(cu).kind, FuKind::Ctrl);
        assert!(m.fu(cu).supports(Opcode::Jump));
    }

    #[test]
    fn units_for_opcode() {
        let m = presets::m_tta_3();
        assert_eq!(m.units_for(Opcode::Add).count(), 2); // two ALUs
        assert_eq!(m.units_for(Opcode::Ldw).count(), 1);
        assert_eq!(m.units_for(Opcode::Jump).count(), 1);
    }
}
