//! The operation set of the evaluated cores.
//!
//! This is exactly the integer operation set of Table I in the paper plus the
//! control operations provided by the control unit (absolute `jump`,
//! conditional jumps and `halt`). Latencies are the ones listed in Table I.
//!
//! The ALU/LSU evaluation semantics live here (see [`Opcode::eval_alu`] and
//! the [`mem`](crate::mem) module) so that the IR reference interpreter and
//! the cycle-accurate simulator share a single source of truth: a divergence
//! between the two would otherwise silently invalidate the differential
//! tests.

/// Functional class of an operation, which also determines the kind of
/// function unit that may execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer arithmetic / logic (executes on an ALU).
    Alu,
    /// Memory access (executes on a load-store unit).
    Lsu,
    /// Control flow (executes on the control unit).
    Ctrl,
}

/// Every operation of the evaluated base datapath (Table I) plus control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    // --- ALU (Table I, left column) ---
    /// `a + b` (wrapping).
    Add,
    /// `a & b`.
    And,
    /// `a == b` producing 0/1.
    Eq,
    /// signed `a > b` producing 0/1.
    Gt,
    /// unsigned `a > b` producing 0/1.
    Gtu,
    /// `a | b`.
    Ior,
    /// `a * b` (wrapping, low 32 bits).
    Mul,
    /// `a << (b & 31)`.
    Shl,
    /// arithmetic `a >> (b & 31)`.
    Shr,
    /// logical `a >> (b & 31)`.
    Shru,
    /// `a - b` (wrapping).
    Sub,
    /// sign extend low 16 bits of `a`.
    Sxhw,
    /// sign extend low 8 bits of `a`.
    Sxqw,
    /// `a ^ b`.
    Xor,
    // --- LSU (Table I, right column); all addresses are absolute ---
    /// load 32b.
    Ldw,
    /// load 16b, sign extend.
    Ldh,
    /// load 8b, sign extend.
    Ldq,
    /// load 8b, zero extend.
    Ldqu,
    /// load 16b, zero extend.
    Ldhu,
    /// store 32b.
    Stw,
    /// store 16b.
    Sth,
    /// store 8b.
    Stq,
    // --- Control unit ---
    /// absolute unconditional jump.
    Jump,
    /// conditional jump, taken when the condition is non-zero.
    CJnz,
    /// conditional jump, taken when the condition is zero.
    CJz,
    /// stop the core (used to terminate `main`).
    Halt,
}

impl Opcode {
    /// All opcodes, in a stable order (ALU, LSU, control).
    pub const ALL: [Opcode; 26] = [
        Opcode::Add,
        Opcode::And,
        Opcode::Eq,
        Opcode::Gt,
        Opcode::Gtu,
        Opcode::Ior,
        Opcode::Mul,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Shru,
        Opcode::Sub,
        Opcode::Sxhw,
        Opcode::Sxqw,
        Opcode::Xor,
        Opcode::Ldw,
        Opcode::Ldh,
        Opcode::Ldq,
        Opcode::Ldqu,
        Opcode::Ldhu,
        Opcode::Stw,
        Opcode::Sth,
        Opcode::Stq,
        Opcode::Jump,
        Opcode::CJnz,
        Opcode::CJz,
        Opcode::Halt,
    ];

    /// The ALU opcodes of Table I.
    pub const ALU_OPS: [Opcode; 14] = [
        Opcode::Add,
        Opcode::And,
        Opcode::Eq,
        Opcode::Gt,
        Opcode::Gtu,
        Opcode::Ior,
        Opcode::Mul,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Shru,
        Opcode::Sub,
        Opcode::Sxhw,
        Opcode::Sxqw,
        Opcode::Xor,
    ];

    /// The LSU opcodes of Table I.
    pub const LSU_OPS: [Opcode; 8] = [
        Opcode::Ldw,
        Opcode::Ldh,
        Opcode::Ldq,
        Opcode::Ldqu,
        Opcode::Ldhu,
        Opcode::Stw,
        Opcode::Sth,
        Opcode::Stq,
    ];

    /// The control-unit opcodes.
    pub const CTRL_OPS: [Opcode; 4] = [Opcode::Jump, Opcode::CJnz, Opcode::CJz, Opcode::Halt];

    /// Assembly mnemonic, matching Table I where applicable.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::And => "and",
            Opcode::Eq => "eq",
            Opcode::Gt => "gt",
            Opcode::Gtu => "gtu",
            Opcode::Ior => "ior",
            Opcode::Mul => "mul",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Shru => "shru",
            Opcode::Sub => "sub",
            Opcode::Sxhw => "sxhw",
            Opcode::Sxqw => "sxqw",
            Opcode::Xor => "xor",
            Opcode::Ldw => "ldw",
            Opcode::Ldh => "ldh",
            Opcode::Ldq => "ldq",
            Opcode::Ldqu => "ldqu",
            Opcode::Ldhu => "ldhu",
            Opcode::Stw => "stw",
            Opcode::Sth => "sth",
            Opcode::Stq => "stq",
            Opcode::Jump => "jump",
            Opcode::CJnz => "cjnz",
            Opcode::CJz => "cjz",
            Opcode::Halt => "halt",
        }
    }

    /// The functional class of this operation.
    #[inline]
    pub fn class(self) -> OpClass {
        match self {
            Opcode::Add
            | Opcode::And
            | Opcode::Eq
            | Opcode::Gt
            | Opcode::Gtu
            | Opcode::Ior
            | Opcode::Mul
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::Shru
            | Opcode::Sub
            | Opcode::Sxhw
            | Opcode::Sxqw
            | Opcode::Xor => OpClass::Alu,
            Opcode::Ldw
            | Opcode::Ldh
            | Opcode::Ldq
            | Opcode::Ldqu
            | Opcode::Ldhu
            | Opcode::Stw
            | Opcode::Sth
            | Opcode::Stq => OpClass::Lsu,
            Opcode::Jump | Opcode::CJnz | Opcode::CJz | Opcode::Halt => OpClass::Ctrl,
        }
    }

    /// Execution latency in cycles, per Table I. An operation triggered at
    /// cycle `t` has its result available at cycle `t + latency()`. Stores
    /// have latency 0: the memory write happens immediately and there is no
    /// result.
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            Opcode::Mul => 3,
            Opcode::Shl | Opcode::Shr | Opcode::Shru => 2,
            Opcode::Ldw | Opcode::Ldh | Opcode::Ldq | Opcode::Ldqu | Opcode::Ldhu => 3,
            Opcode::Stw | Opcode::Sth | Opcode::Stq => 0,
            // Control-flow effect latency is machine-dependent (delay slots),
            // handled by `Machine::jump_delay_slots`; the nominal latency of
            // the trigger itself is one cycle.
            Opcode::Jump | Opcode::CJnz | Opcode::CJz | Opcode::Halt => 1,
            _ => 1,
        }
    }

    /// Number of data inputs (1 or 2). For stores the two inputs are
    /// (address, value); for conditional jumps (target, condition).
    #[inline]
    pub fn num_inputs(self) -> usize {
        match self {
            Opcode::Sxhw | Opcode::Sxqw => 1,
            Opcode::Ldw | Opcode::Ldh | Opcode::Ldq | Opcode::Ldqu | Opcode::Ldhu => 1,
            Opcode::Jump | Opcode::Halt => 1,
            _ => 2,
        }
    }

    /// Whether the operation produces a result value.
    pub fn has_result(self) -> bool {
        !matches!(
            self,
            Opcode::Stw
                | Opcode::Sth
                | Opcode::Stq
                | Opcode::Jump
                | Opcode::CJnz
                | Opcode::CJz
                | Opcode::Halt
        )
    }

    /// Whether this is a memory load.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::Ldw | Opcode::Ldh | Opcode::Ldq | Opcode::Ldqu | Opcode::Ldhu
        )
    }

    /// Whether this is a memory store.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stw | Opcode::Sth | Opcode::Stq)
    }

    /// Whether this is any memory operation.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this is a control-flow operation.
    pub fn is_ctrl(self) -> bool {
        self.class() == OpClass::Ctrl
    }

    /// Whether the operation is commutative in its two data inputs, which the
    /// TTA scheduler may exploit by swapping the operand and trigger moves.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add | Opcode::And | Opcode::Ior | Opcode::Xor | Opcode::Eq | Opcode::Mul
        )
    }

    /// Evaluate a (non-memory, non-control) ALU operation.
    ///
    /// `a` is the first (operand-port) input and `b` the second
    /// (trigger-port) input; unary operations ignore `b`.
    ///
    /// # Panics
    ///
    /// Panics if called with a memory or control opcode.
    #[inline]
    pub fn eval_alu(self, a: i32, b: i32) -> i32 {
        match self {
            Opcode::Add => a.wrapping_add(b),
            Opcode::Sub => a.wrapping_sub(b),
            Opcode::And => a & b,
            Opcode::Ior => a | b,
            Opcode::Xor => a ^ b,
            Opcode::Eq => (a == b) as i32,
            Opcode::Gt => (a > b) as i32,
            Opcode::Gtu => ((a as u32) > (b as u32)) as i32,
            Opcode::Mul => a.wrapping_mul(b),
            Opcode::Shl => a.wrapping_shl(b as u32 & 31),
            Opcode::Shr => a.wrapping_shr(b as u32 & 31),
            Opcode::Shru => ((a as u32).wrapping_shr(b as u32 & 31)) as i32,
            Opcode::Sxhw => a as i16 as i32,
            Opcode::Sxqw => a as i8 as i32,
            _ => panic!("eval_alu called on non-ALU opcode {self:?}"),
        }
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies() {
        // The exact latencies printed in Table I of the paper.
        assert_eq!(Opcode::Add.latency(), 1);
        assert_eq!(Opcode::And.latency(), 1);
        assert_eq!(Opcode::Eq.latency(), 1);
        assert_eq!(Opcode::Gt.latency(), 1);
        assert_eq!(Opcode::Gtu.latency(), 1);
        assert_eq!(Opcode::Ior.latency(), 1);
        assert_eq!(Opcode::Mul.latency(), 3);
        assert_eq!(Opcode::Shl.latency(), 2);
        assert_eq!(Opcode::Shr.latency(), 2);
        assert_eq!(Opcode::Shru.latency(), 2);
        assert_eq!(Opcode::Sub.latency(), 1);
        assert_eq!(Opcode::Sxhw.latency(), 1);
        assert_eq!(Opcode::Sxqw.latency(), 1);
        assert_eq!(Opcode::Xor.latency(), 1);
        for ld in [
            Opcode::Ldw,
            Opcode::Ldh,
            Opcode::Ldq,
            Opcode::Ldqu,
            Opcode::Ldhu,
        ] {
            assert_eq!(ld.latency(), 3, "{ld}");
        }
        for st in [Opcode::Stw, Opcode::Sth, Opcode::Stq] {
            assert_eq!(st.latency(), 0, "{st}");
        }
    }

    #[test]
    fn class_partition_is_total_and_disjoint() {
        let mut alu = 0;
        let mut lsu = 0;
        let mut ctrl = 0;
        for op in Opcode::ALL {
            match op.class() {
                OpClass::Alu => alu += 1,
                OpClass::Lsu => lsu += 1,
                OpClass::Ctrl => ctrl += 1,
            }
        }
        assert_eq!(alu, Opcode::ALU_OPS.len());
        assert_eq!(lsu, Opcode::LSU_OPS.len());
        assert_eq!(ctrl, Opcode::CTRL_OPS.len());
        assert_eq!(alu + lsu + ctrl, Opcode::ALL.len());
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(Opcode::Add.eval_alu(2, 3), 5);
        assert_eq!(Opcode::Add.eval_alu(i32::MAX, 1), i32::MIN); // wrapping
        assert_eq!(Opcode::Sub.eval_alu(2, 3), -1);
        assert_eq!(Opcode::And.eval_alu(0b1100, 0b1010), 0b1000);
        assert_eq!(Opcode::Ior.eval_alu(0b1100, 0b1010), 0b1110);
        assert_eq!(Opcode::Xor.eval_alu(0b1100, 0b1010), 0b0110);
        assert_eq!(Opcode::Eq.eval_alu(7, 7), 1);
        assert_eq!(Opcode::Eq.eval_alu(7, 8), 0);
        assert_eq!(Opcode::Gt.eval_alu(-1, 1), 0);
        assert_eq!(Opcode::Gtu.eval_alu(-1, 1), 1); // 0xffff_ffff > 1 unsigned
        assert_eq!(Opcode::Mul.eval_alu(7, -3), -21);
        assert_eq!(Opcode::Shl.eval_alu(1, 33), 2); // shift amount masked to 5 bits
        assert_eq!(Opcode::Shr.eval_alu(-8, 1), -4);
        assert_eq!(Opcode::Shru.eval_alu(-8, 1), 0x7fff_fffc);
        assert_eq!(Opcode::Sxhw.eval_alu(0xffff, 0), -1);
        assert_eq!(Opcode::Sxhw.eval_alu(0x7fff, 0), 0x7fff);
        assert_eq!(Opcode::Sxqw.eval_alu(0xff, 0), -1);
        assert_eq!(Opcode::Sxqw.eval_alu(0x7f, 0), 0x7f);
    }

    #[test]
    fn input_counts_and_results() {
        assert_eq!(Opcode::Add.num_inputs(), 2);
        assert_eq!(Opcode::Sxhw.num_inputs(), 1);
        assert_eq!(Opcode::Ldw.num_inputs(), 1);
        assert_eq!(Opcode::Stw.num_inputs(), 2);
        assert_eq!(Opcode::CJnz.num_inputs(), 2);
        assert_eq!(Opcode::Jump.num_inputs(), 1);
        assert!(Opcode::Ldw.has_result());
        assert!(!Opcode::Stw.has_result());
        assert!(!Opcode::Jump.has_result());
        assert!(Opcode::Add.has_result());
    }

    #[test]
    #[should_panic(expected = "eval_alu called on non-ALU opcode")]
    fn eval_alu_rejects_memory_ops() {
        Opcode::Ldw.eval_alu(0, 0);
    }
}
