//! Generated machine-config space for design-space search.
//!
//! The paper's 13 design points are a hand-picked slice of a much larger
//! space: bus count, register-file partitioning and porting, issue width
//! (and with it the FU inventory), and interconnect richness. This module
//! describes that space as small, hashable parameter records
//! ([`SearchConfig`]) that build into full [`Machine`] descriptions
//! through the same preset wiring helpers the paper points use — so a
//! generated config with the paper's parameters is *structurally
//! identical* to the preset (modulo name), which is what lets the search
//! in `tta-explore` rediscover the bm-tta points by construction rather
//! than by name.
//!
//! Every parameter is bounded ([`TtaParams::in_space`] /
//! [`VliwParams::in_space`]) so a mutator stepping through the space can
//! never build a machine the compiler would reject; the bounds themselves
//! are re-checked by [`Machine::validate_generated`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::machine::Machine;
use crate::presets;
use crate::rf::RegisterFile;

/// Bus-count bounds of the TTA space. The floor is the default
/// long-immediate template width (a 32-bit immediate consumes three move
/// slots); the ceiling is the paper's widest machine (9 buses) plus head
/// room for the search to discover that more transport stops paying.
pub const MIN_BUSES: u8 = 3;
/// See [`MIN_BUSES`].
pub const MAX_BUSES: u8 = 10;
/// Register-bank count bounds (1 = monolithic, 3 = the paper's widest
/// partitioning).
pub const MAX_BANKS: u8 = 3;
/// Registers per bank are multiples of 32 like every paper RF.
pub const REGS_CHOICES: [u16; 3] = [32, 64, 96];
/// RF ports per bank never exceed 2 in the TTA space — the paper's whole
/// argument is that software bypassing makes big port counts pointless.
pub const MAX_PORTS: u8 = 2;

/// Parameters of one generated TTA design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TtaParams {
    /// Sustained issue width the datapath is sized for (1..=3; two full
    /// ALUs from 3 up, like the presets).
    pub issue: u8,
    /// Register banks (1..=[`MAX_BANKS`]).
    pub banks: u8,
    /// Registers per bank (one of [`REGS_CHOICES`]).
    pub regs_per_bank: u16,
    /// Read ports per bank (1..=[`MAX_PORTS`]).
    pub read_ports: u8,
    /// Write ports per bank (1..=[`MAX_PORTS`]).
    pub write_ports: u8,
    /// Transport buses ([`MIN_BUSES`]..=[`MAX_BUSES`]).
    pub buses: u8,
    /// Full RF-socket connectivity (the union wiring of the bus-merged
    /// machines) instead of the pruned two-buses-per-port wiring.
    pub full_conn: bool,
}

/// Parameters of one generated VLIW design point. The RF follows the
/// paper's two families: monolithic (one bank with `2×issue` read and
/// `issue` write ports) or fully partitioned (`issue` banks of 2R/1W).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VliwParams {
    /// Issue width (2..=3; 1-issue VLIW is just a worse scalar).
    pub issue: u8,
    /// Partitioned RF (`issue` banks of 2R/1W) vs monolithic.
    pub partitioned: bool,
    /// Registers per bank (one of [`REGS_CHOICES`]).
    pub regs_per_bank: u16,
}

/// One point of the generated config space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchConfig {
    /// A transport-triggered design.
    Tta(TtaParams),
    /// An operation-triggered VLIW design.
    Vliw(VliwParams),
}

impl TtaParams {
    /// Whether every parameter is inside the search-space bounds.
    pub fn in_space(&self) -> bool {
        (1..=3).contains(&self.issue)
            && (1..=MAX_BANKS).contains(&self.banks)
            && REGS_CHOICES.contains(&self.regs_per_bank)
            && (1..=MAX_PORTS).contains(&self.read_ports)
            && (1..=MAX_PORTS).contains(&self.write_ports)
            && (MIN_BUSES..=MAX_BUSES).contains(&self.buses)
    }
}

impl VliwParams {
    /// Whether every parameter is inside the search-space bounds.
    pub fn in_space(&self) -> bool {
        (2..=3).contains(&self.issue) && REGS_CHOICES.contains(&self.regs_per_bank)
    }
}

impl SearchConfig {
    /// Whether the config is inside the search-space bounds.
    pub fn in_space(&self) -> bool {
        match self {
            SearchConfig::Tta(p) => p.in_space(),
            SearchConfig::Vliw(p) => p.in_space(),
        }
    }

    /// Deterministic name encoding every parameter, so equal configs
    /// always build machines with equal `Debug` forms (the compile-cache
    /// key) however they were proposed.
    pub fn name(&self) -> String {
        match self {
            SearchConfig::Tta(p) => format!(
                "g-tta-i{}-{}x{}r{}w{}-t{}{}",
                p.issue,
                p.banks,
                p.regs_per_bank,
                p.read_ports,
                p.write_ports,
                p.buses,
                if p.full_conn { "-f" } else { "" },
            ),
            SearchConfig::Vliw(p) => format!(
                "g-vliw-i{}-{}x{}",
                p.issue,
                if p.partitioned { p.issue } else { 1 },
                p.regs_per_bank,
            ),
        }
    }

    /// Build the full machine description. Panics if the config is out of
    /// space — callers mutate *within* the space and check
    /// [`SearchConfig::in_space`] first.
    pub fn build(&self) -> Machine {
        assert!(self.in_space(), "config out of space: {self:?}");
        let name = self.name();
        match self {
            SearchConfig::Tta(p) => {
                let rfs = (0..p.banks)
                    .map(|i| {
                        RegisterFile::new(
                            format!("rf{i}"),
                            p.regs_per_bank,
                            p.read_ports,
                            p.write_ports,
                        )
                    })
                    .collect();
                presets::custom_tta(&name, p.issue, rfs, p.buses as usize, p.full_conn)
            }
            SearchConfig::Vliw(p) => {
                let rfs = if p.partitioned {
                    (0..p.issue)
                        .map(|i| RegisterFile::new(format!("rf{i}"), p.regs_per_bank, 2, 1))
                        .collect()
                } else {
                    vec![RegisterFile::new(
                        "rf0",
                        p.regs_per_bank,
                        2 * p.issue,
                        p.issue,
                    )]
                };
                presets::custom_vliw(&name, p.issue, rfs)
            }
        }
    }
}

/// Hash of a machine's structure with the name erased: two configs that
/// wire up identical datapaths collide here whatever they are called.
/// This is how the search recognises a generated config as one of the
/// paper's design points.
pub fn structural_hash(m: &Machine) -> u64 {
    let mut anon = m.clone();
    anon.name.clear();
    let mut h = DefaultHasher::new();
    format!("{anon:?}").hash(&mut h);
    h.finish()
}

/// Enumerate the entire config space in a fixed deterministic order
/// (TTA lexicographic over the parameter tuple, then VLIW). ~1500
/// configs — small enough to sweep analytically, far too large to
/// compile exhaustively, which is the point of the staged funnel.
pub fn enumerate_space() -> Vec<SearchConfig> {
    let mut out = Vec::new();
    for issue in 1..=3u8 {
        for banks in 1..=MAX_BANKS {
            for &regs_per_bank in &REGS_CHOICES {
                for read_ports in 1..=MAX_PORTS {
                    for write_ports in 1..=MAX_PORTS {
                        for buses in MIN_BUSES..=MAX_BUSES {
                            for full_conn in [false, true] {
                                out.push(SearchConfig::Tta(TtaParams {
                                    issue,
                                    banks,
                                    regs_per_bank,
                                    read_ports,
                                    write_ports,
                                    buses,
                                    full_conn,
                                }));
                            }
                        }
                    }
                }
            }
        }
    }
    for issue in 2..=3u8 {
        for partitioned in [false, true] {
            for &regs_per_bank in &REGS_CHOICES {
                out.push(SearchConfig::Vliw(VliwParams {
                    issue,
                    partitioned,
                    regs_per_bank,
                }));
            }
        }
    }
    out
}

/// The configs whose built machines are structurally identical to the
/// paper's ten multi-issue design points (every non-scalar preset),
/// keyed by preset name. Pinned by tests; the search uses it to check
/// rediscovery without name matching.
pub fn paper_configs() -> Vec<(&'static str, SearchConfig)> {
    let tta = |issue, banks, regs_per_bank, read_ports, write_ports, buses, full_conn| {
        SearchConfig::Tta(TtaParams {
            issue,
            banks,
            regs_per_bank,
            read_ports,
            write_ports,
            buses,
            full_conn,
        })
    };
    let vliw = |issue, partitioned, regs_per_bank| {
        SearchConfig::Vliw(VliwParams {
            issue,
            partitioned,
            regs_per_bank,
        })
    };
    vec![
        ("m-tta-1", tta(1, 1, 32, 1, 1, 3, false)),
        ("m-vliw-2", vliw(2, false, 64)),
        ("p-vliw-2", vliw(2, true, 32)),
        ("m-tta-2", tta(2, 1, 64, 1, 1, 6, false)),
        ("p-tta-2", tta(2, 2, 32, 1, 1, 6, false)),
        ("bm-tta-2", tta(2, 2, 32, 1, 1, 4, true)),
        ("m-vliw-3", vliw(3, false, 96)),
        ("p-vliw-3", vliw(3, true, 32)),
        ("m-tta-3", tta(3, 1, 96, 2, 1, 9, false)),
        ("p-tta-3", tta(3, 3, 32, 1, 1, 9, false)),
        ("bm-tta-3", tta(3, 3, 32, 1, 1, 6, true)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_config_in_space_builds_and_validates() {
        for cfg in enumerate_space() {
            assert!(cfg.in_space(), "{cfg:?}");
            let m = cfg.build();
            m.validate().unwrap_or_else(|e| panic!("{cfg:?}: {e:?}"));
            m.validate_generated()
                .unwrap_or_else(|e| panic!("{cfg:?}: {e:?}"));
            assert_eq!(m.name, cfg.name());
        }
    }

    #[test]
    fn space_is_duplicate_free_and_deterministic() {
        let space = enumerate_space();
        let mut names: Vec<String> = space.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), space.len(), "duplicate config names");
        assert_eq!(space, enumerate_space(), "enumeration must be stable");
    }

    #[test]
    fn paper_points_are_inside_the_space() {
        let space = enumerate_space();
        for (name, cfg) in paper_configs() {
            assert!(cfg.in_space(), "{name}");
            assert!(space.contains(&cfg), "{name} not enumerated");
        }
    }

    #[test]
    fn paper_configs_build_structural_twins_of_the_presets() {
        for (name, cfg) in paper_configs() {
            let preset = presets::by_name(name).unwrap();
            let built = cfg.build();
            assert_eq!(
                structural_hash(&preset),
                structural_hash(&built),
                "{name}: generated config is not a structural twin"
            );
        }
    }

    #[test]
    fn structural_hash_ignores_name_but_not_structure() {
        let a = presets::bm_tta_2();
        let mut renamed = a.clone();
        renamed.name = "anything".into();
        assert_eq!(structural_hash(&a), structural_hash(&renamed));
        let b = presets::p_tta_2(); // same RFs, different bus count/wiring
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn out_of_space_configs_are_rejected() {
        let mut p = match paper_configs()[5].1 {
            SearchConfig::Tta(p) => p,
            _ => unreachable!(),
        };
        p.buses = MIN_BUSES - 1;
        assert!(!p.in_space());
        p.buses = MAX_BUSES + 1;
        assert!(!p.in_space());
        p.buses = MIN_BUSES;
        p.regs_per_bank = 48;
        assert!(!p.in_space());
    }
}
