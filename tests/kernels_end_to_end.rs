//! End-to-end integration: every CHStone-style kernel, compiled for every
//! design point, simulated cycle-accurately, must reproduce the IR
//! interpreter's return value and data-memory image.
//!
//! This is the full evaluation pipeline of the paper exercised as a test.

use tta_chstone::all_kernels;
use tta_ir::interp::Interpreter;
use tta_model::presets;

fn run_kernel_on(kernel: &tta_chstone::Kernel, machine: &tta_model::Machine) -> u64 {
    let module = (kernel.build)();
    let golden = Interpreter::new(&module)
        .run(&[])
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", kernel.name));
    let compiled = tta_compiler::compile(&module, machine)
        .unwrap_or_else(|e| panic!("{} on {}: compile failed: {e}", kernel.name, machine.name));
    let result =
        tta_sim::run(machine, &compiled.program, module.initial_memory()).unwrap_or_else(|e| {
            panic!(
                "{} on {}: simulation failed: {e}",
                kernel.name, machine.name
            )
        });
    assert_eq!(
        Some(result.ret),
        golden.ret,
        "{} on {}: wrong checksum",
        kernel.name,
        machine.name
    );
    assert_eq!(
        result.ret,
        (kernel.expected)(),
        "{}: native reference",
        kernel.name
    );
    let lo = 16usize;
    let hi = module.mem_size.saturating_sub(4096) as usize;
    assert_eq!(
        &golden.memory[lo..hi],
        &result.memory[lo..hi],
        "{} on {}: memory image mismatch",
        kernel.name,
        machine.name
    );
    result.cycles
}

macro_rules! kernel_machine_tests {
    ($($kernel:ident),*) => {
        $(
            mod $kernel {
                use super::*;

                #[test]
                fn on_scalar_machines() {
                    let k = tta_chstone::by_name(stringify!($kernel)).unwrap();
                    let c3 = run_kernel_on(&k, &presets::mblaze_3());
                    let c5 = run_kernel_on(&k, &presets::mblaze_5());
                    // The 5-stage configuration (branch-target cache) never
                    // executes more cycles than the 3-stage one.
                    assert!(c5 <= c3, "mblaze-5 ({c5}) slower than mblaze-3 ({c3})");
                }

                #[test]
                fn on_single_issue_tta() {
                    let k = tta_chstone::by_name(stringify!($kernel)).unwrap();
                    run_kernel_on(&k, &presets::m_tta_1());
                }

                #[test]
                fn on_two_issue_machines() {
                    let k = tta_chstone::by_name(stringify!($kernel)).unwrap();
                    for m in [
                        presets::m_vliw_2(),
                        presets::p_vliw_2(),
                        presets::m_tta_2(),
                        presets::p_tta_2(),
                        presets::bm_tta_2(),
                    ] {
                        run_kernel_on(&k, &m);
                    }
                }

                #[test]
                fn on_three_issue_machines() {
                    let k = tta_chstone::by_name(stringify!($kernel)).unwrap();
                    for m in [
                        presets::m_vliw_3(),
                        presets::p_vliw_3(),
                        presets::m_tta_3(),
                        presets::p_tta_3(),
                        presets::bm_tta_3(),
                    ] {
                        run_kernel_on(&k, &m);
                    }
                }
            }
        )*
    };
}

kernel_machine_tests!(adpcm, aes, blowfish, gsm, jpeg, mips, motion, sha);

/// The evaluation's headline shape: on every kernel, the multi-issue TTAs
/// execute no more cycles than their VLIW counterparts (paper Table IV
/// shows ratios of 0.37x–1.02x, i.e. TTA equal or faster everywhere except
/// one bm case; we assert a small tolerance).
#[test]
fn tta_cycle_counts_competitive_with_vliw() {
    for k in all_kernels() {
        let vliw2 = run_kernel_on(&k, &presets::m_vliw_2());
        let tta2 = run_kernel_on(&k, &presets::m_tta_2());
        assert!(
            (tta2 as f64) < (vliw2 as f64) * 1.10,
            "{}: m-tta-2 {tta2} vs m-vliw-2 {vliw2}",
            k.name
        );
    }
}
