//! Integration test for the TTA-freedom ablation switches: every variant
//! must stay correct, and each freedom must actually do its job.

use tta_compiler::{compile_with, TtaOptions};
use tta_model::presets;

fn run(kernel: &str, opts: TtaOptions) -> (u64, tta_sim::SimStats) {
    let k = tta_chstone::by_name(kernel).unwrap();
    let module = (k.build)();
    let machine = presets::m_tta_2();
    let compiled = compile_with(&module, &machine, opts).expect("compiles");
    let r = tta_sim::run(&machine, &compiled.program, module.initial_memory()).expect("runs");
    assert_eq!(r.ret, (k.expected)(), "{kernel} with {opts:?}");
    (r.cycles, r.stats)
}

#[test]
fn every_ablated_variant_is_still_correct() {
    let full = TtaOptions::default();
    for opts in [
        full,
        TtaOptions {
            bypass: false,
            ..full
        },
        TtaOptions {
            dead_result_elim: false,
            ..full
        },
        TtaOptions {
            operand_share: false,
            ..full
        },
        TtaOptions {
            bypass: false,
            dead_result_elim: false,
            operand_share: false,
        },
    ] {
        for kernel in ["gsm", "sha", "mips"] {
            run(kernel, opts);
        }
    }
}

#[test]
fn bypassing_saves_cycles_and_rf_reads() {
    let full = TtaOptions::default();
    let (c_full, s_full) = run("gsm", full);
    let (c_nobyp, s_nobyp) = run(
        "gsm",
        TtaOptions {
            bypass: false,
            ..full
        },
    );
    assert!(
        c_full < c_nobyp,
        "bypassing must save cycles: {c_full} vs {c_nobyp}"
    );
    assert!(
        s_full.rf_reads * 3 < s_nobyp.rf_reads * 2,
        "bypassing must cut RF reads substantially: {} vs {}",
        s_full.rf_reads,
        s_nobyp.rf_reads
    );
    // With bypassing off, the only result-port reads left are the RF
    // writeback moves themselves.
    assert!(
        s_nobyp.bypass_reads <= s_nobyp.rf_writes,
        "result-port reads ({}) must all be writebacks ({})",
        s_nobyp.bypass_reads,
        s_nobyp.rf_writes
    );
}

#[test]
fn dead_result_elimination_saves_rf_writes() {
    let full = TtaOptions::default();
    let (_, s_full) = run("gsm", full);
    let (_, s_nodre) = run(
        "gsm",
        TtaOptions {
            dead_result_elim: false,
            ..full
        },
    );
    assert!(
        s_full.rf_writes < s_nodre.rf_writes,
        "DRE must cut RF writes: {} vs {}",
        s_full.rf_writes,
        s_nodre.rf_writes
    );
}
