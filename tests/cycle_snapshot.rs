//! Cycle-count snapshot regression: every (kernel × design point) pair
//! must report byte-identical `cycles` and `SimStats` across simulator
//! refactors. This locks the paper's *timing contract* — not merely the
//! return values — so a performance rewrite of the simulators (e.g. the
//! predecoded cores) cannot silently shift a single reported number.
//!
//! The golden file was generated from the original (pre-predecode)
//! simulators. To regenerate after an *intentional* timing change:
//!
//! ```sh
//! UPDATE_SNAPSHOT=1 cargo test --release --test cycle_snapshot
//! ```

use std::fmt::Write as _;

const SNAPSHOT_PATH: &str = "tests/snapshots/cycle_counts.txt";

/// Render one stable line per (machine, kernel) pair: the cycle count and
/// every `SimStats` field, in declaration order.
fn render_snapshot() -> String {
    let reports = tta_explore::evaluate_all();
    let mut out = String::new();
    out.push_str(
        "# machine kernel cycles instructions payload rf_reads rf_writes \
         bypass_reads limms branches_taken stall_cycles loads stores\n",
    );
    for report in &reports {
        for run in &report.runs {
            let s = &run.sim;
            writeln!(
                out,
                "{} {} {} {} {} {} {} {} {} {} {} {} {}",
                report.name,
                run.kernel,
                run.cycles,
                s.instructions,
                s.payload,
                s.rf_reads,
                s.rf_writes,
                s.bypass_reads,
                s.limms,
                s.branches_taken,
                s.stall_cycles,
                s.loads,
                s.stores,
            )
            .unwrap();
        }
    }
    out
}

#[test]
fn cycles_and_stats_match_golden_snapshot() {
    let rendered = render_snapshot();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT_PATH);
    if std::env::var("UPDATE_SNAPSHOT").is_ok() {
        std::fs::write(&path, &rendered).expect("write snapshot");
        eprintln!("snapshot updated: {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    if rendered != golden {
        // Diff line-by-line so a timing regression names the exact pair.
        let mut mismatches = Vec::new();
        for (g, r) in golden.lines().zip(rendered.lines()) {
            if g != r {
                mismatches.push(format!("  golden: {g}\n  got:    {r}"));
            }
        }
        let gl = golden.lines().count();
        let rl = rendered.lines().count();
        if gl != rl {
            mismatches.push(format!("  line count changed: golden {gl}, got {rl}"));
        }
        panic!(
            "cycle/SimStats snapshot mismatch ({} lines differ):\n{}",
            mismatches.len(),
            mismatches.join("\n")
        );
    }
}
