//! Integration test: every compiled TTA kernel program survives a
//! bit-exact encode→decode round trip, and the decoded program still
//! simulates to the golden checksum — the full "program image" path.

use tta_isa::{Program, TtaCodec};
use tta_model::presets;

#[test]
fn compiled_kernels_roundtrip_through_binary_images() {
    for machine in presets::all_design_points() {
        if machine.style != tta_model::CoreStyle::Tta {
            continue;
        }
        let codec = TtaCodec::new(&machine);
        for kernel in ["gsm", "motion", "sha"] {
            let k = tta_chstone::by_name(kernel).unwrap();
            let module = (k.build)();
            let compiled = tta_compiler::compile(&module, &machine).unwrap();
            let Program::Tta(insts) = &compiled.program else {
                unreachable!()
            };

            let bytes = codec
                .encode_program(insts)
                .unwrap_or_else(|e| panic!("{kernel} on {}: encode failed: {e}", machine.name));
            // Image size matches the Table II accounting exactly.
            assert_eq!(
                bytes.len(),
                (insts.len() * codec.width() as usize).div_ceil(8),
                "{kernel} on {}",
                machine.name
            );
            let decoded = codec.decode_program(&bytes, insts.len()).unwrap();
            assert_eq!(&decoded, insts, "{kernel} on {}", machine.name);

            // The decoded program must still run to the right answer.
            let r =
                tta_sim::run(&machine, &Program::Tta(decoded), module.initial_memory()).unwrap();
            assert_eq!(r.ret, (k.expected)(), "{kernel} on {}", machine.name);
        }
    }
}

#[test]
fn image_bits_model_matches_codec_widths() {
    for machine in presets::all_design_points() {
        if machine.style != tta_model::CoreStyle::Tta {
            continue;
        }
        let codec = TtaCodec::new(&machine);
        assert_eq!(
            codec.width(),
            tta_isa::encoding::instruction_bits(&machine),
            "{}",
            machine.name
        );
    }
}
