//! Machine-space coverage: the compiler + simulator must handle every
//! reasonable point of the custom-TTA design space (bus count x register
//! banks x connectivity), not just the thirteen paper presets.

use tta_ir::{FunctionBuilder, ModuleBuilder};
use tta_model::{presets, RegisterFile};

/// A small but non-trivial program touching loops, memory and wide
/// constants.
fn probe_module() -> (tta_ir::Module, i32) {
    let mut mb = ModuleBuilder::new("probe");
    let buf = mb.buffer(64);
    let mut fb = FunctionBuilder::new("main", 0, true);
    let acc = fb.copy(0x00C0FFEE);
    let i = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, 12);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let off = fb.shl(i, 2);
    let addr = fb.add(off, buf.base());
    let x = fb.mul(i, 2654435761u32 as i32);
    fb.stw(x, addr, buf.region);
    let y = fb.ldw(addr, buf.region);
    let a2 = fb.xor(acc, y);
    let a3 = fb.add(a2, 0x1234);
    fb.copy_to(acc, a3);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    let m = mb.finish();
    let want = tta_ir::interp::run_ret(&m, &[]);
    (m, want)
}

#[test]
fn every_custom_tta_configuration_computes_correctly() {
    let (module, want) = probe_module();
    for issue in [1u8, 2, 3] {
        for banks in [1u16, 2, 3] {
            for buses in [3usize, 4, 5, 6, 8] {
                for full in [false, true] {
                    let rfs: Vec<RegisterFile> = (0..banks)
                        .map(|b| RegisterFile::new(format!("rf{b}"), 32, 1, 1))
                        .collect();
                    let name = format!("fuzz-{issue}w-{banks}rf-{buses}b-{full}");
                    let machine = presets::custom_tta(&name, issue, rfs, buses, full);
                    machine
                        .validate()
                        .unwrap_or_else(|e| panic!("{name}: {e:?}"));
                    let compiled = tta_compiler::compile(&module, &machine)
                        .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
                    let r = tta_sim::run(&machine, &compiled.program, module.initial_memory())
                        .unwrap_or_else(|e| panic!("{name}: sim: {e}"));
                    assert_eq!(r.ret, want, "{name}");
                }
            }
        }
    }
}

#[test]
fn custom_vliw_configurations_compute_correctly() {
    let (module, want) = probe_module();
    for issue in [2u8, 3] {
        for (banks, r, w) in [(1u16, 4u8, 2u8), (2, 2, 1), (3, 2, 1), (1, 6, 3)] {
            let per = if banks == 1 { 64 } else { 32 };
            let rfs: Vec<RegisterFile> = (0..banks)
                .map(|b| RegisterFile::new(format!("rf{b}"), per, r, w))
                .collect();
            let name = format!("fuzz-vliw-{issue}w-{banks}rf");
            let machine = presets::custom_vliw(&name, issue, rfs);
            machine
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e:?}"));
            let compiled = tta_compiler::compile(&module, &machine)
                .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
            let r = tta_sim::run(&machine, &compiled.program, module.initial_memory())
                .unwrap_or_else(|e| panic!("{name}: sim: {e}"));
            assert_eq!(r.ret, want, "{name}");
        }
    }
}
