//! The profiler's disable contract, end to end: for every design point,
//! running a compiled kernel (a) unprofiled with obs compiled in but
//! disabled (the default), (b) unprofiled with obs enabled, and
//! (c) through the profiled entry points must produce bit-identical
//! `SimResult`s — cycles, return value, memory image and every
//! `SimStats` field. The profile itself must be deterministic and agree
//! with the stats.
//!
//! This is the cross-crate complement of the per-style unit tests in
//! `crates/sim/tests/profiling.rs`: it drives real compiled CHStone
//! kernels through `tta_sim::run` / `run_profiled` on all 13 machines.

use tta_compiler::compile;
use tta_ir::interp::Interpreter;
use tta_sim::SimResult;

const KERNELS: [&str; 2] = ["sha", "motion"];

fn assert_same_run(what: &str, a: &SimResult, b: &SimResult) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.ret, b.ret, "{what}: ret");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.memory, b.memory, "{what}: memory");
}

#[test]
fn profiling_and_obs_never_perturb_simulation_results() {
    for kernel_name in KERNELS {
        let kernel = tta_chstone::by_name(kernel_name).unwrap();
        let module = (kernel.build)();
        let golden = Interpreter::new(&module).run(&[]).expect("interpreter");

        for machine in tta_model::presets::all_design_points() {
            let what = format!("{kernel_name} on {}", machine.name);
            let compiled = compile(&module, &machine).unwrap_or_else(|e| panic!("{what}: {e}"));
            let mem = module.initial_memory();

            // (a) The default path: obs compiled in, disabled.
            tta_obs::set_enabled(false);
            let plain = tta_sim::run(&machine, &compiled.program, mem.clone())
                .unwrap_or_else(|e| panic!("{what}: {e}"));
            assert_eq!(Some(plain.ret), golden.ret, "{what}");

            // (b) Same entry point with obs counters live.
            tta_obs::set_enabled(true);
            let with_obs = tta_sim::run(&machine, &compiled.program, mem.clone())
                .unwrap_or_else(|e| panic!("{what}: {e}"));

            // (c) The profiled monomorphisation, obs still enabled...
            let (profiled, p) = tta_sim::run_profiled(&machine, &compiled.program, mem.clone())
                .unwrap_or_else(|e| panic!("{what}: {e}"));

            // ...and once more with obs off; the profile is deterministic.
            tta_obs::set_enabled(false);
            let (profiled2, p2) = tta_sim::run_profiled(&machine, &compiled.program, mem)
                .unwrap_or_else(|e| panic!("{what}: {e}"));

            assert_same_run(&what, &plain, &with_obs);
            assert_same_run(&what, &plain, &profiled);
            assert_same_run(&what, &plain, &profiled2);
            p.check_against(&plain.stats)
                .unwrap_or_else(|e| panic!("{what}: {e}"));
            assert_eq!(p, p2, "{what}: profile must be deterministic");
            assert_eq!(p.cycles, plain.cycles, "{what}");
        }
    }
    tta_obs::reset();
}
