//! Tier-transition boundary tests: the promotion-threshold invariant
//! across *runs*, not just within one. A superblock promoted mid-run by
//! run N executes compiled from the first entry of run N+1 when the
//! promotion table is shared ([`tta_sim::Tiers`]); both runs — and every
//! threshold configuration, including promote-on-first-entry and the
//! tier disabled outright — must report bit-identical `SimResult`s
//! (cycles, return value, final memory, every `SimStats` field).
//!
//! These tests pin the boundary with explicit [`TierConfig`] values so
//! they are independent of the `TTA_JIT` / `TTA_JIT_THRESHOLD`
//! environment; the CI `jit-parity` job covers the environment-driven
//! paths by replaying the cycle-snapshot and parity suites under each
//! setting.

use std::sync::OnceLock;

use tta_isa::Program;
use tta_model::{presets, Machine};
use tta_sim::{run_with_tiers, TierConfig, Tiers, DEFAULT_FUEL};

struct Case {
    kernel: &'static str,
    machine: Machine,
    program: Program,
    memory: Vec<u8>,
}

/// One branchy and one loop-heavy kernel on one machine of each style —
/// enough to cross every dispatch path (whole blocks, delay segments,
/// scalar short runs) without snapshot-suite runtimes.
fn cases() -> &'static Vec<Case> {
    static CASES: OnceLock<Vec<Case>> = OnceLock::new();
    CASES.get_or_init(|| {
        let mut cases = Vec::new();
        for kernel in ["sha", "gsm"] {
            let k = tta_chstone::by_name(kernel).unwrap();
            let module = (k.build)();
            for machine in [presets::m_tta_2(), presets::m_vliw_2(), presets::mblaze_3()] {
                let compiled = tta_compiler::compile(&module, &machine)
                    .unwrap_or_else(|e| panic!("{kernel} on {}: {e}", machine.name));
                cases.push(Case {
                    kernel,
                    machine,
                    program: compiled.program,
                    memory: module.initial_memory(),
                });
            }
        }
        cases
    })
}

fn run_once(c: &Case, tiers: &Tiers) -> tta_sim::SimResult {
    run_with_tiers(
        &c.machine,
        &c.program,
        c.memory.clone(),
        DEFAULT_FUEL,
        tiers,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", c.kernel, c.machine.name))
}

/// A run that promotes superblocks mid-flight and a later run that enters
/// them compiled from the start must both match the interpreted result.
#[test]
fn promotion_between_runs_is_bit_identical() {
    for c in cases() {
        let off = Tiers::with_config(
            &c.program,
            &TierConfig {
                enabled: false,
                threshold: 0,
            },
        );
        let baseline = run_once(c, &off);

        // Low threshold: hot blocks cross it early in run 1, so run 1
        // straddles the interpreted→compiled boundary and run 2 is
        // compiled throughout.
        let tiers = Tiers::with_config(
            &c.program,
            &TierConfig {
                enabled: true,
                threshold: 4,
            },
        );
        let run1 = run_once(c, &tiers);
        let promoted = tiers.compiled_blocks();
        let run2 = run_once(c, &tiers);
        assert!(
            promoted > 0,
            "{} on {}: no promotions at threshold 4",
            c.kernel,
            c.machine.name
        );
        assert_eq!(
            run1, baseline,
            "{} on {}: promoting run diverged",
            c.kernel, c.machine.name
        );
        assert_eq!(
            run2, baseline,
            "{} on {}: compiled run diverged",
            c.kernel, c.machine.name
        );
        // Heat accumulates across runs, so run 2 may promote blocks whose
        // entries straddled the threshold — but never lose any.
        assert!(
            tiers.compiled_blocks() >= promoted,
            "{} on {}: promotion table shrank",
            c.kernel,
            c.machine.name
        );
    }
}

/// Promote-on-first-entry (threshold 0), the default threshold, and the
/// tier disabled must be indistinguishable in every reported number.
#[test]
fn threshold_extremes_match_disabled() {
    for c in cases() {
        let results: Vec<tta_sim::SimResult> = [
            TierConfig {
                enabled: false,
                threshold: 0,
            },
            TierConfig {
                enabled: true,
                threshold: 0,
            },
            TierConfig {
                enabled: true,
                threshold: TierConfig::DEFAULT_THRESHOLD,
            },
        ]
        .iter()
        .map(|cfg| run_once(c, &Tiers::with_config(&c.program, cfg)))
        .collect();
        assert_eq!(
            results[0], results[1],
            "{} on {}: threshold 0 diverged from disabled",
            c.kernel, c.machine.name
        );
        assert_eq!(
            results[0], results[2],
            "{} on {}: default threshold diverged from disabled",
            c.kernel, c.machine.name
        );
    }
}
